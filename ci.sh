#!/usr/bin/env bash
# CI gate for the SLB workspace. Run from the repo root.
#
# Mirrors what a fresh-checkout pipeline should enforce, in cheap-to-expensive
# order. Everything is offline-friendly: the workspace has no registry
# dependencies (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> release build"
cargo build --release

echo "==> workspace tests (all crates; superset of the tier-1 \`cargo test -q\`)"
cargo test -q --workspace

echo "==> rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> examples (quickstart and imbalance_study already ran via tests/examples_smoke.rs)"
cargo run --quiet --release --example trending_topics > /dev/null
cargo run --quiet --release --example storm_like_topology > /dev/null

echo "==> experiment binaries (smoke scale)"
for bin in crates/slb-bench/src/bin/expt_*.rs; do
    name="$(basename "$bin" .rs)"
    cargo run --quiet --release -p slb-bench --bin "$name" -- --scale smoke > /dev/null
done

echo "==> perf smoke (batched engine at zero service time must clear the floor)"
cargo run --quiet --release -p slb-bench --bin perf_smoke

echo "==> criterion benches (quick mode, compile + run)"
SLB_BENCH_QUICK=1 cargo bench -p slb-bench --quiet > /dev/null

echo "CI PASSED"
