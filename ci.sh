#!/usr/bin/env bash
# CI gate for the SLB workspace. Run from the repo root.
#
# Mirrors what a fresh-checkout pipeline should enforce, in cheap-to-expensive
# order. Everything is offline-friendly: the workspace has no registry
# dependencies (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> release build"
cargo build --release

echo "==> workspace tests (all crates; superset of the tier-1 \`cargo test -q\`)"
# The golden suite inside this run executes every expt_* binary at smoke
# scale and asserts the deterministic scheme orderings in their output
# (crates/slb-bench/tests/golden.rs), so there is no separate exit-code-only
# experiment loop anymore.
cargo test -q --workspace

echo "==> differential seed matrix (key-splitting soundness per seed, static + scenario + cross-backend)"
for seed in 1 42 1337; do
    echo "    SLB_TEST_SEED=$seed"
    SLB_TEST_SEED="$seed" cargo test -q -p slb-engine --test differential --test scenario_differential
    # Cross-backend: the same configs over the SPSC ring backend and TCP
    # loopback must merge bit-identical windows (and the multi-process
    # slb-node golden run re-verifies against the exact reference at this
    # seed).
    SLB_TEST_SEED="$seed" cargo test -q -p slb-net --test backend_differential --test node_golden
    # Closed-loop elasticity: controlled runs must stay bit-identical to the
    # exact reference on every backend, beat the static-d baselines on
    # drift, and produce one decision log everywhere (engine == simulator,
    # InProc == SPSC == TCP, any batch size, with or without faults).
    SLB_TEST_SEED="$seed" cargo test -q -p slb-net --test controller_differential
    # Logical traces: the telemetry event stream must be bit-identical
    # across backends, reruns, and batch sizes (docs/OBSERVABILITY.md).
    SLB_TEST_SEED="$seed" cargo test -q -p slb-net --test trace_differential
done

echo "==> fault-injection seed matrix (exactly-once under kills and losses, every backend)"
for seed in 1 42 1337; do
    echo "    SLB_TEST_SEED=$seed"
    SLB_TEST_SEED="$seed" cargo test -q -p slb-net --test fault_injection
    # Process-level faults: SIGKILL a live worker, respawn from the durable
    # checkpoint, verify bit-identical counts; then exhaust the budget and
    # verify degrade-instead-of-hang. The hard wall-clock cap turns any
    # supervision deadlock into a CI failure rather than a stuck pipeline.
    SLB_TEST_SEED="$seed" timeout 300 cargo test -q -p slb-net --test node_faults
done

echo "==> property suites at CI case counts"
PROPTEST_CASES=256 cargo test -q -p slb-core --test batch_equivalence --test aggregate_props --test rescale_props --test durable_props --test controller_props
PROPTEST_CASES=256 cargo test -q -p slb-sketch --test proptests
PROPTEST_CASES=256 cargo test -q -p slb-workloads --test scenario_props
PROPTEST_CASES=256 cargo test -q -p slb-engine --test scenario_props --test ring_props
PROPTEST_CASES=256 cargo test -q -p slb-telemetry --test histogram_props
PROPTEST_CASES=256 cargo test -q -p slb-net --test wire_props

echo "==> rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> examples (quickstart and imbalance_study already ran via tests/examples_smoke.rs)"
cargo run --quiet --release --example trending_topics > /dev/null
cargo run --quiet --release --example storm_like_topology > /dev/null

echo "==> perf smoke (batched engine + phased scenario loop + TCP and SPSC backends at zero service time must clear their floors; SPSC must not lose to InProc; idle controller within 5%; telemetry within 5%)"
cargo run --quiet --release -p slb-bench --bin perf_smoke

echo "==> criterion benches (quick mode, compile + run)"
SLB_BENCH_QUICK=1 cargo bench -p slb-bench --quiet > /dev/null

echo "CI PASSED"
