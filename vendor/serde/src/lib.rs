//! Offline stand-in for `serde` providing marker traits only.
//!
//! This repository derives `Serialize`/`Deserialize` on its result and
//! config types so that a downstream consumer *could* serialize them, but it
//! never actually drives a serializer (there is no `serde_json` in the tree).
//! The shim therefore declares the two traits as blanket-implemented markers
//! and re-exports no-op derive macros, which is enough for every call site to
//! compile unchanged. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all
/// types. The real trait has a lifetime parameter (`Deserialize<'de>`); the
/// shim drops it because no call site in this workspace names the lifetime.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
