//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand` 0.8 API this workspace uses: the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`, the
//! [`SeedableRng::seed_from_u64`] constructor, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, not the ChaCha12 generator upstream uses — sequences are
//! deterministic per seed and statistically solid for simulation workloads,
//! but not bit-compatible with the real crate. See `vendor/README.md`.

use std::ops::Range;

/// A source of randomness. Stand-in for `rand::RngCore` + `rand::Rng`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range. Panics if the range is
    /// empty.
    #[inline]
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(range, self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable from their standard distribution. Stand-in for
/// `rand::distributions::Standard`'s blanket machinery.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types sampleable uniformly from a `Range`. Stand-in for
/// `rand::distributions::uniform::SampleUniform`.
pub trait UniformRange: Sized {
    /// Draws one value uniformly from `range`. Panics if the range is empty.
    fn sample_range<R: Rng + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift rejection-free mapping (Lemire) would need a
                // 128-bit multiply; a simple modulo is fine here because every
                // span in this workspace is tiny relative to 2^64, making the
                // bias below 2^-40.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

impl UniformRange for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// RNGs constructible from a small seed. Stand-in for `rand::SeedableRng`
/// (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with SplitMix64
    /// exactly as the real `rand` does for small-seed construction.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic per seed; passes the empirical-frequency checks the
    /// workload tests apply (sub-1% deviation over 2·10^5 draws).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn seeds_give_distinct_streams() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert_eq!(same, 0);
        }

        #[test]
        fn unit_floats_are_uniformish() {
            let mut rng = StdRng::seed_from_u64(42);
            let n = 100_000;
            let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        }

        #[test]
        fn gen_range_covers_all_buckets() {
            let mut rng = StdRng::seed_from_u64(9);
            let mut counts = [0u32; 8];
            for _ in 0..80_000 {
                counts[rng.gen_range(0usize..8)] += 1;
            }
            for &c in &counts {
                assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
            }
        }
    }
}
