//! Offline stand-in for `crossbeam-channel`.
//!
//! Implements the [`bounded`] constructor with clonable [`Sender`]s and
//! [`Receiver`]s, blocking `send`/`recv`, and disconnect-on-drop semantics —
//! the surface the engine's topology runner uses. Built on
//! `Mutex<VecDeque>` + two `Condvar`s rather than crossbeam's lock-free
//! algorithm, so it is slower under contention but behaviourally equivalent
//! for N-producer / 1-consumer-per-channel topologies.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    /// Number of live `Sender` handles.
    senders: usize,
    /// Number of live `Receiver` handles.
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Signalled when an item is pushed or all senders disconnect.
    not_empty: Condvar,
    /// Signalled when an item is popped or all receivers disconnect.
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the unsent message, like the real crate.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: Send> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`] when no message is ready.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty but senders are still alive.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half of a bounded channel. Clonable; `send` blocks while the
/// channel is full.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel. Clonable; `recv` blocks while
/// the channel is empty and at least one sender is alive.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel with room for `capacity` in-flight messages.
///
/// A zero capacity is bumped to one (the real crate implements a rendezvous
/// channel for zero; nothing in this workspace relies on rendezvous timing).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Number of messages currently queued — a racy snapshot, matching the
    /// real crate's `len`. Used for telemetry high-water marks only.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when no messages are queued at the instant of the call.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity. Always `Some` here (only bounded channels
    /// exist in this shim); the `Option` matches the real crate.
    pub fn capacity(&self) -> Option<usize> {
        Some(self.shared.capacity)
    }

    /// Blocks until there is room, then enqueues `msg`. Fails only when all
    /// receivers have been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(msg);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake all receivers so they can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message is available and returns it. Fails only when
    /// the channel is empty and all senders have been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Returns a queued message immediately if one is available, without
    /// blocking. Distinguishes a momentarily-empty channel
    /// ([`TryRecvError::Empty`]) from one that can never deliver again
    /// ([`TryRecvError::Disconnected`]), matching the real crate.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks until at least one message is available, then moves up to
    /// `max` queued messages into `out` under a single lock acquisition,
    /// returning how many were moved. Fails only when the channel is empty
    /// and all senders have been dropped.
    ///
    /// This is the batch counterpart of [`Self::recv`]: a consumer that
    /// drains its queue through this path pays one Mutex+Condvar round-trip
    /// per drained run instead of one per message. `out` is appended to, not
    /// cleared. (The real crate has no direct equivalent — `try_iter` after
    /// a blocking `recv` comes closest — so the engine gates its use behind
    /// this shim; see `vendor/README.md`.)
    ///
    /// # Panics
    /// Panics if `max == 0`.
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
        assert!(max > 0, "recv_batch needs room for at least one message");
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if !state.queue.is_empty() {
                let take = state.queue.len().min(max);
                out.extend(state.queue.drain(..take));
                drop(state);
                // Several slots may have been freed at once: wake every
                // blocked sender, not just one.
                if take > 1 {
                    self.shared.not_full.notify_all();
                } else {
                    self.shared.not_full.notify_one();
                }
                return Ok(take);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake all senders so blocked `send`s can fail fast.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn backpressure_blocks_until_consumed() {
        let (tx, rx) = bounded::<u64>(2);
        let producer = thread::spawn(move || {
            for i in 0..10_000 {
                tx.send(i).unwrap();
            }
        });
        let mut expected = 0;
        while let Ok(v) = rx.recv() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, 10_000);
        producer.join().unwrap();
    }

    #[test]
    fn recv_batch_drains_in_fifo_order() {
        let (tx, rx) = bounded(8);
        for i in 0..6 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.recv_batch(&mut out, 4), Ok(4));
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv_batch(&mut out, 100), Ok(2));
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5], "appends, does not clear");
        drop(tx);
        assert_eq!(rx.recv_batch(&mut out, 1), Err(RecvError));
    }

    #[test]
    fn recv_batch_blocks_until_a_message_arrives() {
        let (tx, rx) = bounded::<u64>(4);
        let consumer = thread::spawn(move || {
            let mut out = Vec::new();
            let mut total = 0usize;
            while let Ok(n) = rx.recv_batch(&mut out, 64) {
                total += n;
                out.clear();
            }
            total
        });
        let producer = thread::spawn(move || {
            for i in 0..10_000 {
                tx.send(i).unwrap();
            }
        });
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), 10_000);
    }

    #[test]
    fn recv_batch_wakes_multiple_blocked_senders() {
        let (tx, rx) = bounded::<u64>(2);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..500 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut out = Vec::new();
        let mut total = 0usize;
        while let Ok(n) = rx.recv_batch(&mut out, usize::MAX) {
            total += n;
            out.clear();
        }
        assert_eq!(total, 2_000);
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one message")]
    fn recv_batch_zero_max_panics() {
        let (_tx, rx) = bounded::<u8>(1);
        let mut out = Vec::new();
        let _ = rx.recv_batch(&mut out, 0);
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(6).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(6), "drains before reporting disconnect");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = bounded::<u64>(8);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..1_000 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut count = 0;
        while rx.recv().is_ok() {
            count += 1;
        }
        assert_eq!(count, 4_000);
        for h in handles {
            h.join().unwrap();
        }
    }
}
