//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly random value of the type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32 as i32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Strategy producing any value of `T` (uniform over the type's range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_range_edges_eventually() {
        let mut rng = TestRng::from_name("any_u8");
        let mut seen = [false; 256];
        for _ in 0..50_000 {
            seen[any::<u8>().generate(&mut rng) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all byte values should appear in 50k draws"
        );
    }
}
