//! The `Strategy` trait and the combinators the workspace's suites use.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type. Unlike the real proptest
/// there is no value tree and no shrinking: `generate` draws a value
/// directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy so differently-typed strategies producing
    /// the same `Value` can be mixed (as in `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `&S` delegates, so strategies can be generated from behind references.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> WeightedUnion<T> {
    /// Builds the union. Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one positive weight"
        );
        WeightedUnion { arms, total_weight }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut ticket = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            if ticket < *weight as u64 {
                return strategy.generate(rng);
            }
            ticket -= *weight as u64;
        }
        unreachable!("ticket exceeded total weight");
    }
}

/// Characters drawn for the `.` pattern class: printable ASCII plus a few
/// multi-byte code points so string tests exercise non-trivial UTF-8.
const DOT_EXTRAS: &[char] = &['é', 'ß', '中', '🙂', 'Ω'];

/// String-pattern strategies: a `&str` literal is interpreted as a
/// simplified regex. Only the shape this workspace uses is supported —
/// `.{a,b}` (between `a` and `b` arbitrary non-newline characters). Any
/// other pattern is rejected at generation time.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!(
                "unsupported string pattern {self:?}: the offline proptest shim \
                 implements only \".{{a,b}}\""
            )
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                // 1-in-16 chance of a non-ASCII char, otherwise printable ASCII.
                if rng.below(16) == 0 {
                    DOT_EXTRAS[rng.below(DOT_EXTRAS.len() as u64) as usize]
                } else {
                    (0x20 + rng.below(0x5F) as u8) as char
                }
            })
            .collect()
    }
}

/// Parses `".{a,b}"` into `(a, b)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let inner = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = inner.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    (min <= max).then_some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_repeat_parses() {
        assert_eq!(parse_dot_repeat(".{0,64}"), Some((0, 64)));
        assert_eq!(parse_dot_repeat(".{3,3}"), Some((3, 3)));
        assert_eq!(parse_dot_repeat("a{0,4}"), None);
        assert_eq!(parse_dot_repeat(".{9,2}"), None);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges_stay_in_bounds");
        for _ in 0..10_000 {
            let v = (5usize..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn just_clones_value() {
        let mut rng = TestRng::from_name("just");
        assert_eq!(Just(vec![1, 2]).generate(&mut rng), vec![1, 2]);
    }
}
