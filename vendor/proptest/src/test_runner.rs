//! Case execution: config, RNG, and the run loop behind `proptest!`.

/// Configuration for one property. Only `cases` is configurable, matching
/// what this workspace's suites set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of passing cases required for the property to pass.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases tolerated before the run is
    /// abandoned as under-constrained.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }

    /// Config running the number of cases named by the `PROPTEST_CASES`
    /// environment variable (the same variable the real proptest honours),
    /// falling back to `default_cases` when it is unset. CI uses this to
    /// crank up the load-bearing suites without slowing local runs.
    ///
    /// # Panics
    /// Panics if `PROPTEST_CASES` is set to zero or to something that is
    /// not a `u32` — a silent zero-case run would report green while
    /// testing nothing.
    pub fn with_cases_env(default_cases: u32) -> Self {
        match std::env::var("PROPTEST_CASES") {
            Ok(value) => {
                let cases: u32 = value
                    .parse()
                    .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a u32, got {value:?}"));
                assert!(cases > 0, "PROPTEST_CASES must be positive, got 0");
                Self::with_cases(cases)
            }
            Err(_) => Self::with_cases(default_cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assert*` failed with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Outcome of running one generated case (failures panic inside the case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The body ran to completion.
    Pass,
    /// The body asked for different inputs via `prop_assume!`.
    Reject,
}

/// Deterministic generator used to produce case inputs: the vendored
/// `rand::rngs::StdRng` seeded from a name (the test's module path), so
/// every run of a given test replays the same input sequence. The real
/// proptest likewise builds its `TestRng` on the `rand` crate.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Seeds the generator from an arbitrary name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h),
        }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        rand::Rng::next_u64(&mut self.inner)
    }

    /// Uniform draw from `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        rand::Rng::gen_range(&mut self.inner, 0..bound)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        rand::Rng::gen::<f64>(&mut self.inner)
    }
}

/// Drives one property: generates and runs cases until `config.cases` have
/// passed, skipping rejected cases (up to `config.max_global_rejects`).
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> CaseOutcome,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}` rejected {rejected} cases (passed {passed}/{}); \
                         prop_assume! is filtering out too much of the input space",
                        config.cases,
                    );
                }
            }
        }
    }
}
