//! Offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the surface this workspace's test suites use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) generating one `#[test]` per property,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`prop_oneof!`] with weighted arms,
//! * the [`strategy::Strategy`] trait implemented for integer and float
//!   ranges, [`strategy::Just`], string patterns of the shape `".{a,b}"`,
//!   [`arbitrary::any`], and [`collection::vec`],
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from the real crate, by design: **no shrinking** (a failing
//! case prints the generated inputs unminimized) and a deterministic
//! per-test RNG (seeded from the test's module path), so failures reproduce
//! exactly run-to-run. See `vendor/README.md`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body against `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]: expands one property fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            $crate::test_runner::run_cases(&config, __name, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => $crate::test_runner::CaseOutcome::Pass,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        $crate::test_runner::CaseOutcome::Reject
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest property `{}` failed: {}\ninputs {}: {:#?}",
                            stringify!($name),
                            msg,
                            stringify!(($($arg),+)),
                            ($(&$arg),+),
                        );
                    }
                }
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks among strategies; `weight => strategy` arms draw proportionally to
/// their weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u64>> {
        crate::collection::vec(
            prop_oneof![
                3 => Just(7u64),
                1 => 0u64..5,
            ],
            1..20,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated vectors respect the length range and element strategies.
        #[test]
        fn vec_respects_bounds(v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x == 7 || x < 5));
        }

        /// Ranges generate within bounds; assume() skips cases cleanly.
        #[test]
        fn ranges_and_assume(n in 1usize..100, x in 0.0f64..1.0) {
            prop_assume!(n != 13);
            prop_assert!((1..100).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_ne!(n, 13);
            prop_assert_eq!(n, n);
        }

        /// String patterns honour the `.{a,b}` length bounds.
        #[test]
        fn string_pattern_lengths(s in ".{0,64}") {
            prop_assert!(s.chars().count() <= 64);
            prop_assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn weighted_union_prefers_heavy_arm() {
        let strat = prop_oneof![9 => Just(1u32), 1 => Just(0u32)];
        let mut rng = crate::test_runner::TestRng::from_name("weighted_union_test");
        let ones: u32 = (0..10_000)
            .map(|_| Strategy::generate(&strat, &mut rng))
            .sum();
        assert!((8_500..9_500).contains(&ones), "ones = {ones}");
    }
}
