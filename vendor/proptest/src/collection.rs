//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose length is drawn from `len` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let strat = vec(any::<u8>(), 2..7);
        let mut rng = TestRng::from_name("vec_bounds");
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }
}
