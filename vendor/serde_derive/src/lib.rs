//! No-op derive macros for the [`serde`](../serde) shim.
//!
//! The companion `serde` crate blanket-implements its `Serialize` and
//! `Deserialize` marker traits for every type, so these derives have nothing
//! to generate — they exist only so that `#[derive(Serialize, Deserialize)]`
//! resolves. See `vendor/README.md` for the rationale.

use proc_macro::TokenStream;

/// Derives `serde::Serialize`. Expands to nothing: the trait is
/// blanket-implemented in the `serde` shim.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives `serde::Deserialize`. Expands to nothing: the trait is
/// blanket-implemented in the `serde` shim.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
