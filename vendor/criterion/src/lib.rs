//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the `slb-bench` benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a plain warm-up + timed-loop measurement that prints the mean
//! time per iteration (plus derived throughput when one is configured).
//! There is no statistical analysis, outlier detection, or report history;
//! treat the numbers as indicative, not publication-grade.
//!
//! Running a bench binary with `--quick` (or setting the environment
//! variable `SLB_BENCH_QUICK=1`) shrinks warm-up and measurement times to a
//! few milliseconds so smoke runs stay fast.
//!
//! Setting `SLB_BENCH_JSON_DIR=<dir>` additionally writes every measurement
//! as machine-readable JSON to `<dir>/BENCH_<bench>.json` (one array of
//! `{name, ns_per_iter, iters, elems_per_sec, mib_per_sec}` records, where
//! `<bench>` is the bench binary's name without its `bench_` prefix and
//! cargo hash suffix), so the repo's perf trajectory can be tracked across
//! PRs without scraping the human-readable output.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting derived throughput alongside time per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// A benchmark identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new<P: fmt::Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Filled in by `iter`: (total duration, iterations).
    measured: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up, then running as many iterations as
    /// fit in the configured measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses, counting iterations
        // to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        // Size the measurement loop from the observed per-iteration cost. Use
        // the actual elapsed time, not the configured window: a routine slower
        // than the window would otherwise look `warm_up_time / elapsed` times
        // cheaper than it is and over-run the measurement phase by that factor.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target_iters =
            (self.settings.measurement_time.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
        let iters = target_iters.clamp(1, u64::MAX);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

#[derive(Debug, Clone)]
struct Settings {
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

fn quick_mode() -> bool {
    std::env::var_os("SLB_BENCH_QUICK").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--quick")
}

impl Settings {
    fn new() -> Self {
        let quick = quick_mode();
        Settings {
            warm_up_time: if quick {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(300)
            },
            measurement_time: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_secs(1)
            },
            throughput: None,
        }
    }
}

/// One measurement destined for the JSON sidecar file.
#[derive(Debug, Clone)]
struct JsonRecord {
    name: String,
    ns_per_iter: f64,
    iters: u64,
    elems_per_sec: Option<f64>,
    mib_per_sec: Option<f64>,
}

impl JsonRecord {
    fn render(&self) -> String {
        let escaped: String = self
            .name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        let opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), |x| format!("{x:.3}"));
        format!(
            "{{\"name\": \"{escaped}\", \"ns_per_iter\": {:.3}, \"iters\": {}, \"elems_per_sec\": {}, \"mib_per_sec\": {}}}",
            self.ns_per_iter,
            self.iters,
            opt(self.elems_per_sec),
            opt(self.mib_per_sec),
        )
    }
}

/// `BENCH_<name>.json` for a bench binary path like
/// `target/release/deps/bench_engine-0123456789abcdef`.
fn json_file_name(bench_exe: &Path) -> String {
    let stem = bench_exe
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    // cargo appends `-<16 hex>` to the binary name; drop it if present.
    let base = match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            name
        }
        _ => stem.as_str(),
    };
    format!("BENCH_{}.json", base.strip_prefix("bench_").unwrap_or(base))
}

/// The JSON sink (target path + accumulated records), if enabled via
/// `SLB_BENCH_JSON_DIR`.
fn json_sink() -> Option<&'static (PathBuf, Mutex<Vec<JsonRecord>>)> {
    static SINK: OnceLock<Option<(PathBuf, Mutex<Vec<JsonRecord>>)>> = OnceLock::new();
    SINK.get_or_init(|| {
        let dir = std::env::var_os("SLB_BENCH_JSON_DIR")?;
        let exe = std::env::args().next()?;
        let path = PathBuf::from(dir).join(json_file_name(Path::new(&exe)));
        Some((path, Mutex::new(Vec::new())))
    })
    .as_ref()
}

/// Appends a record and rewrites the JSON file (the record count is small;
/// rewriting keeps the file a valid JSON array even if the process aborts
/// between benches).
fn emit_json(record: JsonRecord) {
    let Some((path, records)) = json_sink() else {
        return;
    };
    let mut records = records.lock().unwrap();
    records.push(record);
    let body: Vec<String> = records
        .iter()
        .map(|r| format!("  {}", r.render()))
        .collect();
    let _ = std::fs::write(path, format!("[\n{}\n]\n", body.join(",\n")));
}

fn format_duration(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.3} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn report(label: &str, settings: &Settings, measured: Option<(Duration, u64)>) {
    let Some((elapsed, iters)) = measured else {
        println!("{label:<40} (no measurement recorded)");
        return;
    };
    let nanos = elapsed.as_secs_f64() * 1e9 / iters as f64;
    let mut line = format!(
        "{label:<40} {:>12}/iter ({iters} iters)",
        format_duration(nanos)
    );
    let mut elems_per_sec = None;
    let mut mib_per_sec = None;
    match settings.throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (nanos * 1e-9) / (1024.0 * 1024.0);
            line.push_str(&format!("  {mib_s:.1} MiB/s"));
            mib_per_sec = Some(mib_s);
        }
        Some(Throughput::Elements(elems)) => {
            let elem_s = elems as f64 / (nanos * 1e-9);
            line.push_str(&format!("  {:.2} Melem/s", elem_s / 1e6));
            elems_per_sec = Some(elem_s);
        }
        None => {}
    }
    println!("{line}");
    emit_json(JsonRecord {
        name: label.to_string(),
        ns_per_iter: nanos,
        iters,
        elems_per_sec,
        mib_per_sec,
    });
}

/// A named group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut (),
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up window (ignored in `--quick` mode).
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        if !quick_mode() {
            self.settings.warm_up_time = time;
        }
        self
    }

    /// Sets the measurement window (ignored in `--quick` mode).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        if !quick_mode() {
            self.settings.measurement_time = time;
        }
        self
    }

    /// Accepted for API compatibility; the shim sizes iteration counts from
    /// the measurement window instead of a sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs, enabling derived
    /// throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            settings: &self.settings,
            measured: None,
        };
        f(&mut bencher);
        report(&label, &self.settings, bencher.measured);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            settings: &self.settings,
            measured: None,
        };
        f(&mut bencher, input);
        report(&label, &self.settings, bencher.measured);
        self
    }

    /// Ends the group. (The real crate finalizes reports here; the shim
    /// prints as it goes.)
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    unit: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: Settings::new(),
            _criterion: &mut self.unit,
        }
    }

    /// Runs a standalone benchmark with default settings.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let settings = Settings::new();
        let mut bencher = Bencher {
            settings: &settings,
            measured: None,
        };
        f(&mut bencher);
        report(&format!("{id}"), &settings, bencher.measured);
        self
    }
}

/// Bundles benchmark functions under one group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generates `main` running each group, mirroring criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("d", 5).to_string(), "d/5");
    }

    #[test]
    fn json_file_name_strips_prefix_and_hash() {
        assert_eq!(
            json_file_name(Path::new(
                "target/release/deps/bench_engine-0123456789abcdef"
            )),
            "BENCH_engine.json"
        );
        assert_eq!(
            json_file_name(Path::new("bench_partitioners")),
            "BENCH_partitioners.json"
        );
        assert_eq!(
            json_file_name(Path::new("my-bench")),
            "BENCH_my-bench.json",
            "a non-hash suffix is kept"
        );
    }

    #[test]
    fn json_record_renders_valid_json() {
        let r = JsonRecord {
            name: "group/scheme \"x\"".to_string(),
            ns_per_iter: 1234.5678,
            iters: 42,
            elems_per_sec: Some(2.5e7),
            mib_per_sec: None,
        };
        assert_eq!(
            r.render(),
            "{\"name\": \"group/scheme \\\"x\\\"\", \"ns_per_iter\": 1234.568, \
             \"iters\": 42, \"elems_per_sec\": 25000000.000, \"mib_per_sec\": null}"
        );
    }

    #[test]
    fn bencher_records_a_measurement() {
        // Build Settings directly (no process-global env mutation: tests run
        // in parallel threads and quick_mode() reads the environment).
        let settings = Settings {
            warm_up_time: Duration::from_millis(2),
            measurement_time: Duration::from_millis(5),
            throughput: Some(Throughput::Elements(1)),
        };
        let mut bencher = Bencher {
            settings: &settings,
            measured: None,
        };
        bencher.iter(|| black_box(1 + 1));
        let (elapsed, iters) = bencher.measured.expect("iter must record a measurement");
        assert!(iters >= 1);
        assert!(elapsed > Duration::ZERO);
        report("test/noop", &settings, bencher.measured);
    }
}
