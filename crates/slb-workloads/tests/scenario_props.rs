//! Property tests for the scenario spec's structural invariants.
//!
//! These pin the *arithmetic* half of the scenario-engine contract: phase
//! boundaries always land on window boundaries, window→phase lookup is the
//! inverse of the phase start table, drift offsets accumulate, and phase
//! streams are deterministic pure functions of `(scenario, phase, source)`.
//! The execution half (the engine preserving these invariants end to end)
//! lives in `slb-engine/tests/scenario_props.rs`.

use proptest::prelude::*;

use slb_workloads::scenario::{Arrival, Scenario, ScenarioPhase};
use slb_workloads::KeyStream;

/// Expands a packed u64 into a random-but-valid list of phases (the vendored
/// proptest shim has no tuple/vec-of-tuple strategies, so randomness is
/// derived with an inline splitmix).
fn random_phases(window_size: u64, phase_count: usize, mut state: u64) -> Vec<ScenarioPhase> {
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..phase_count)
        .map(|_| {
            let windows = 1 + next() % 5;
            let keys = 1 + (next() % 500) as usize;
            let skew = (next() % 2_200) as f64 / 1_000.0;
            let workers = 1 + (next() % 8) as usize;
            // drift_epochs must divide the phase's tuples; walk the random
            // candidate down to the nearest divisor (worst case 1).
            let tuples = windows * window_size;
            let mut drift_epochs = 1 + next() % 3;
            while tuples % drift_epochs != 0 {
                drift_epochs -= 1;
            }
            ScenarioPhase::new(windows, keys, skew, workers).with_drift_epochs(drift_epochs)
        })
        .collect()
}

fn scenario_from(
    sources: usize,
    window_size: u64,
    seed: u64,
    phase_count: usize,
    mix: u64,
) -> Scenario {
    let mut s = Scenario::new("prop", sources, window_size, seed);
    for phase in random_phases(window_size, phase_count, mix) {
        s = s.phase(phase);
    }
    s
}

proptest! {
    // 64 cases locally; ci.sh raises this via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    /// Phase transitions never split a window: every phase starts exactly at
    /// a window boundary, covers a whole number of windows, and the
    /// window→phase lookup agrees with the start table everywhere.
    #[test]
    fn phase_boundaries_are_window_aligned(
        sources in 1usize..5,
        window_size in 1u64..600,
        seed in any::<u64>(),
        phase_count in 1usize..5,
        mix in any::<u64>(),
    ) {
        let s = scenario_from(sources, window_size, seed, phase_count, mix);
        prop_assert!(s.validate().is_ok());
        let total_windows = s.total_windows();
        prop_assert_eq!(s.tuples_per_source(), total_windows * window_size);
        prop_assert_eq!(s.total_tuples(), total_windows * window_size * sources as u64);
        let mut expected_start = 0u64;
        for (p, phase) in s.phases.iter().enumerate() {
            prop_assert_eq!(s.phase_start_window(p), expected_start);
            // The phase boundary in tuples sits exactly on a window boundary.
            let boundary_tuples = expected_start * window_size;
            prop_assert_eq!(boundary_tuples % window_size, 0);
            prop_assert_eq!(s.phase_tuples_per_source(p), phase.windows * window_size);
            for w in expected_start..expected_start + phase.windows {
                prop_assert_eq!(s.phase_of_window(w), p, "window {} must be in phase {}", w, p);
            }
            expected_start += phase.windows;
        }
        prop_assert_eq!(expected_start, total_windows);
    }

    /// Drift epoch offsets accumulate phase lengths exactly.
    #[test]
    fn drift_offsets_accumulate(
        window_size in 1u64..200,
        seed in any::<u64>(),
        phase_count in 1usize..6,
        mix in any::<u64>(),
    ) {
        let s = scenario_from(2, window_size, seed, phase_count, mix);
        let mut acc = 0u64;
        for (p, phase) in s.phases.iter().enumerate() {
            prop_assert_eq!(s.drift_epoch_offset(p), acc);
            acc += phase.drift_epochs;
        }
    }

    /// Phase streams are deterministic, produce exactly the phase's tuple
    /// budget, and report the phase's key space.
    #[test]
    fn phase_streams_are_pure_functions(
        sources in 2usize..4,
        window_size in 1u64..150,
        seed in any::<u64>(),
        phase_count in 1usize..4,
        mix in any::<u64>(),
    ) {
        let s = scenario_from(sources, window_size, seed, phase_count, mix);
        for p in 0..s.phases.len() {
            let mut first = s.phase_stream(p, 0);
            let mut second = s.phase_stream(p, 0);
            let mut produced = 0u64;
            while let Some(k) = first.next_key() {
                prop_assert_eq!(Some(k), second.next_key());
                produced += 1;
            }
            prop_assert_eq!(produced, s.phase_tuples_per_source(p));
            prop_assert_eq!(first.key_space(), s.phases[p].keys as u64);
        }
    }

    /// Burst arithmetic survives validation for any positive burst size.
    #[test]
    fn bursty_phases_validate(
        burst in 1u64..10_000,
        pause_us in 0u64..5_000,
    ) {
        let s = Scenario::single_phase(
            "bursts",
            2,
            64,
            1,
            ScenarioPhase::new(2, 50, 1.0, 3).with_arrival(Arrival::Bursty {
                burst_tuples: burst,
                pause_us,
            }),
        );
        prop_assert!(s.validate().is_ok());
    }
}
