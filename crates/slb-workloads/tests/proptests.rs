//! Property-based tests for the workload substrate.

use proptest::prelude::*;
use slb_workloads::zipf::{
    fit_exponent_to_p1, generalized_harmonic, ZipfDistribution, ZipfGenerator,
};
use slb_workloads::KeyStream;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zipf probabilities always form a valid, descending distribution.
    #[test]
    fn zipf_is_a_valid_distribution(keys in 1usize..3_000, z_milli in 0u32..2_500) {
        let z = f64::from(z_milli) / 1_000.0;
        let d = ZipfDistribution::new(keys, z);
        let sum: f64 = d.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        for w in d.probabilities().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-15);
        }
        prop_assert_eq!(d.keys(), keys);
    }

    /// The head cardinality is monotone non-increasing in the threshold and
    /// consistent with head_mass.
    #[test]
    fn head_cardinality_monotone(keys in 10usize..2_000, z_milli in 0u32..2_000) {
        let z = f64::from(z_milli) / 1_000.0;
        let d = ZipfDistribution::new(keys, z);
        let thresholds = [0.5, 0.1, 0.01, 0.001, 0.000_1];
        let mut last = 0usize;
        for &t in &thresholds {
            let h = d.head_cardinality(t);
            prop_assert!(h >= last, "cardinality must grow as threshold shrinks");
            last = h;
            if h > 0 {
                prop_assert!(d.probability(h) >= t);
            }
            if h < keys {
                prop_assert!(d.probability(h + 1) < t);
            }
        }
    }

    /// The harmonic approximation stays within 1e-5 relative error of the
    /// exact sum for key spaces small enough to sum exactly.
    #[test]
    fn harmonic_approximation_accuracy(keys in 1usize..60_000, z_milli in 0u32..2_500) {
        let z = f64::from(z_milli) / 1_000.0;
        let exact: f64 = (1..=keys).map(|i| (i as f64).powf(-z)).sum();
        let approx = generalized_harmonic(keys, z);
        prop_assert!(((approx - exact) / exact).abs() < 1e-5);
    }

    /// Fitting an exponent to a reachable p1 target round-trips.
    #[test]
    fn fit_round_trips(keys in 10usize..5_000, z_milli in 100u32..2_200) {
        let z = f64::from(z_milli) / 1_000.0;
        let target = ZipfDistribution::new(keys, z).p1();
        let fitted = fit_exponent_to_p1(keys, target).unwrap();
        let achieved = ZipfDistribution::new(keys, fitted).p1();
        prop_assert!((achieved - target).abs() / target < 1e-3);
    }

    /// Generators honour their message limit and only emit keys from the
    /// declared key space.
    #[test]
    fn generator_limit_and_key_space(keys in 1usize..500, limit in 0u64..2_000, seed in any::<u64>()) {
        let mut g = ZipfGenerator::with_limit(keys, 1.0, seed, limit);
        let valid: std::collections::HashSet<u64> = (1..=keys as u64).map(|r| g.key_of(r)).collect();
        let mut n = 0u64;
        while let Some(k) = KeyStream::next_key(&mut g) {
            prop_assert!(valid.contains(&k));
            n += 1;
        }
        prop_assert_eq!(n, limit);
    }

    /// Two generators with the same seed produce identical streams.
    #[test]
    fn generator_determinism(keys in 1usize..300, seed in any::<u64>()) {
        let mut a = ZipfGenerator::with_limit(keys, 1.4, seed, 500);
        let mut b = ZipfGenerator::with_limit(keys, 1.4, seed, 500);
        loop {
            let (x, y) = (KeyStream::next_key(&mut a), KeyStream::next_key(&mut b));
            prop_assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
