//! Trace serialization: save a generated workload and replay it later.
//!
//! The simulator normally consumes generators directly, but for
//! reproducibility audits (and to mirror the paper's workflow of replaying a
//! fixed trace file under every algorithm) a generated stream can be dumped
//! to a compact binary file and replayed. The format is:
//!
//! ```text
//! magic "SLBT1\n"
//! header line: "<messages> <keys>\n"
//! payload: little-endian u64 per message (the key identifier)
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::message::KeyId;
use crate::KeyStream;

const MAGIC: &[u8] = b"SLBT1\n";

/// Writes the full contents of `stream` to `path`.
///
/// Returns the number of messages written.
pub fn write_trace<S: KeyStream + ?Sized>(stream: &mut S, path: &Path) -> io::Result<u64> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    writeln!(w, "{} {}", stream.len_hint(), stream.key_space())?;
    let mut written = 0u64;
    while let Some(key) = stream.next_key() {
        w.write_all(&key.to_le_bytes())?;
        written += 1;
    }
    w.flush()?;
    Ok(written)
}

/// A trace file loaded into memory, replayable as a [`KeyStream`].
#[derive(Debug, Clone)]
pub struct TraceReader {
    keys: Vec<KeyId>,
    key_space: u64,
    cursor: usize,
}

impl TraceReader {
    /// Loads a trace previously written by [`write_trace`].
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 6];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an SLB trace file",
            ));
        }
        let mut header = Vec::new();
        // Read the header line byte by byte (it is short).
        loop {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            if b[0] == b'\n' {
                break;
            }
            header.push(b[0]);
        }
        let header = String::from_utf8(header)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad trace header"))?;
        let mut parts = header.split_whitespace();
        let declared: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad message count"))?;
        let key_space: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad key space"))?;
        let mut payload = Vec::new();
        r.read_to_end(&mut payload)?;
        if payload.len() % 8 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated trace payload",
            ));
        }
        let keys: Vec<KeyId> = payload
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8 bytes")))
            .collect();
        if declared != keys.len() as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace declares {declared} messages but contains {}",
                    keys.len()
                ),
            ));
        }
        Ok(Self {
            keys,
            key_space,
            cursor: 0,
        })
    }

    /// Builds a replayable trace directly from an in-memory key sequence.
    pub fn from_keys(keys: Vec<KeyId>, key_space: u64) -> Self {
        Self {
            keys,
            key_space,
            cursor: 0,
        }
    }

    /// Restarts the replay from the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// The raw key sequence.
    pub fn keys(&self) -> &[KeyId] {
        &self.keys
    }
}

impl KeyStream for TraceReader {
    fn next_key(&mut self) -> Option<KeyId> {
        let k = self.keys.get(self.cursor).copied();
        if k.is_some() {
            self.cursor += 1;
        }
        k
    }

    fn len_hint(&self) -> u64 {
        self.keys.len() as u64
    }

    fn key_space(&self) -> u64 {
        self.key_space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfGenerator;

    #[test]
    fn round_trip_preserves_keys() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("slb_trace_test_{}.bin", std::process::id()));
        let mut gen = ZipfGenerator::with_limit(500, 1.3, 21, 5_000);
        // Capture the expected sequence with an identical generator.
        let mut expect_gen = ZipfGenerator::with_limit(500, 1.3, 21, 5_000);
        let mut expected = Vec::new();
        while let Some(k) = KeyStream::next_key(&mut expect_gen) {
            expected.push(k);
        }
        let written = write_trace(&mut gen, &path).expect("write trace");
        assert_eq!(written, 5_000);
        let mut reader = TraceReader::open(&path).expect("open trace");
        assert_eq!(reader.len_hint(), 5_000);
        assert_eq!(reader.key_space(), 500);
        let mut replayed = Vec::new();
        while let Some(k) = reader.next_key() {
            replayed.push(k);
        }
        assert_eq!(replayed, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewind_replays_identically() {
        let mut tr = TraceReader::from_keys(vec![5, 6, 7], 10);
        let first: Vec<_> = std::iter::from_fn(|| tr.next_key()).collect();
        tr.rewind();
        let second: Vec<_> = std::iter::from_fn(|| tr.next_key()).collect();
        assert_eq!(first, second);
        assert_eq!(first, vec![5, 6, 7]);
    }

    #[test]
    fn rejects_garbage_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("slb_trace_garbage_{}.bin", std::process::id()));
        std::fs::write(&path, b"definitely not a trace").expect("write garbage");
        assert!(TraceReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_keys_reports_key_space() {
        let tr = TraceReader::from_keys(vec![1, 2, 3, 1], 3);
        assert_eq!(tr.key_space(), 3);
        assert_eq!(tr.keys(), &[1, 2, 3, 1]);
    }
}
