//! Multi-phase scenario descriptions: drift, heterogeneity, bursts, and
//! mid-run scale-out as one first-class, deterministic spec.
//!
//! The paper's D-Choices/W-Choices schemes are motivated by workloads where
//! skew is *not* static: hot keys churn (the cashtag dataset), workers differ
//! in speed, and clusters resize. A [`Scenario`] captures such a workload as
//! an ordered list of [`ScenarioPhase`]s. Each phase fixes
//!
//! * the key distribution (Zipf `keys`/`skew`, optionally drifting within
//!   the phase via `drift_epochs`),
//! * the arrival pattern ([`Arrival::Steady`] or [`Arrival::Bursty`]),
//! * the active worker count and per-worker service-speed multipliers.
//!
//! Everything is deterministic: the per-source, per-phase key stream is a
//! pure function of `(scenario, phase, source)`, so the threaded engine, the
//! analytic simulator, and a single-threaded exact reference can all replay
//! *the same* scenario and be compared bit for bit.
//!
//! ## Phase alignment
//!
//! Phase lengths are expressed in **windows per source**, never in raw
//! tuples, so a phase transition can never split a tuple-count window: the
//! tuple at source position `i` belongs to window `i / window_size`, and
//! every phase covers a whole number of windows. This is what makes worker
//! scale-out at a phase boundary *sound* — per-window partial aggregates
//! complete entirely within one phase's routing regime, so no window ever
//! mixes two worker sets.
//!
//! ## Drift
//!
//! Drift epochs accumulate globally across phases: phase `p` starts at the
//! epoch index reached by the end of phase `p − 1` (see
//! [`DriftingGenerator::with_epoch_offset`]). A scenario whose phases all use
//! `drift_epochs = 1` therefore re-maps hot-key identities once per phase
//! boundary, and a single-phase scenario with `drift_epochs = 1` degenerates
//! to a plain static Zipf stream. All sources share one identity scramble
//! and one drift seed, so the hot key is the same [`crate::KeyId`] at every
//! source at every point in time.

use serde::{Deserialize, Serialize};
use slb_hash::splitmix::splitmix64;

use crate::drift::DriftingGenerator;
use crate::zipf::ZipfGenerator;

/// Salt folded into the scenario seed to derive the shared drift seed.
const DRIFT_SALT: u64 = 0xD21F_7AB1_E5CE_0A21;

/// How tuples arrive within a phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// Sources emit as fast as downstream back-pressure allows.
    Steady,
    /// Sources emit `burst_tuples` tuples, pause `pause_us` microseconds,
    /// and repeat. Bursts shape timing (latency, queueing) only — routing
    /// decisions and counts are unaffected, so exactness is preserved.
    Bursty {
        /// Tuples per burst (per source).
        burst_tuples: u64,
        /// Pause between bursts, microseconds.
        pause_us: u64,
    },
}

/// One phase of a [`Scenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPhase {
    /// Phase length in windows per source (tuples = `windows × window_size`).
    pub windows: u64,
    /// Number of distinct keys the phase's Zipf distribution draws from.
    pub keys: usize,
    /// Zipf exponent of the phase's key distribution.
    pub skew: f64,
    /// Number of active workers during the phase. Changing this across
    /// phases models scale-out/scale-in at the phase boundary.
    pub workers: usize,
    /// Per-worker service-time multipliers (heterogeneity). Empty means all
    /// workers run at speed 1.0; otherwise the length must equal `workers`.
    /// A multiplier of 2.0 makes that worker spend twice the base service
    /// time per tuple.
    pub worker_speed: Vec<f64>,
    /// Arrival pattern within the phase.
    pub arrival: Arrival,
    /// Number of drift epochs within the phase (≥ 1, and it must divide the
    /// phase's tuples per source so the equal-length epochs realize exactly
    /// the declared count). With 1, key identities are stable for the whole
    /// phase.
    pub drift_epochs: u64,
}

impl ScenarioPhase {
    /// A steady, homogeneous, drift-free phase.
    pub fn new(windows: u64, keys: usize, skew: f64, workers: usize) -> Self {
        Self {
            windows,
            keys,
            skew,
            workers,
            worker_speed: Vec::new(),
            arrival: Arrival::Steady,
            drift_epochs: 1,
        }
    }

    /// Sets the per-worker service-time multipliers.
    pub fn with_worker_speed(mut self, speed: Vec<f64>) -> Self {
        self.worker_speed = speed;
        self
    }

    /// Sets the arrival pattern.
    pub fn with_arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the number of drift epochs within the phase.
    pub fn with_drift_epochs(mut self, epochs: u64) -> Self {
        self.drift_epochs = epochs;
        self
    }

    /// Service-time multiplier for `worker` (1.0 when homogeneous).
    pub fn speed_of(&self, worker: usize) -> f64 {
        self.worker_speed.get(worker).copied().unwrap_or(1.0)
    }
}

/// A deterministic multi-phase workload + cluster description, executable by
/// both `slb-engine` (threaded) and `slb-simulator` (analytic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name (experiment output labels).
    pub name: String,
    /// Number of sources; every source emits the same number of tuples.
    pub sources: usize,
    /// Tuples per window per source sub-stream.
    pub window_size: u64,
    /// Seed for samplers, the shared identity scramble, the drift remap, and
    /// the partitioners' hash families.
    pub seed: u64,
    /// The phases, executed in order.
    pub phases: Vec<ScenarioPhase>,
}

impl Scenario {
    /// Creates a scenario with no phases yet; chain [`Self::phase`].
    pub fn new(name: impl Into<String>, sources: usize, window_size: u64, seed: u64) -> Self {
        Self {
            name: name.into(),
            sources,
            window_size,
            seed,
            phases: Vec::new(),
        }
    }

    /// Appends a phase.
    pub fn phase(mut self, phase: ScenarioPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// A single static phase — the degenerate case every pre-scenario
    /// experiment corresponds to.
    pub fn single_phase(
        name: impl Into<String>,
        sources: usize,
        window_size: u64,
        seed: u64,
        phase: ScenarioPhase,
    ) -> Self {
        Self::new(name, sources, window_size, seed).phase(phase)
    }

    /// Checks structural validity; every executor calls this before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.sources == 0 {
            return Err("scenario needs at least one source".into());
        }
        if self.window_size == 0 {
            return Err("scenario windows need at least one tuple".into());
        }
        if self.phases.is_empty() {
            return Err("scenario needs at least one phase".into());
        }
        for (i, phase) in self.phases.iter().enumerate() {
            if phase.windows == 0 {
                return Err(format!("phase {i}: needs at least one window"));
            }
            if phase.keys == 0 {
                return Err(format!("phase {i}: needs at least one key"));
            }
            if !(phase.skew.is_finite() && phase.skew >= 0.0) {
                return Err(format!("phase {i}: skew must be finite and non-negative"));
            }
            if phase.workers == 0 {
                return Err(format!("phase {i}: needs at least one worker"));
            }
            if !phase.worker_speed.is_empty() {
                if phase.worker_speed.len() != phase.workers {
                    return Err(format!(
                        "phase {i}: worker_speed has {} entries for {} workers",
                        phase.worker_speed.len(),
                        phase.workers
                    ));
                }
                if phase
                    .worker_speed
                    .iter()
                    .any(|&m| !(m.is_finite() && m > 0.0))
                {
                    return Err(format!(
                        "phase {i}: worker_speed multipliers must be positive and finite"
                    ));
                }
            }
            if phase.drift_epochs == 0 {
                return Err(format!("phase {i}: drift_epochs must be at least 1"));
            }
            // Epochs are equal-length slices of the phase, so only an even
            // division realizes exactly the declared count; anything else
            // would skip epoch indices (`drift_epoch_offset` advances by the
            // declared count) or realize extras. Reject the
            // mis-specification instead of silently bending it.
            let phase_tuples = phase.windows * self.window_size;
            if phase_tuples % phase.drift_epochs != 0 {
                return Err(format!(
                    "phase {i}: drift_epochs {} must divide the phase's {} tuples per source",
                    phase.drift_epochs, phase_tuples
                ));
            }
            if let Arrival::Bursty { burst_tuples, .. } = phase.arrival {
                if burst_tuples == 0 {
                    return Err(format!("phase {i}: bursts need at least one tuple"));
                }
            }
        }
        Ok(())
    }

    /// Largest worker count any phase uses (the engine spawns this many
    /// worker threads up front; phases activate a prefix of them).
    pub fn max_workers(&self) -> usize {
        self.phases.iter().map(|p| p.workers).max().unwrap_or(0)
    }

    /// Total windows per source across all phases.
    pub fn total_windows(&self) -> u64 {
        self.phases.iter().map(|p| p.windows).sum()
    }

    /// Tuples each source emits over the whole scenario.
    pub fn tuples_per_source(&self) -> u64 {
        self.total_windows() * self.window_size
    }

    /// Total tuples across all sources.
    pub fn total_tuples(&self) -> u64 {
        self.tuples_per_source() * self.sources as u64
    }

    /// Tuples each source emits during `phase`.
    pub fn phase_tuples_per_source(&self, phase: usize) -> u64 {
        self.phases[phase].windows * self.window_size
    }

    /// Global index of the first window of `phase` (phases never split a
    /// window, so this is exact).
    pub fn phase_start_window(&self, phase: usize) -> u64 {
        self.phases[..phase].iter().map(|p| p.windows).sum()
    }

    /// The phase that `window` belongs to.
    ///
    /// # Panics
    /// Panics if `window` is past the end of the scenario.
    pub fn phase_of_window(&self, window: u64) -> usize {
        let mut start = 0u64;
        for (i, phase) in self.phases.iter().enumerate() {
            start += phase.windows;
            if window < start {
                return i;
            }
        }
        panic!(
            "window {window} is past the scenario's {} windows",
            self.total_windows()
        );
    }

    /// Cumulative drift epochs completed before `phase` — the epoch offset
    /// at which the phase's drifting stream resumes.
    pub fn drift_epoch_offset(&self, phase: usize) -> u64 {
        self.phases[..phase].iter().map(|p| p.drift_epochs).sum()
    }

    /// The shared drift seed (same for all sources and phases, so the epoch
    /// remap is a global property of the scenario).
    pub fn drift_seed(&self) -> u64 {
        splitmix64(self.seed ^ DRIFT_SALT)
    }

    /// Sampler seed for `(phase, source)`: distinct per pair so every
    /// source in every phase draws an independent rank sequence, while the
    /// identity scramble (and thus the key space) stays shared.
    fn sampler_seed(&self, phase: usize, source: usize) -> u64 {
        splitmix64(self.seed ^ (phase as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(source as u64 + 1)
    }

    /// The deterministic key stream of one source during one phase: an
    /// independent Zipf sampler per `(phase, source)`, the scenario-wide
    /// identity scramble, and the scenario-wide drift history resumed at the
    /// phase's cumulative epoch offset. The engine's source threads, the
    /// simulator, and the exact reference all construct their streams
    /// through this one function — divergence is structurally impossible.
    pub fn phase_stream(&self, phase: usize, source: usize) -> DriftingGenerator<ZipfGenerator> {
        let spec = &self.phases[phase];
        let tuples = self.phase_tuples_per_source(phase);
        // Exact division is guaranteed by `validate`, so the phase realizes
        // exactly `drift_epochs` equal-length epochs.
        let epoch_len = tuples / spec.drift_epochs;
        DriftingGenerator::new(
            ZipfGenerator::with_limit(
                spec.keys,
                spec.skew,
                self.sampler_seed(phase, source),
                tuples,
            ),
            epoch_len,
            self.drift_seed(),
        )
        .with_epoch_offset(self.drift_epoch_offset(phase))
        .scrambled_like(self.seed)
    }

    /// The canonical stress scenario used by the differential suite and the
    /// scale-out experiment: drifting skew, a uniform cool-down, worker
    /// heterogeneity, a burst phase, and scale-out then scale-in. Exercises
    /// every scenario feature at once.
    pub fn stress(sources: usize, window_size: u64, workers: usize, seed: u64) -> Self {
        let scaled = workers * 2;
        Self::new("stress", sources, window_size, seed)
            .phase(
                // Hot start: heavy skew on the base worker set.
                ScenarioPhase::new(4, 600, 1.8, workers),
            )
            .phase(
                // Drift while heterogeneous: hot keys churn twice, first
                // worker runs at half speed.
                ScenarioPhase::new(4, 600, 1.4, workers)
                    .with_drift_epochs(2)
                    .with_worker_speed(
                        (0..workers)
                            .map(|w| if w == 0 { 2.0 } else { 1.0 })
                            .collect(),
                    ),
            )
            .phase(
                // Scale-out under extreme skew, arriving in bursts.
                ScenarioPhase::new(4, 400, 2.0, scaled).with_arrival(Arrival::Bursty {
                    burst_tuples: 2 * window_size,
                    pause_us: 50,
                }),
            )
            .phase(
                // Scale back in on a uniform tail.
                ScenarioPhase::new(2, 1_000, 0.0, workers),
            )
    }

    /// A drift-heavy scenario for the elasticity controller: the configured
    /// worker count stays constant (when a controller is attached, *it* owns
    /// any changes) while the head set churns repeatedly under high skew —
    /// the regime where online `d` re-solving beats any static `d`.
    pub fn drift(sources: usize, window_size: u64, workers: usize, seed: u64) -> Self {
        Self::new("drift", sources, window_size, seed)
            .phase(
                // Heavy skew with the hot keys remapped three times.
                ScenarioPhase::new(6, 400, 1.9, workers).with_drift_epochs(3),
            )
            .phase(
                // Hotter still, over a smaller key space.
                ScenarioPhase::new(6, 300, 2.0, workers).with_drift_epochs(2),
            )
            .phase(
                // Cool-down at moderate skew, one last head.
                ScenarioPhase::new(4, 600, 1.5, workers),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyStream;

    fn demo() -> Scenario {
        Scenario::new("demo", 3, 128, 42)
            .phase(ScenarioPhase::new(2, 500, 1.5, 4))
            .phase(ScenarioPhase::new(3, 300, 2.0, 8).with_drift_epochs(2))
            .phase(ScenarioPhase::new(1, 400, 0.0, 2))
    }

    #[test]
    fn arithmetic_is_consistent() {
        let s = demo();
        assert!(s.validate().is_ok());
        assert_eq!(s.total_windows(), 6);
        assert_eq!(s.tuples_per_source(), 6 * 128);
        assert_eq!(s.total_tuples(), 3 * 6 * 128);
        assert_eq!(s.max_workers(), 8);
        assert_eq!(s.phase_start_window(0), 0);
        assert_eq!(s.phase_start_window(1), 2);
        assert_eq!(s.phase_start_window(2), 5);
        assert_eq!(s.phase_of_window(0), 0);
        assert_eq!(s.phase_of_window(1), 0);
        assert_eq!(s.phase_of_window(2), 1);
        assert_eq!(s.phase_of_window(4), 1);
        assert_eq!(s.phase_of_window(5), 2);
        assert_eq!(s.drift_epoch_offset(0), 0);
        assert_eq!(s.drift_epoch_offset(1), 1);
        assert_eq!(s.drift_epoch_offset(2), 3);
    }

    #[test]
    #[should_panic(expected = "past the scenario")]
    fn phase_of_window_past_the_end_panics() {
        let _ = demo().phase_of_window(6);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let base = demo();
        assert!(Scenario::new("x", 0, 128, 1)
            .phase(ScenarioPhase::new(1, 10, 1.0, 2))
            .validate()
            .is_err());
        assert!(Scenario::new("x", 1, 0, 1)
            .phase(ScenarioPhase::new(1, 10, 1.0, 2))
            .validate()
            .is_err());
        assert!(Scenario::new("x", 1, 128, 1).validate().is_err());
        let mut s = base.clone();
        s.phases[0].windows = 0;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.phases[1].workers = 0;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.phases[1].worker_speed = vec![1.0; 3]; // 8 workers
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.phases[0].worker_speed = vec![0.0; 4];
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.phases[2].drift_epochs = 0;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        // Phase 0 has 2 × 128 = 256 tuples; 3 epochs cannot divide evenly.
        s.phases[0].drift_epochs = 3;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        // More epochs than tuples is rejected by the same rule.
        s.phases[0].drift_epochs = 1_000;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.phases[0].arrival = Arrival::Bursty {
            burst_tuples: 0,
            pause_us: 10,
        };
        assert!(s.validate().is_err());
        let mut s = base;
        s.phases[0].skew = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn phase_streams_are_deterministic_and_bounded() {
        let s = demo();
        for phase in 0..s.phases.len() {
            for source in 0..s.sources {
                let mut a = s.phase_stream(phase, source);
                let mut b = s.phase_stream(phase, source);
                let mut n = 0u64;
                while let Some(k) = a.next_key() {
                    assert_eq!(Some(k), b.next_key());
                    n += 1;
                }
                assert_eq!(n, s.phase_tuples_per_source(phase));
            }
        }
    }

    #[test]
    fn sources_and_phases_draw_distinct_rank_sequences() {
        let s = demo();
        let collect = |phase: usize, source: usize| -> Vec<u64> {
            let mut stream = s.phase_stream(phase, source);
            std::iter::from_fn(|| stream.next_key()).collect()
        };
        assert_ne!(collect(0, 0), collect(0, 1), "sources must be independent");
        // Different phases with identical distributions would still differ.
        let twin = Scenario::new("twin", 1, 64, 9)
            .phase(ScenarioPhase::new(2, 100, 1.0, 2))
            .phase(ScenarioPhase::new(2, 100, 1.0, 2));
        let p0: Vec<u64> = {
            let mut st = twin.phase_stream(0, 0);
            std::iter::from_fn(|| st.next_key()).collect()
        };
        let p1: Vec<u64> = {
            let mut st = twin.phase_stream(1, 0);
            std::iter::from_fn(|| st.next_key()).collect()
        };
        assert_ne!(p0, p1, "phases must sample independently");
    }

    #[test]
    fn first_phase_without_drift_matches_a_plain_scrambled_zipf() {
        // The one-phase special case: drift epoch offset 0 and one epoch
        // leaves identities untouched, so the stream equals a plain shared-
        // scramble Zipf generator.
        let s = Scenario::single_phase("plain", 2, 64, 7, ScenarioPhase::new(3, 200, 1.4, 4));
        let mut scenario_stream = s.phase_stream(0, 1);
        let mut plain =
            ZipfGenerator::with_limit(200, 1.4, s.sampler_seed(0, 1), 3 * 64).scrambled_like(7);
        loop {
            let (a, b) = (scenario_stream.next_key(), KeyStream::next_key(&mut plain));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn hot_key_identity_is_shared_across_sources_under_drift() {
        let s = Scenario::single_phase(
            "drifty",
            2,
            1_024,
            11,
            ScenarioPhase::new(16, 300, 2.0, 4).with_drift_epochs(2),
        );
        let hottest = |source: usize, take: u64| -> u64 {
            let mut stream = s.phase_stream(0, source);
            let mut counts = std::collections::HashMap::new();
            for _ in 0..take {
                *counts.entry(stream.next_key().unwrap()).or_insert(0u64) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        let half = s.tuples_per_source() / 2;
        assert_eq!(hottest(0, half), hottest(1, half));
    }

    #[test]
    fn stress_preset_is_valid_and_scales_out() {
        let s = Scenario::stress(3, 256, 4, 42);
        assert!(s.validate().is_ok());
        assert_eq!(s.max_workers(), 8);
        assert!(s.phases.iter().any(|p| p.drift_epochs > 1));
        assert!(s
            .phases
            .iter()
            .any(|p| matches!(p.arrival, Arrival::Bursty { .. })));
        assert!(s.phases.iter().any(|p| !p.worker_speed.is_empty()));
    }

    #[test]
    fn drift_preset_is_valid_with_constant_workers() {
        let s = Scenario::drift(2, 512, 5, 7);
        assert!(s.validate().is_ok());
        // The worker count never changes: adaptation is the controller's job.
        assert!(s.phases.iter().all(|p| p.workers == 5));
        assert_eq!(s.max_workers(), 5);
        // At least two phases churn their head sets mid-phase.
        assert!(s.phases.iter().filter(|p| p.drift_epochs > 1).count() >= 2);
        assert!(s.phases.iter().all(|p| p.skew >= 1.5));
    }
}
