//! Walker/Vose alias tables for O(1) sampling from discrete distributions.
//!
//! The Zipf workloads need to draw 10^7 or more samples from distributions
//! with up to 10^6 support points (Figure 10 uses |K| up to one million), so
//! inverse-CDF sampling with a binary search (O(log K) per draw) is replaced
//! by the alias method: O(K) preprocessing, O(1) per draw, exact
//! probabilities.

use rand::Rng;

/// A prepared alias table over `n` outcomes with the given probabilities.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Probability of keeping the column's own outcome, scaled to [0, 1].
    prob: Vec<f64>,
    /// Alternative outcome for each column.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from (not necessarily normalized) non-negative
    /// weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        let sum: f64 = weights.iter().sum();
        assert!(
            sum.is_finite() && sum > 0.0,
            "weights must sum to a positive finite value"
        );
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weight {i} is negative or non-finite: {w}"
            );
        }
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        // Scaled probabilities: mean 1.0.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / sum).collect();

        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: everything still queued gets probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no outcomes (never the case after construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index using the provided random number generator.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let column = rng.gen_range(0..n);
        let coin: f64 = rng.gen();
        if coin < self.prob[column] {
            column
        } else {
            self.alias[column]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0; 8]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        let samples = 80_000;
        for _ in 0..samples {
            counts[table.sample(&mut rng)] += 1;
        }
        let expected = samples as f64 / 8.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.05);
        }
    }

    #[test]
    fn skewed_weights_match_expected_frequencies() {
        let weights = [8.0, 4.0, 2.0, 1.0, 1.0];
        let total: f64 = weights.iter().sum();
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(7);
        let samples = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..samples {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / samples as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "outcome {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_outcome_always_sampled() {
        let table = AliasTable::new(&[3.5]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let s = table.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-probability outcome {s}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }
}
