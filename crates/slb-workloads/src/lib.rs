//! Workload substrate for the SLB (Scalable Load Balancing) library.
//!
//! The paper evaluates its load-balancing algorithms on three real-world
//! traces (Wikipedia page views, Twitter words, Twitter cashtags) and on
//! synthetic Zipf streams. The raw traces are not redistributable, so this
//! crate builds *synthetic stand-ins* that match the published statistics of
//! each trace (Table I: number of messages, number of distinct keys, and the
//! relative frequency `p1` of the hottest key) plus the qualitative property
//! the paper highlights for each (heavy skew for Wikipedia, enormous key
//! space for Twitter, concept drift for cashtags). See `DESIGN.md` for the
//! substitution rationale.
//!
//! Contents:
//!
//! * [`zipf`] — exact Zipf(`z`) distributions with alias-method sampling and
//!   a solver that fits the exponent to a target `p1`.
//! * [`alias`] — Walker/Vose alias tables for O(1) sampling from arbitrary
//!   discrete distributions.
//! * [`message`] — the `⟨timestamp, key, value⟩` message type used across the
//!   simulator and the engine.
//! * [`datasets`] — the ZF / WP-like / TW-like / CT-like dataset definitions
//!   and their generators.
//! * [`drift`] — concept-drift wrappers that re-draw the key identity mapping
//!   over time (the cashtag behaviour).
//! * [`scenario`] — multi-phase scenario specs (drift, heterogeneity, bursts,
//!   scale-out) executable by both the engine and the simulator.
//! * [`trace`] — plain-text trace serialization for saving and replaying
//!   generated workloads.

pub mod alias;
pub mod datasets;
pub mod drift;
pub mod message;
pub mod scenario;
pub mod trace;
pub mod zipf;

pub use datasets::{Dataset, DatasetKind, DatasetStats, SyntheticDataset};
pub use drift::DriftingGenerator;
pub use message::{KeyId, Message};
pub use scenario::{Arrival, Scenario, ScenarioPhase};
pub use zipf::{ZipfDistribution, ZipfGenerator};

/// A (possibly unbounded) stream of keyed messages.
///
/// Generators implement this trait so the simulator and the engine can
/// consume any workload the same way. `len_hint` reports the number of
/// messages the stream intends to produce (all built-in generators are
/// finite).
pub trait KeyStream {
    /// Returns the next key in the stream, or `None` when exhausted.
    fn next_key(&mut self) -> Option<KeyId>;

    /// Number of messages this stream will produce in total.
    fn len_hint(&self) -> u64;

    /// Number of distinct keys the stream draws from.
    fn key_space(&self) -> u64;
}
