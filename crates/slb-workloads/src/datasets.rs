//! Dataset definitions matching the paper's Table I.
//!
//! The paper evaluates on three real traces and a family of synthetic Zipf
//! streams. We cannot redistribute the raw traces, so this module generates
//! synthetic stand-ins whose *published statistics* (number of messages,
//! number of distinct keys, and the frequency `p1` of the hottest key) match
//! Table I, and which preserve the qualitative property the paper calls out
//! for each trace. The load-balance behaviour of every algorithm under study
//! depends only on the key-frequency distribution and the arrival order, so a
//! distribution-matched synthetic replay exercises the same code paths and
//! produces the same comparative results (see `DESIGN.md`).
//!
//! | Dataset | Symbol | Messages | Keys  | p1     | Extra property |
//! |---------|--------|----------|-------|--------|----------------|
//! | Wikipedia | WP   | 22 M     | 2.9 M | 9.32 % | heavy head     |
//! | Twitter   | TW   | 1.2 G    | 31 M  | 2.67 % | huge key space |
//! | Cashtags  | CT   | 690 k    | 2.9 k | 3.29 % | concept drift  |
//! | Zipf      | ZF   | 10^7     | 10^4..10^6 | ∝ 1/Σx^-z | controlled skew |
//!
//! By default the WP and TW stand-ins are scaled down (keeping the
//! keys-to-messages ratio and p1) so that the full experiment suite runs on a
//! laptop; `Scale::Paper` reproduces the full-size parameters.

use serde::{Deserialize, Serialize};

use crate::drift::DriftingGenerator;
use crate::zipf::{fit_exponent_to_p1, ZipfGenerator};
use crate::KeyStream;

/// Which of the paper's datasets a generator emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Wikipedia page-view log (WP).
    Wikipedia,
    /// Twitter words (TW).
    Twitter,
    /// Twitter cashtags (CT) — exhibits strong concept drift.
    Cashtags,
    /// Synthetic Zipf (ZF) with an explicit exponent.
    Zipf {
        /// Zipf exponent `z`.
        exponent_milli: u32,
    },
}

impl DatasetKind {
    /// Short symbol used in the paper's tables and our experiment output.
    pub fn symbol(&self) -> &'static str {
        match self {
            DatasetKind::Wikipedia => "WP",
            DatasetKind::Twitter => "TW",
            DatasetKind::Cashtags => "CT",
            DatasetKind::Zipf { .. } => "ZF",
        }
    }
}

/// Scale at which to instantiate a real-world-like dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Paper-size message and key counts (Table I). Heavy; intended for the
    /// full reproduction runs.
    Paper,
    /// 1/10-size stand-in preserving the keys/messages ratio and p1.
    Laptop,
    /// Small smoke-test size for unit/integration tests.
    Smoke,
}

/// Static description of a dataset: the numbers reported in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Which trace this describes.
    pub kind: DatasetKind,
    /// Total number of messages in the stream.
    pub messages: u64,
    /// Number of distinct keys.
    pub keys: u64,
    /// Relative frequency of the most frequent key, in `[0, 1]`.
    pub p1: f64,
}

/// A fully-specified synthetic dataset: stats plus generator parameters.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    stats: DatasetStats,
    exponent: f64,
    seed: u64,
    /// Number of messages between key-identity reshuffles (concept drift);
    /// `None` for stationary datasets.
    drift_epoch: Option<u64>,
}

/// Any workload that can describe itself and produce a key stream.
pub trait Dataset {
    /// The dataset statistics (Table I row).
    fn stats(&self) -> DatasetStats;
    /// Builds a fresh stream over the dataset.
    fn stream(&self) -> Box<dyn KeyStream>;
}

impl SyntheticDataset {
    /// The Wikipedia-like dataset (WP): 22 M messages over 2.9 M keys with
    /// p1 = 9.32 % at paper scale.
    pub fn wikipedia_like(scale: Scale, seed: u64) -> Self {
        let (messages, keys) = match scale {
            Scale::Paper => (22_000_000, 2_900_000),
            Scale::Laptop => (2_200_000, 290_000),
            Scale::Smoke => (110_000, 14_500),
        };
        Self::fitted(DatasetKind::Wikipedia, messages, keys, 0.0932, seed, None)
    }

    /// The Twitter-words-like dataset (TW): 1.2 G messages over 31 M keys
    /// with p1 = 2.67 % at paper scale. Even the laptop scale keeps the very
    /// large key space relative to message count that characterizes TW.
    pub fn twitter_like(scale: Scale, seed: u64) -> Self {
        let (messages, keys) = match scale {
            Scale::Paper => (1_200_000_000, 31_000_000),
            Scale::Laptop => (6_000_000, 155_000),
            Scale::Smoke => (120_000, 3_100),
        };
        Self::fitted(DatasetKind::Twitter, messages, keys, 0.0267, seed, None)
    }

    /// The cashtags-like dataset (CT): 690 k messages over 2.9 k keys with
    /// p1 = 3.29 %, and strong concept drift: the identity of the hot keys is
    /// re-drawn once per drift epoch (the paper reports the distribution
    /// "changes drastically throughout time").
    pub fn cashtag_like(scale: Scale, seed: u64) -> Self {
        let (messages, keys) = match scale {
            Scale::Paper => (690_000, 2_900),
            Scale::Laptop => (690_000, 2_900),
            Scale::Smoke => (69_000, 2_900),
        };
        // Roughly 80 drift epochs across the stream, mirroring the ~80 hours
        // covered by Figure 12's CT panel.
        let epoch = (messages / 80).max(1);
        Self::fitted(
            DatasetKind::Cashtags,
            messages,
            keys,
            0.0329,
            seed,
            Some(epoch),
        )
    }

    /// A synthetic Zipf dataset (ZF) with an explicit exponent.
    pub fn zipf(keys: u64, messages: u64, exponent: f64, seed: u64) -> Self {
        let p1 = crate::zipf::ZipfDistribution::new(keys as usize, exponent).p1();
        Self {
            stats: DatasetStats {
                kind: DatasetKind::Zipf {
                    exponent_milli: (exponent * 1000.0).round() as u32,
                },
                messages,
                keys,
                p1,
            },
            exponent,
            seed,
            drift_epoch: None,
        }
    }

    fn fitted(
        kind: DatasetKind,
        messages: u64,
        keys: u64,
        target_p1: f64,
        seed: u64,
        drift_epoch: Option<u64>,
    ) -> Self {
        let exponent = fit_exponent_to_p1(keys as usize, target_p1)
            .expect("Table I statistics are always fittable");
        Self {
            stats: DatasetStats {
                kind,
                messages,
                keys,
                p1: target_p1,
            },
            exponent,
            seed,
            drift_epoch,
        }
    }

    /// The fitted Zipf exponent of the stand-in distribution.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The RNG / scramble seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The drift epoch length in messages, if this dataset drifts.
    pub fn drift_epoch(&self) -> Option<u64> {
        self.drift_epoch
    }

    /// Convenience: all three real-world-like datasets at the given scale.
    pub fn real_world_suite(scale: Scale, seed: u64) -> Vec<SyntheticDataset> {
        vec![
            Self::wikipedia_like(scale, seed),
            Self::twitter_like(scale, seed.wrapping_add(1)),
            Self::cashtag_like(scale, seed.wrapping_add(2)),
        ]
    }
}

impl Dataset for SyntheticDataset {
    fn stats(&self) -> DatasetStats {
        self.stats
    }

    fn stream(&self) -> Box<dyn KeyStream> {
        let base = ZipfGenerator::with_limit(
            self.stats.keys as usize,
            self.exponent,
            self.seed,
            self.stats.messages,
        );
        match self.drift_epoch {
            Some(epoch) => Box::new(DriftingGenerator::new(base, epoch, self.seed ^ 0xD81F)),
            None => Box::new(base),
        }
    }
}

/// Returns the Table I rows for all four datasets at paper scale, used by the
/// `expt_table1_datasets` harness.
pub fn table1_rows() -> Vec<DatasetStats> {
    vec![
        SyntheticDataset::wikipedia_like(Scale::Paper, 0).stats(),
        SyntheticDataset::twitter_like(Scale::Paper, 0).stats(),
        SyntheticDataset::cashtag_like(Scale::Paper, 0).stats(),
        SyntheticDataset::zipf(10_000, 10_000_000, 1.0, 0).stats(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_statistics_match_paper() {
        let rows = table1_rows();
        assert_eq!(rows[0].messages, 22_000_000);
        assert_eq!(rows[0].keys, 2_900_000);
        assert!((rows[0].p1 - 0.0932).abs() < 1e-9);
        assert_eq!(rows[1].messages, 1_200_000_000);
        assert_eq!(rows[1].keys, 31_000_000);
        assert!((rows[1].p1 - 0.0267).abs() < 1e-9);
        assert_eq!(rows[2].messages, 690_000);
        assert_eq!(rows[2].keys, 2_900);
        assert!((rows[2].p1 - 0.0329).abs() < 1e-9);
    }

    #[test]
    fn fitted_exponent_reproduces_target_p1() {
        let wp = SyntheticDataset::wikipedia_like(Scale::Smoke, 1);
        let d = crate::zipf::ZipfDistribution::new(wp.stats().keys as usize, wp.exponent());
        assert!((d.p1() - 0.0932).abs() < 1e-4, "fitted p1 {}", d.p1());
    }

    #[test]
    fn smoke_streams_have_declared_length_and_key_space() {
        for ds in SyntheticDataset::real_world_suite(Scale::Smoke, 3) {
            let mut stream = ds.stream();
            assert_eq!(stream.len_hint(), ds.stats().messages);
            assert_eq!(stream.key_space(), ds.stats().keys);
            let mut n = 0u64;
            let mut distinct = std::collections::HashSet::new();
            while let Some(k) = stream.next_key() {
                distinct.insert(k);
                n += 1;
            }
            assert_eq!(n, ds.stats().messages, "{:?}", ds.stats().kind);
            // Drifting datasets re-draw key identities every epoch, so the
            // number of distinct identifiers over the whole stream exceeds
            // the per-epoch key space; only stationary datasets are bounded.
            if ds.drift_epoch().is_none() {
                assert!(distinct.len() as u64 <= ds.stats().keys);
            }
        }
    }

    #[test]
    fn wikipedia_empirical_p1_close_to_declared() {
        use crate::message::KeyId;
        let ds = SyntheticDataset::wikipedia_like(Scale::Smoke, 11);
        let mut stream = ds.stream();
        let mut counts: std::collections::HashMap<KeyId, u64> = std::collections::HashMap::new();
        let mut n = 0u64;
        while let Some(k) = stream.next_key() {
            *counts.entry(k).or_insert(0) += 1;
            n += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let p1 = max as f64 / n as f64;
        assert!((p1 - 0.0932).abs() < 0.01, "empirical p1 {p1}");
    }

    #[test]
    fn cashtags_have_drift_and_others_do_not() {
        assert!(SyntheticDataset::cashtag_like(Scale::Smoke, 0)
            .drift_epoch()
            .is_some());
        assert!(SyntheticDataset::wikipedia_like(Scale::Smoke, 0)
            .drift_epoch()
            .is_none());
        assert!(SyntheticDataset::twitter_like(Scale::Smoke, 0)
            .drift_epoch()
            .is_none());
    }

    #[test]
    fn zipf_dataset_reports_its_exponent_and_p1() {
        let ds = SyntheticDataset::zipf(10_000, 1_000_000, 2.0, 5);
        assert_eq!(ds.stats().kind.symbol(), "ZF");
        assert!(ds.stats().p1 > 0.55);
    }

    #[test]
    fn dataset_symbols() {
        assert_eq!(DatasetKind::Wikipedia.symbol(), "WP");
        assert_eq!(DatasetKind::Twitter.symbol(), "TW");
        assert_eq!(DatasetKind::Cashtags.symbol(), "CT");
    }
}
