//! Zipf distributions over a finite key space.
//!
//! The paper's synthetic workloads (the "ZF" datasets) draw keys from a Zipf
//! distribution with exponent `z ∈ {0.1 … 2.0}` over `|K| ∈ {10^4, 10^5,
//! 10^6}` keys. A key of rank `i` has probability `p_i ∝ i^{-z}`.
//!
//! This module provides:
//! * [`ZipfDistribution`] — exact probabilities, cumulative mass of prefixes
//!   (needed by the D-Choices solver and the head-cardinality analysis), and
//!   the generalized harmonic normalization constant.
//! * [`ZipfGenerator`] — a seeded sampler using an alias table (O(1) per
//!   draw) that also scrambles key identities so that rank order is not
//!   recoverable from the key identifier.
//! * [`fit_exponent_to_p1`] — fits `z` so that the most frequent key has a
//!   target relative frequency, used to build the WP/TW/CT-like stand-ins.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::alias::AliasTable;
use crate::message::KeyId;
use crate::KeyStream;

/// An exact finite-support Zipf distribution.
#[derive(Debug, Clone)]
pub struct ZipfDistribution {
    exponent: f64,
    /// `p[i]` is the probability of the key with rank `i + 1`.
    probabilities: Vec<f64>,
}

impl ZipfDistribution {
    /// Builds the distribution over `keys` ranks with the given `exponent`.
    ///
    /// # Panics
    /// Panics if `keys == 0` or the exponent is negative or non-finite.
    pub fn new(keys: usize, exponent: f64) -> Self {
        assert!(keys > 0, "Zipf distribution needs at least one key");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be non-negative"
        );
        let mut probabilities: Vec<f64> = (1..=keys).map(|i| (i as f64).powf(-exponent)).collect();
        let norm: f64 = probabilities.iter().sum();
        for p in &mut probabilities {
            *p /= norm;
        }
        Self {
            exponent,
            probabilities,
        }
    }

    /// The exponent `z`.
    #[inline]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Number of keys in the support.
    #[inline]
    pub fn keys(&self) -> usize {
        self.probabilities.len()
    }

    /// Probability of the key with rank `rank` (1-based).
    ///
    /// # Panics
    /// Panics if `rank` is 0 or above the number of keys.
    #[inline]
    pub fn probability(&self, rank: usize) -> f64 {
        assert!(
            rank >= 1 && rank <= self.probabilities.len(),
            "rank {rank} out of range"
        );
        self.probabilities[rank - 1]
    }

    /// Probability of the most frequent key, `p1`.
    #[inline]
    pub fn p1(&self) -> f64 {
        self.probabilities[0]
    }

    /// The full probability vector in rank order.
    #[inline]
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Total probability mass of the `h` most frequent keys.
    pub fn head_mass(&self, h: usize) -> f64 {
        self.probabilities.iter().take(h).sum()
    }

    /// Number of keys whose probability is at least `threshold` — the
    /// cardinality of the head `H = {k : p_k ≥ θ}` (Figure 3).
    pub fn head_cardinality(&self, threshold: f64) -> usize {
        // Probabilities are sorted descending, so a partition point search
        // suffices.
        self.probabilities.partition_point(|&p| p >= threshold)
    }
}

/// Generalized harmonic number `H(keys, z) = Σ_{i=1..keys} i^{-z}`.
///
/// Exact summation is used for the first terms; beyond a cut-off the
/// remainder is approximated with the midpoint-rule integral
/// `∫ x^{-z} dx`, which is accurate to well below 10^-6 relative error for
/// the smooth integrand involved. This keeps the p1-fitting procedure fast
/// even for the paper-scale key spaces (31 million keys for the Twitter
/// dataset) where a term-by-term sum would be prohibitively slow.
pub fn generalized_harmonic(keys: usize, z: f64) -> f64 {
    const EXACT_CUTOFF: usize = 20_000;
    let exact_terms = keys.min(EXACT_CUTOFF);
    let mut sum: f64 = (1..=exact_terms).map(|i| (i as f64).powf(-z)).sum();
    if keys > exact_terms {
        let a = exact_terms as f64 + 0.5;
        let b = keys as f64 + 0.5;
        sum += if (z - 1.0).abs() < 1e-9 {
            (b / a).ln()
        } else {
            (b.powf(1.0 - z) - a.powf(1.0 - z)) / (1.0 - z)
        };
    }
    sum
}

/// Fits the Zipf exponent so that `p1` matches `target_p1` for a support of
/// `keys` keys, via bisection on the monotone map `z ↦ p1(z) = 1/H(keys, z)`.
///
/// Returns an error string when the target is unreachable (e.g. below the
/// uniform probability `1/keys`).
pub fn fit_exponent_to_p1(keys: usize, target_p1: f64) -> Result<f64, String> {
    if keys == 0 {
        return Err("key space must be non-empty".to_string());
    }
    let uniform = 1.0 / keys as f64;
    if target_p1 < uniform - 1e-12 {
        return Err(format!(
            "target p1 {target_p1} is below the uniform probability {uniform} for {keys} keys"
        ));
    }
    if target_p1 >= 1.0 {
        return Err("target p1 must be below 1".to_string());
    }
    let p1_of = |z: f64| 1.0 / generalized_harmonic(keys, z);
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // Grow the bracket until p1(hi) exceeds the target (p1 is increasing in z).
    while p1_of(hi) < target_p1 {
        hi *= 2.0;
        if hi > 64.0 {
            return Err(format!(
                "target p1 {target_p1} not reachable for {keys} keys"
            ));
        }
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if p1_of(mid) < target_p1 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// A seeded Zipf sampler producing scrambled key identifiers.
///
/// Key identity scrambling: the key with rank `r` is reported as
/// `splitmix64(r ⊕ scramble_seed)`, a bijection, so that identifiers carry no
/// rank information. [`ZipfGenerator::rank_of`] / [`ZipfGenerator::key_of`]
/// convert between the two views (experiments need the rank view to split
/// head from tail when reporting, the router only ever sees identifiers).
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    distribution: ZipfDistribution,
    table: AliasTable,
    rng: StdRng,
    scramble_seed: u64,
    produced: u64,
    limit: u64,
}

/// Salt folded into the seed to derive the identity-scramble key.
const SCRAMBLE_SALT: u64 = 0xC0FF_EE00_DEAD_BEEF;

impl ZipfGenerator {
    /// Creates an unbounded generator (use [`Self::with_limit`] to bound it).
    pub fn new(keys: usize, exponent: f64, seed: u64) -> Self {
        let distribution = ZipfDistribution::new(keys, exponent);
        let table = AliasTable::new(distribution.probabilities());
        Self {
            distribution,
            table,
            rng: StdRng::seed_from_u64(seed),
            scramble_seed: seed ^ SCRAMBLE_SALT,
            produced: 0,
            limit: u64::MAX,
        }
    }

    /// Creates a generator that stops after `limit` messages.
    pub fn with_limit(keys: usize, exponent: f64, seed: u64, limit: u64) -> Self {
        let mut g = Self::new(keys, exponent, seed);
        g.limit = limit;
        g
    }

    /// Re-keys the identity scramble to that of a generator seeded with
    /// `seed`, leaving the sampling RNG untouched.
    ///
    /// By default the rank→identifier bijection is derived from the same
    /// seed as the sampler, so two generators with different seeds disagree
    /// on which `KeyId` names the rank-1 key. That is wrong for a
    /// multi-source topology: the paper's sources all draw from *one* key
    /// space, and both the grouping comparison (the hot key must be the same
    /// key everywhere) and downstream per-key aggregation (counts from
    /// different sources must collide on the same identifier) depend on it.
    /// Give every source an independent sampler seed but the same scramble
    /// seed to model that faithfully.
    pub fn scrambled_like(mut self, seed: u64) -> Self {
        self.scramble_seed = seed ^ SCRAMBLE_SALT;
        self
    }

    /// The underlying exact distribution.
    #[inline]
    pub fn distribution(&self) -> &ZipfDistribution {
        &self.distribution
    }

    /// Draws the next key identifier (does not respect the limit; use the
    /// [`KeyStream`] interface for bounded iteration).
    #[inline]
    pub fn next_key(&mut self) -> KeyId {
        let rank = self.table.sample(&mut self.rng) as u64 + 1;
        self.key_of(rank)
    }

    /// Key identifier for the key of the given 1-based rank.
    #[inline]
    pub fn key_of(&self, rank: u64) -> KeyId {
        slb_hash::splitmix::splitmix64(rank ^ self.scramble_seed)
    }

    /// Inverse of [`Self::key_of`] by exhaustive check against the rank
    /// space. Only intended for analysis/reporting on small key spaces; the
    /// simulator keeps its own rank map for large ones.
    pub fn rank_of(&self, key: KeyId) -> Option<u64> {
        (1..=self.distribution.keys() as u64).find(|&r| self.key_of(r) == key)
    }
}

impl KeyStream for ZipfGenerator {
    fn next_key(&mut self) -> Option<KeyId> {
        if self.produced >= self.limit {
            return None;
        }
        self.produced += 1;
        Some(ZipfGenerator::next_key(self))
    }

    fn len_hint(&self) -> u64 {
        self.limit
    }

    fn key_space(&self) -> u64 {
        self.distribution.keys() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one_and_are_sorted() {
        for z in [0.0, 0.5, 1.0, 2.0] {
            let d = ZipfDistribution::new(1000, z);
            let sum: f64 = d.probabilities().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "z={z}: sum {sum}");
            for w in d.probabilities().windows(2) {
                assert!(w[0] >= w[1] - 1e-15, "z={z}: not descending");
            }
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let d = ZipfDistribution::new(100, 0.0);
        for rank in 1..=100 {
            assert!((d.probability(rank) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn high_skew_concentrates_mass_on_first_key() {
        // The paper notes that at z = 2.0 the most frequent key accounts for
        // roughly 60% of the stream.
        let d = ZipfDistribution::new(10_000, 2.0);
        assert!(d.p1() > 0.55 && d.p1() < 0.65, "p1 = {}", d.p1());
    }

    #[test]
    fn head_cardinality_matches_manual_count() {
        let d = ZipfDistribution::new(10_000, 1.0);
        let theta = 2.0 / 50.0; // 2/n with n = 50
        let manual = d.probabilities().iter().filter(|&&p| p >= theta).count();
        assert_eq!(d.head_cardinality(theta), manual);
        // Lower threshold includes more keys.
        assert!(d.head_cardinality(1.0 / (5.0 * 50.0)) >= manual);
    }

    #[test]
    fn head_mass_monotone_and_bounded() {
        let d = ZipfDistribution::new(500, 1.4);
        let mut last = 0.0;
        for h in 0..=500 {
            let m = d.head_mass(h);
            assert!(m >= last - 1e-15);
            assert!(m <= 1.0 + 1e-9);
            last = m;
        }
        assert!((d.head_mass(500) - 1.0).abs() < 1e-9);
        assert!(
            (d.head_mass(1000) - 1.0).abs() < 1e-9,
            "over-long prefix saturates"
        );
    }

    #[test]
    fn fit_exponent_recovers_known_p1() {
        for (keys, z) in [(10_000usize, 0.8), (2_900, 1.3), (100_000, 1.05)] {
            let target = ZipfDistribution::new(keys, z).p1();
            let fitted = fit_exponent_to_p1(keys, target).expect("fit must succeed");
            assert!(
                (fitted - z).abs() < 1e-3,
                "keys={keys} z={z} fitted={fitted}"
            );
        }
    }

    #[test]
    fn generalized_harmonic_matches_exact_sum() {
        for (keys, z) in [
            (100usize, 0.5),
            (50_000, 1.0),
            (80_000, 1.7),
            (120_000, 0.9),
        ] {
            let exact: f64 = (1..=keys).map(|i| (i as f64).powf(-z)).sum();
            let approx = generalized_harmonic(keys, z);
            let rel = ((approx - exact) / exact).abs();
            assert!(rel < 1e-6, "keys={keys} z={z}: relative error {rel}");
        }
    }

    #[test]
    fn fit_exponent_rejects_impossible_targets() {
        assert!(fit_exponent_to_p1(100, 0.001).is_err(), "below uniform");
        assert!(fit_exponent_to_p1(100, 1.0).is_err());
        assert!(fit_exponent_to_p1(0, 0.5).is_err());
    }

    #[test]
    fn generator_empirical_frequencies_match_distribution() {
        let keys = 200;
        let z = 1.2;
        let mut g = ZipfGenerator::new(keys, z, 99);
        let samples = 200_000u64;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..samples {
            *counts.entry(g.next_key()).or_insert(0u64) += 1;
        }
        let d = ZipfDistribution::new(keys, z);
        // Check the three hottest keys' empirical frequencies.
        for rank in 1..=3u64 {
            let key = g.key_of(rank);
            let observed = *counts.get(&key).unwrap_or(&0) as f64 / samples as f64;
            let expected = d.probability(rank as usize);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {rank}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = ZipfGenerator::new(1000, 1.5, 7);
        let mut b = ZipfGenerator::new(1000, 1.5, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_key(), b.next_key());
        }
        let mut c = ZipfGenerator::new(1000, 1.5, 8);
        let same = (0..1000).filter(|_| a.next_key() == c.next_key()).count();
        assert!(same < 900, "different seeds should diverge");
    }

    #[test]
    fn key_scrambling_is_bijective_and_invertible() {
        let g = ZipfGenerator::new(500, 1.0, 3);
        let mut seen = std::collections::HashSet::new();
        for rank in 1..=500u64 {
            assert!(
                seen.insert(g.key_of(rank)),
                "duplicate key id for rank {rank}"
            );
        }
        assert_eq!(g.rank_of(g.key_of(42)), Some(42));
        assert_eq!(g.rank_of(0xdead_beef), None, "unknown key has no rank");
    }

    #[test]
    fn key_stream_respects_limit() {
        let mut g = ZipfGenerator::with_limit(100, 1.0, 5, 10);
        let mut n = 0;
        while KeyStream::next_key(&mut g).is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert_eq!(g.len_hint(), 10);
        assert_eq!(g.key_space(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_panics() {
        let _ = ZipfDistribution::new(0, 1.0);
    }

    #[test]
    fn scrambled_like_unifies_identities_without_touching_sampling() {
        // Two differently-seeded generators disagree on identities by
        // default; re-keyed to the same scramble they agree rank-for-rank,
        // while their sampled rank sequences stay independent.
        let a = ZipfGenerator::new(100, 1.2, 10);
        let b = ZipfGenerator::new(100, 1.2, 11);
        assert_ne!(a.key_of(1), b.key_of(1));
        let a = a.scrambled_like(7);
        let b = b.scrambled_like(7);
        for rank in 1..=100 {
            assert_eq!(a.key_of(rank), b.key_of(rank), "rank {rank}");
        }
        // Identical sampler seeds still yield identical draws after
        // re-scrambling (the RNG is untouched).
        let mut x = ZipfGenerator::with_limit(100, 1.2, 10, 50).scrambled_like(7);
        let mut y = ZipfGenerator::with_limit(100, 1.2, 10, 50).scrambled_like(7);
        while let Some(k) = KeyStream::next_key(&mut x) {
            assert_eq!(Some(k), KeyStream::next_key(&mut y));
        }
    }

    #[test]
    fn mid_stream_clone_replays_the_identical_suffix() {
        // A positioned generator cloned mid-stream is a replay cursor: the
        // clone re-emits exactly the tuples the original goes on to emit.
        // Source-side replay in the engine's recovery protocol snapshots
        // streams by cloning at window boundaries, so exactly-once delivery
        // rests on this property.
        let mut original = ZipfGenerator::with_limit(500, 1.6, 13, 2_000).scrambled_like(3);
        for _ in 0..777 {
            KeyStream::next_key(&mut original).expect("stream not exhausted");
        }
        let mut replay = original.clone();
        while let Some(k) = KeyStream::next_key(&mut original) {
            assert_eq!(Some(k), KeyStream::next_key(&mut replay));
        }
        assert_eq!(KeyStream::next_key(&mut replay), None);
    }
}
