//! The stream message type: `⟨timestamp, key, value⟩`.
//!
//! The paper models the input as a sequence of messages `⟨t, k, v⟩`. The
//! partitioning decision depends only on the key, so the value is kept as an
//! opaque payload size; the simulator leaves it empty while the engine uses
//! it to emulate per-tuple work.

use serde::{Deserialize, Serialize};

/// Identifier of a key in the key space.
///
/// The synthetic workloads identify keys by opaque 64-bit identifiers
/// (derived bijectively from the key's rank so that identifiers carry no
/// ordering information a hash function could exploit). Real string keys can
/// be mapped to `KeyId`s by hashing or dictionary-encoding at ingestion.
pub type KeyId = u64;

/// A single stream message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Logical timestamp: position of the message in the stream (0-based).
    pub timestamp: u64,
    /// Routing key.
    pub key: KeyId,
    /// Opaque payload size in bytes (used by the engine to emulate work).
    pub payload: u32,
}

impl Message {
    /// Creates a message with an empty payload.
    pub fn new(timestamp: u64, key: KeyId) -> Self {
        Self {
            timestamp,
            key,
            payload: 0,
        }
    }

    /// Creates a message carrying `payload` bytes of (virtual) payload.
    pub fn with_payload(timestamp: u64, key: KeyId, payload: u32) -> Self {
        Self {
            timestamp,
            key,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let m = Message::new(7, 42);
        assert_eq!(m.timestamp, 7);
        assert_eq!(m.key, 42);
        assert_eq!(m.payload, 0);
        let m = Message::with_payload(1, 2, 128);
        assert_eq!(m.payload, 128);
    }

    #[test]
    fn serde_round_trip() {
        let m = Message::with_payload(3, 9, 64);
        let json = serde_json_like(&m);
        assert!(json.contains("\"timestamp\":3") || json.contains("timestamp"));
    }

    /// Minimal check that the Serialize impl is derivable and usable without
    /// pulling serde_json into the dependency tree: serialize to the debug
    /// representation of the serde data model via a tiny writer.
    fn serde_json_like(m: &Message) -> String {
        // We avoid a serde_json dependency; formatting the struct is enough
        // to prove the fields are public and stable.
        format!(
            "{{\"timestamp\":{},\"key\":{},\"payload\":{}}}",
            m.timestamp, m.key, m.payload
        )
    }
}
