//! Concept drift: streams whose hot keys change identity over time.
//!
//! The paper's cashtag dataset (CT) "is characterized by high concept drift,
//! that is, the distribution of keys changes drastically throughout time",
//! which stresses the heavy-hitter tracker: a key that was hot an hour ago
//! may be cold now and vice versa. [`DriftingGenerator`] wraps any base
//! [`KeyStream`] and re-draws the key-identity mapping every `epoch`
//! messages, so that the *shape* of the distribution is preserved while the
//! *identity* of the hot keys changes abruptly at epoch boundaries — the
//! same qualitative behaviour as a rotating set of trending ticker symbols.

use crate::message::KeyId;
use crate::zipf::ZipfGenerator;
use crate::KeyStream;

/// Wraps a base stream and periodically re-maps key identities.
#[derive(Debug, Clone)]
pub struct DriftingGenerator<S> {
    inner: S,
    epoch: u64,
    produced: u64,
    drift_seed: u64,
    epoch_offset: u64,
    current_epoch: u64,
}

impl<S: KeyStream> DriftingGenerator<S> {
    /// Creates a drifting stream that re-maps identities every `epoch`
    /// messages.
    ///
    /// # Panics
    /// Panics if `epoch == 0`.
    pub fn new(inner: S, epoch: u64, drift_seed: u64) -> Self {
        assert!(epoch > 0, "drift epoch must be positive");
        Self {
            inner,
            epoch,
            produced: 0,
            drift_seed,
            epoch_offset: 0,
            current_epoch: 0,
        }
    }

    /// Starts the epoch counter at `offset` instead of 0, so that a stream
    /// resumed mid-history (e.g. phase `p` of a multi-phase scenario) applies
    /// the identity remap the drift history has reached by then. Offset 0
    /// keeps the first epoch's identities untouched; any later epoch remaps.
    pub fn with_epoch_offset(mut self, offset: u64) -> Self {
        self.epoch_offset = offset;
        self.current_epoch = offset;
        self
    }

    /// The epoch length in messages.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Index of the epoch the next message will belong to.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Applies the epoch-specific bijective remapping to a key identifier.
    #[inline]
    fn remap(&self, key: KeyId) -> KeyId {
        // Epoch 0 keeps the original identities so that a drifting stream
        // with one epoch degenerates to the base stream.
        if self.current_epoch == 0 {
            key
        } else {
            slb_hash::splitmix::splitmix64(
                key ^ self
                    .drift_seed
                    .wrapping_mul(self.current_epoch.wrapping_add(1)),
            )
        }
    }
}

impl DriftingGenerator<ZipfGenerator> {
    /// Re-keys the inner Zipf generator's identity scramble to that of a
    /// generator seeded with `seed` — the same fix [`ZipfGenerator::scrambled_like`]
    /// applies to static streams. Without it, two drifting sources with
    /// different sampler seeds would disagree on which `KeyId` names a rank
    /// even *within* an epoch; with it, the drift remap (a pure function of
    /// key identity, epoch, and drift seed) stays consistent across sources,
    /// so the hot key is the same `KeyId` everywhere at every point in time.
    pub fn scrambled_like(mut self, seed: u64) -> Self {
        self.inner = self.inner.scrambled_like(seed);
        self
    }
}

impl<S: KeyStream> KeyStream for DriftingGenerator<S> {
    fn next_key(&mut self) -> Option<KeyId> {
        let key = self.inner.next_key()?;
        self.current_epoch = self.epoch_offset + self.produced / self.epoch;
        let mapped = self.remap(key);
        self.produced += 1;
        Some(mapped)
    }

    fn len_hint(&self) -> u64 {
        self.inner.len_hint()
    }

    fn key_space(&self) -> u64 {
        self.inner.key_space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfGenerator;

    fn hottest_key(stream: &mut dyn KeyStream, take: u64) -> KeyId {
        let mut counts = std::collections::HashMap::new();
        for _ in 0..take {
            if let Some(k) = stream.next_key() {
                *counts.entry(k).or_insert(0u64) += 1;
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .map(|(k, _)| k)
            .expect("non-empty stream")
    }

    #[test]
    fn identity_preserved_within_first_epoch() {
        let base = ZipfGenerator::with_limit(100, 1.5, 7, 1_000);
        let plain = ZipfGenerator::with_limit(100, 1.5, 7, 1_000);
        let mut drifting = DriftingGenerator::new(base, 10_000, 3);
        let mut plain = plain;
        for _ in 0..1_000 {
            assert_eq!(
                KeyStream::next_key(&mut drifting),
                KeyStream::next_key(&mut plain)
            );
        }
    }

    #[test]
    fn hot_key_changes_identity_across_epochs() {
        let base = ZipfGenerator::with_limit(1_000, 2.0, 11, 60_000);
        let mut drifting = DriftingGenerator::new(base, 20_000, 5);
        let hot_epoch0 = hottest_key(&mut drifting, 20_000);
        let hot_epoch1 = hottest_key(&mut drifting, 20_000);
        let hot_epoch2 = hottest_key(&mut drifting, 20_000);
        assert_ne!(
            hot_epoch0, hot_epoch1,
            "drift must change the hot key identity"
        );
        assert_ne!(hot_epoch1, hot_epoch2);
    }

    #[test]
    fn drift_preserves_stream_length_and_key_space() {
        let base = ZipfGenerator::with_limit(50, 1.0, 2, 500);
        let mut drifting = DriftingGenerator::new(base, 100, 9);
        assert_eq!(drifting.len_hint(), 500);
        assert_eq!(drifting.key_space(), 50);
        let mut n = 0;
        while KeyStream::next_key(&mut drifting).is_some() {
            n += 1;
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn epoch_counter_advances() {
        let base = ZipfGenerator::with_limit(10, 1.0, 1, 25);
        let mut drifting = DriftingGenerator::new(base, 10, 4);
        assert_eq!(drifting.current_epoch(), 0);
        for _ in 0..25 {
            KeyStream::next_key(&mut drifting);
        }
        assert_eq!(drifting.current_epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "epoch must be positive")]
    fn zero_epoch_panics() {
        let base = ZipfGenerator::with_limit(10, 1.0, 1, 10);
        let _ = DriftingGenerator::new(base, 0, 0);
    }

    #[test]
    fn epoch_offset_resumes_the_drift_history() {
        // Splitting a drifting stream at an epoch boundary and resuming the
        // tail with `with_epoch_offset` must reproduce the uncut stream
        // tuple for tuple.
        let epoch = 1_000u64;
        let mut uncut =
            DriftingGenerator::new(ZipfGenerator::with_limit(200, 1.5, 3, 2 * epoch), epoch, 9);
        let mut head: Vec<_> = Vec::new();
        for _ in 0..epoch {
            head.push(KeyStream::next_key(&mut uncut).unwrap());
        }
        // Resume: consume the head's sampler draws on a fresh inner
        // generator, then wrap the partially-consumed sampler at offset 1.
        let mut inner = ZipfGenerator::with_limit(200, 1.5, 3, 2 * epoch);
        for _ in 0..epoch {
            KeyStream::next_key(&mut inner).unwrap();
        }
        let mut resumed = DriftingGenerator::new(inner, epoch, 9).with_epoch_offset(1);
        assert_eq!(resumed.current_epoch(), 1);
        for i in 0..epoch {
            assert_eq!(
                KeyStream::next_key(&mut resumed),
                KeyStream::next_key(&mut uncut),
                "tuple {i} of the resumed tail diverged"
            );
        }
        assert!(KeyStream::next_key(&mut uncut).is_none());
    }

    #[test]
    fn shared_scramble_and_drift_seed_align_sources_within_epochs() {
        // Two sources with independent sampler seeds but a shared identity
        // scramble and drift seed must agree on the hot key's identity in
        // every epoch — the multi-source property the engine depends on.
        let epoch = 15_000u64;
        let make = |sampler_seed: u64| {
            DriftingGenerator::new(
                ZipfGenerator::with_limit(500, 2.0, sampler_seed, 3 * epoch),
                epoch,
                77,
            )
            .scrambled_like(42)
        };
        let mut a = make(100);
        let mut b = make(200);
        for round in 0..3 {
            let hot_a = hottest_key(&mut a, epoch);
            let hot_b = hottest_key(&mut b, epoch);
            assert_eq!(hot_a, hot_b, "epoch {round}: sources disagree on hot key");
        }
    }

    #[test]
    fn unshared_scrambles_diverge_under_drift() {
        // Guard that the previous test is not vacuous: without scrambled_like
        // the first-epoch identities differ between sampler seeds.
        let epoch = 10_000u64;
        let mut a =
            DriftingGenerator::new(ZipfGenerator::with_limit(500, 2.0, 100, epoch), epoch, 77);
        let mut b =
            DriftingGenerator::new(ZipfGenerator::with_limit(500, 2.0, 200, epoch), epoch, 77);
        assert_ne!(hottest_key(&mut a, epoch), hottest_key(&mut b, epoch));
    }
}
