//! Machine-readable experiment output via `SLB_BENCH_JSON_DIR`.
//!
//! Every `expt_*` binary prints a human-readable table to stdout; with
//! `SLB_BENCH_JSON_DIR=<dir>` set it *additionally* writes the same rows as
//! JSON to `<dir>/EXPT_<experiment>.json`, so figure data can be consumed by
//! plotting scripts without re-parsing aligned-column text. This mirrors the
//! `BENCH_*.json` hook the vendored criterion harness already provides for
//! the benches — one env var, one directory, machine-readable everything.
//!
//! The vendored `serde` is a no-op shim (see `vendor/README.md`), so this is
//! a deliberately tiny hand-rolled JSON writer: a value model, escaping, and
//! a [`Table`] builder keyed by column names. Output shape:
//!
//! ```json
//! {
//!   "experiment": "fig13_throughput",
//!   "columns": ["scheme", "skew", "throughput_eps"],
//!   "rows": [
//!     {"scheme": "KG", "skew": 1.4, "throughput_eps": 123456.0}
//!   ]
//! }
//! ```

use std::path::PathBuf;

/// A JSON value. Integers keep their own variant so `u64` counts round-trip
/// exactly instead of passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (used for optional cells, e.g. a skew that does not apply).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered without a decimal point.
    U64(u64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(JsonValue::Null)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonValue {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => out.push_str(&v.to_string()),
            JsonValue::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            JsonValue::F64(_) => out.push_str("null"),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// The JSON sink directory, if the hook is enabled.
pub fn json_dir() -> Option<PathBuf> {
    std::env::var_os("SLB_BENCH_JSON_DIR").map(PathBuf::from)
}

/// A column-named experiment table that mirrors a binary's printed rows.
pub struct Table {
    experiment: String,
    columns: Vec<String>,
    rows: Vec<JsonValue>,
}

impl Table {
    /// Creates a table for the named experiment with the given columns.
    pub fn new(experiment: &str, columns: &[&str]) -> Self {
        Self {
            experiment: experiment.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; `values` must match the column count and order.
    ///
    /// # Panics
    /// Panics if the value count differs from the column count — an
    /// experiment bug worth failing loudly on.
    pub fn row<const N: usize>(&mut self, values: [JsonValue; N]) {
        assert_eq!(
            N,
            self.columns.len(),
            "{}: row has {N} values for {} columns",
            self.experiment,
            self.columns.len()
        );
        let fields = self.columns.iter().cloned().zip(values).collect::<Vec<_>>();
        self.rows.push(JsonValue::Obj(fields));
    }

    /// Number of rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes `EXPT_<experiment>.json` into `SLB_BENCH_JSON_DIR` if the hook
    /// is enabled; a no-op otherwise. Errors are reported to stderr, never
    /// fatal — JSON emission must not fail an experiment run.
    pub fn emit(&self) {
        let Some(dir) = json_dir() else {
            return;
        };
        let document = JsonValue::Obj(vec![
            (
                "experiment".to_string(),
                JsonValue::Str(self.experiment.clone()),
            ),
            (
                "columns".to_string(),
                JsonValue::Arr(
                    self.columns
                        .iter()
                        .map(|c| JsonValue::Str(c.clone()))
                        .collect(),
                ),
            ),
            ("rows".to_string(), JsonValue::Arr(self.rows.clone())),
        ]);
        let path = dir.join(format!("EXPT_{}.json", self.experiment));
        let mut body = document.render();
        body.push('\n');
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_as_compact_json() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(JsonValue::from(1.5).render(), "1.5");
        assert_eq!(JsonValue::F64(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from("a\"b\n").render(), "\"a\\\"b\\n\"");
        assert_eq!(
            JsonValue::Arr(vec![1u64.into(), "x".into()]).render(),
            "[1,\"x\"]"
        );
        assert_eq!(JsonValue::from(None::<u64>).render(), "null");
        assert_eq!(JsonValue::from(Some(3u64)).render(), "3");
    }

    #[test]
    fn u64_precision_is_not_squeezed_through_f64() {
        let big = u64::MAX - 1;
        assert_eq!(JsonValue::from(big).render(), big.to_string());
    }

    #[test]
    fn table_rows_become_column_keyed_objects() {
        let mut table = Table::new("unit", &["scheme", "imbalance"]);
        table.row(["PKG".into(), 0.25.into()]);
        assert_eq!(table.len(), 1);
        assert_eq!(
            table.rows[0].render(),
            "{\"scheme\":\"PKG\",\"imbalance\":0.25}"
        );
    }

    #[test]
    #[should_panic(expected = "row has 1 values for 2 columns")]
    fn mismatched_row_width_panics() {
        let mut table = Table::new("unit", &["a", "b"]);
        table.row(["only".into()]);
    }

    #[test]
    fn emit_writes_the_document_when_the_hook_is_set() {
        let dir = std::env::temp_dir().join(format!("slb-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Env mutation is process-global: this test is the only one in the
        // crate touching SLB_BENCH_JSON_DIR.
        std::env::set_var("SLB_BENCH_JSON_DIR", &dir);
        let mut table = Table::new("unit_emit", &["x"]);
        table.row([7u64.into()]);
        table.emit();
        std::env::remove_var("SLB_BENCH_JSON_DIR");
        let body = std::fs::read_to_string(dir.join("EXPT_unit_emit.json")).unwrap();
        assert_eq!(
            body,
            "{\"experiment\":\"unit_emit\",\"columns\":[\"x\"],\"rows\":[{\"x\":7}]}\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
