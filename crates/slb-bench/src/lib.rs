//! Experiment harness for the SLB reproduction.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation section and prints the corresponding rows/series to
//! stdout. All binaries accept the same command-line flags:
//!
//! * `--scale smoke|laptop|paper` — how big to run (default `smoke`, which
//!   finishes in seconds and is what the integration tests and the recorded
//!   `EXPERIMENTS.md` runs use unless stated otherwise).
//! * `--seed <u64>` — RNG/hash seed (default `0x5EED0001`).
//!
//! The library part of the crate holds the small amount of shared plumbing:
//! flag parsing, table formatting, and the [`json`] emission hook
//! (`SLB_BENCH_JSON_DIR`) every binary mirrors its printed rows into.

pub mod json;

use slb_simulator::experiments::ExperimentScale;

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Requested run size.
    pub scale: ExperimentScale,
    /// Seed for workloads and hash functions.
    pub seed: u64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            scale: ExperimentScale::Smoke,
            seed: slb_simulator::experiments::DEFAULT_SEED,
        }
    }
}

/// Usage text shared by every experiment binary.
pub const USAGE: &str = "usage: <experiment> [--scale smoke|laptop|paper] [--seed N]";

/// Outcome of parsing experiment flags: either options to run with, or a
/// request to show usage and exit successfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsedArgs {
    /// Run the experiment with these options.
    Run(ExperimentOptions),
    /// `--help`/`-h` was passed; print [`USAGE`] to stdout and exit 0.
    Help,
}

/// Parses `--scale` and `--seed` from an iterator of command-line arguments
/// (excluding the program name). Unknown flags are rejected with an error
/// message so typos do not silently fall back to defaults.
pub fn parse_options<I: IntoIterator<Item = String>>(args: I) -> Result<ParsedArgs, String> {
    let mut options = ExperimentOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale requires a value")?;
                options.scale = match value.as_str() {
                    "smoke" => ExperimentScale::Smoke,
                    "laptop" => ExperimentScale::Laptop,
                    "paper" => ExperimentScale::Paper,
                    other => return Err(format!("unknown scale: {other}")),
                };
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed requires a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--help" | "-h" => return Ok(ParsedArgs::Help),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(ParsedArgs::Run(options))
}

/// Parses the process's actual arguments: prints usage to stdout and exits 0
/// on `--help`, or exits 2 with an error message on a bad flag (the
/// behaviour every experiment binary wants).
pub fn options_from_env() -> ExperimentOptions {
    match parse_options(std::env::args().skip(1)) {
        Ok(ParsedArgs::Run(o)) => o,
        Ok(ParsedArgs::Help) => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Prints a named experiment header so that harness output is self-labelled
/// when several binaries are run back-to-back and tee'd into one file.
pub fn print_header(experiment: &str, description: &str, options: &ExperimentOptions) {
    println!("== {experiment} ==");
    println!("# {description}");
    println!("# scale={:?} seed={:#x}", options.scale, options.seed);
}

/// Formats a floating point value the way the paper's log-scale plots are
/// easiest to compare: scientific notation with three significant digits.
pub fn sci(value: f64) -> String {
    format!("{value:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn run(list: &[&str]) -> ExperimentOptions {
        match parse_options(args(list)).unwrap() {
            ParsedArgs::Run(o) => o,
            ParsedArgs::Help => panic!("unexpected help request for {list:?}"),
        }
    }

    #[test]
    fn defaults_when_no_flags() {
        let o = run(&[]);
        assert_eq!(o.scale, ExperimentScale::Smoke);
        assert_eq!(o.seed, slb_simulator::experiments::DEFAULT_SEED);
    }

    #[test]
    fn parses_scale_and_seed() {
        let o = run(&["--scale", "laptop", "--seed", "123"]);
        assert_eq!(o.scale, ExperimentScale::Laptop);
        assert_eq!(o.seed, 123);
        let o = run(&["--scale", "paper"]);
        assert_eq!(o.scale, ExperimentScale::Paper);
    }

    #[test]
    fn rejects_unknown_flags_and_values() {
        assert!(parse_options(args(&["--scale", "huge"])).is_err());
        assert!(parse_options(args(&["--frobnicate"])).is_err());
        assert!(parse_options(args(&["--seed", "abc"])).is_err());
        assert!(parse_options(args(&["--seed"])).is_err());
    }

    #[test]
    fn help_is_a_success_not_an_error() {
        assert_eq!(parse_options(args(&["--help"])).unwrap(), ParsedArgs::Help);
        assert_eq!(parse_options(args(&["-h"])).unwrap(), ParsedArgs::Help);
    }

    #[test]
    fn scientific_formatting() {
        assert_eq!(sci(0.000123456), "1.235e-4");
        assert_eq!(sci(1.0), "1.000e0");
    }
}
