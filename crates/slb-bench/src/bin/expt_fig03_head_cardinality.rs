//! Figure 3: number of keys in the head of the distribution.
//!
//! Shows, for Zipf exponents 0.1…2.0 and the two threshold extremes
//! θ = 1/(5n) and θ = 2/n, how many keys exceed the threshold when |K| = 10⁴
//! (the paper plots n = 50 and n = 100 together; we print both).

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_simulator::experiments::head_cardinality_vs_skew;

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 3",
        "Cardinality of the head vs skew (|K|=10^4)",
        &options,
    );

    let skews = options.scale.skew_sweep();
    let rows = head_cardinality_vs_skew(&[50, 100], 10_000, &skews);

    println!(
        "{:<6} {:>8} {:>12} {:>12}",
        "skew", "workers", "threshold", "|H|"
    );
    let mut table = Table::new(
        "fig03_head_cardinality",
        &["skew", "workers", "threshold", "cardinality"],
    );
    for row in &rows {
        println!(
            "{:<6.1} {:>8} {:>12} {:>12}",
            row.skew, row.workers, row.threshold, row.cardinality
        );
        table.row([
            row.skew.into(),
            row.workers.into(),
            row.threshold.as_str().into(),
            row.cardinality.into(),
        ]);
    }
    table.emit();
    let max_card = rows.iter().map(|r| r.cardinality).max().unwrap_or(0);
    println!("# maximum head cardinality across the sweep: {max_card} keys");
    println!("# (the paper's Figure 3 peaks below ~70 keys for these settings)");
}
