//! "Figure 15" (beyond the paper): cost and scaling of the aggregation
//! stage that makes key splitting sound.
//!
//! The paper's topology has a downstream aggregator merging the workers'
//! partial per-key state, but its evaluation never isolates that stage's
//! cost. This experiment does, on the mini-DSPE's three-operator pipeline:
//! for a fixed scheme and skew it sweeps the window size (how often workers
//! punctuate, finalize and ship partials) and the number of key-hash
//! aggregator shards, reporting per-stage throughput and the worker-close →
//! aggregator-merge latency. Expected shape: smaller windows mean more
//! partial-window traffic (more punctuation, more shard messages) and so a
//! lower tuple throughput, while extra shards cut the merge latency of
//! large windows but cannot help when the windows themselves are tiny.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_core::PartitionerKind;
use slb_engine::{EngineConfig, Topology};
use slb_simulator::experiments::ExperimentScale;

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 15",
        "Aggregation-stage cost vs window size and shard count",
        &options,
    );

    let skew = 2.0;
    let base = match options.scale {
        ExperimentScale::Smoke => EngineConfig::smoke(PartitionerKind::Pkg, skew),
        ExperimentScale::Laptop => EngineConfig::laptop(PartitionerKind::Pkg, skew),
        ExperimentScale::Paper => EngineConfig::paper(PartitionerKind::Pkg, skew),
    }
    .with_seed(options.seed)
    // Zero service time exposes the aggregation overhead itself; with the
    // paper's 1 ms of work per tuple the stage cost disappears in the noise.
    .with_service_time_us(0);

    let window_sizes: Vec<u64> = match options.scale {
        ExperimentScale::Smoke => vec![256, 2_048],
        _ => vec![256, 1_024, 4_096, 16_384],
    };
    let shard_counts: Vec<usize> = match options.scale {
        ExperimentScale::Smoke => vec![1, 2],
        _ => vec![1, 2, 4],
    };

    println!(
        "{:<8} {:>8} {:>7} {:>14} {:>9} {:>10} {:>14} {:>14}",
        "scheme",
        "window",
        "shards",
        "tuples/s",
        "windows",
        "partials",
        "agg p50 (µs)",
        "agg p99 (µs)"
    );
    let mut table = Table::new(
        "fig15_aggregation_cost",
        &[
            "scheme",
            "window_size",
            "aggregators",
            "throughput_eps",
            "windows",
            "partial_messages",
            "agg_p50_us",
            "agg_p99_us",
        ],
    );
    let mut results = Vec::new();
    for &window_size in &window_sizes {
        for &aggregators in &shard_counts {
            let cfg = base
                .clone()
                .with_window_size(window_size)
                .with_aggregators(aggregators);
            let r = Topology::new(cfg).run();
            println!(
                "{:<8} {:>8} {:>7} {:>14.0} {:>9} {:>10} {:>14} {:>14}",
                r.scheme,
                r.window_size,
                r.aggregators,
                r.throughput_eps,
                r.windows,
                r.aggregator_stage.items,
                r.aggregator_stage.latency.p50_us,
                r.aggregator_stage.latency.p99_us
            );
            table.row([
                r.scheme.as_str().into(),
                r.window_size.into(),
                r.aggregators.into(),
                r.throughput_eps.into(),
                r.windows.into(),
                r.aggregator_stage.items.into(),
                r.aggregator_stage.latency.p50_us.into(),
                r.aggregator_stage.latency.p99_us.into(),
            ]);
            results.push(r);
        }
    }
    table.emit();

    // Headline: the punctuation tax — throughput of the smallest window vs
    // the largest, at the same shard count.
    let shards0 = shard_counts[0];
    let find = |window: u64| {
        results
            .iter()
            .find(|r| r.window_size == window && r.aggregators == shards0)
    };
    if let (Some(small), Some(large)) = (
        find(*window_sizes.first().expect("non-empty sweep")),
        find(*window_sizes.last().expect("non-empty sweep")),
    ) {
        println!(
            "# window {} → {} at {} shard(s): throughput x{:.2}, partial messages x{:.2}",
            small.window_size,
            large.window_size,
            shards0,
            large.throughput_eps / small.throughput_eps,
            small.aggregator_stage.items as f64 / large.aggregator_stage.items.max(1) as f64,
        );
    }
}
