//! Figure 13: throughput of KG, PKG, D-C, W-C and SG on the mini-DSPE.
//!
//! The paper deploys the schemes on an Apache Storm cluster (48 sources,
//! 80 workers, 1 ms of work per tuple, 2×10⁶ messages) and measures
//! events/second for Zipf exponents 1.4, 1.7 and 2.0. The expected shape:
//! KG lowest, PKG in between, D-C ≈ W-C ≈ SG highest, with the gap widening
//! as the skew grows. Absolute numbers depend on the machine; the relative
//! ordering and the ratios are what this harness reproduces.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_core::PartitionerKind;
use slb_engine::topology::compare_schemes;
use slb_engine::EngineConfig;
use slb_simulator::experiments::ExperimentScale;

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 13",
        "Throughput (events/s) per scheme on the mini-DSPE",
        &options,
    );

    let schemes = [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::ShuffleGrouping,
    ];
    let skews = [1.4f64, 1.7, 2.0];

    println!(
        "{:<8} {:>6} {:>16} {:>12} {:>14}",
        "scheme", "skew", "throughput(ev/s)", "imbalance", "elapsed (s)"
    );
    let mut table = Table::new(
        "fig13_throughput",
        &[
            "scheme",
            "skew",
            "throughput_eps",
            "imbalance",
            "elapsed_secs",
        ],
    );
    let mut all = Vec::new();
    for &z in &skews {
        let base = match options.scale {
            ExperimentScale::Smoke => EngineConfig::smoke(PartitionerKind::Pkg, z),
            ExperimentScale::Laptop => EngineConfig::laptop(PartitionerKind::Pkg, z),
            ExperimentScale::Paper => EngineConfig::paper(PartitionerKind::Pkg, z),
        }
        .with_seed(options.seed);
        let results = compare_schemes(&base, &schemes);
        for r in &results {
            println!(
                "{:<8} {:>6.1} {:>16.0} {:>12.4} {:>14.2}",
                r.scheme, r.skew, r.throughput_eps, r.imbalance, r.elapsed_secs
            );
            table.row([
                r.scheme.as_str().into(),
                r.skew.into(),
                r.throughput_eps.into(),
                r.imbalance.into(),
                r.elapsed_secs.into(),
            ]);
        }
        all.push((z, results));
    }
    table.emit();

    // The headline ratios the paper reports (throughput of D-C and W-C vs
    // PKG and KG at the highest skew).
    for (z, results) in &all {
        let find = |s: &str| {
            results
                .iter()
                .find(|r| r.scheme == s)
                .map(|r| r.throughput_eps)
        };
        if let (Some(kg), Some(pkg), Some(dc), Some(wc), Some(sg)) = (
            find("KG"),
            find("PKG"),
            find("D-C"),
            find("W-C"),
            find("SG"),
        ) {
            println!(
                "# z={z:.1}: D-C/PKG = {:.2}x, W-C/PKG = {:.2}x, D-C/KG = {:.2}x, SG/PKG = {:.2}x",
                dc / pkg,
                wc / pkg,
                dc / kg,
                sg / pkg
            );
        }
    }
}
