//! Figure 5: estimated memory overhead of D-C and W-C with respect to PKG.
//!
//! Uses the per-key replica model of Section IV-B on a Zipf workload with
//! |K| = 10⁴ and 10⁷ messages, for n ∈ {50, 100}. Positive percentages mean
//! more memory than PKG; the paper reports at most ~25–30% in the worst case
//! and D-C consistently below W-C.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_simulator::experiments::memory_overhead_vs_skew;

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 5",
        "Memory overhead w.r.t. PKG (%) vs skew",
        &options,
    );

    let skews = options.scale.skew_sweep();
    let rows = memory_overhead_vs_skew(&[50, 100], 10_000, 10_000_000, &skews, 1e-4);

    println!(
        "{:<6} {:>8} {:>8} {:>14}",
        "skew", "workers", "scheme", "vs PKG (%)"
    );
    let mut table = Table::new(
        "fig05_memory_vs_pkg",
        &["skew", "workers", "scheme", "vs_pkg_pct"],
    );
    for row in &rows {
        println!(
            "{:<6.1} {:>8} {:>8} {:>14.2}",
            row.skew, row.workers, row.scheme, row.vs_pkg_pct
        );
        table.row([
            row.skew.into(),
            row.workers.into(),
            row.scheme.as_str().into(),
            row.vs_pkg_pct.into(),
        ]);
    }
    table.emit();
    let worst = rows.iter().map(|r| r.vs_pkg_pct).fold(0.0f64, f64::max);
    println!("# worst-case overhead vs PKG across the sweep: {worst:.1}%");
}
