//! Figure 9: the d computed by D-Choices vs. the empirically minimal d.
//!
//! For each skew and n ∈ {50, 100}, finds the smallest d whose Greedy-d run
//! matches the imbalance of W-Choices on the same workload, and compares it
//! with the value the FINDOPTIMALCHOICES solver derives from the exact
//! distribution. The paper's finding: the solver's d closely tracks (and
//! slightly exceeds) the empirical minimum.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_simulator::experiments::{d_vs_empirical_minimum, ExperimentScale};

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 9",
        "Solver d vs empirically minimal d (ZF, |K|=10^4)",
        &options,
    );

    let messages = options.scale.zipf_messages();
    // The empirical search replays the workload for every candidate d, so
    // keep the skew grid modest outside paper scale.
    let skews: Vec<f64> = match options.scale {
        ExperimentScale::Smoke => vec![1.2, 1.6, 2.0],
        ExperimentScale::Laptop => vec![0.8, 1.2, 1.6, 2.0],
        ExperimentScale::Paper => (1..=20).map(|i| i as f64 * 0.1).collect(),
    };
    let worker_counts = [50usize, 100];
    let rows = d_vs_empirical_minimum(&worker_counts, 10_000, messages, &skews, 1e-4, options.seed);

    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>16}",
        "skew", "workers", "solver d", "min d", "W-C imbalance"
    );
    let mut table = Table::new(
        "fig09_d_vs_optimal",
        &[
            "skew",
            "workers",
            "solver_d",
            "minimal_d",
            "wchoices_imbalance",
        ],
    );
    for row in &rows {
        println!(
            "{:<6.1} {:>8} {:>10} {:>10} {:>16}",
            row.skew,
            row.workers,
            row.solver_d,
            row.minimal_d,
            sci(row.wchoices_imbalance)
        );
        table.row([
            row.skew.into(),
            row.workers.into(),
            row.solver_d.into(),
            row.minimal_d.into(),
            row.wchoices_imbalance.into(),
        ]);
    }
    table.emit();
    let close = rows
        .iter()
        .filter(|r| r.solver_d + 2 >= r.minimal_d)
        .count();
    println!(
        "# solver within the empirical minimum (allowing it to be larger) in {close}/{} settings",
        rows.len()
    );
}
