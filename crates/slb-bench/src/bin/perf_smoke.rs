//! CI perf smoke: the batched engine hot path must clear a throughput floor.
//!
//! Three measurements, all at zero per-tuple service time so that routing,
//! batching, channel transport, and worker state updates are what is being
//! timed:
//!
//! 1. **Single-phase run** — the original floor. Set far under the
//!    ~30 Melem/s the batched transport measures on a developer machine, but
//!    well above the ~2.5 Melem/s the tuple-at-a-time transport topped out
//!    at, so a regression that reintroduces per-tuple channel round-trips
//!    cannot land silently.
//! 2. **Scenario run** — the phased run loop executing a two-phase scale-out
//!    scenario (boxed drifting streams, per-phase service lookup, partitioner
//!    rescale at the boundary). Its floor guards the scenario path's own
//!    overheads: a per-tuple virtual stream call is expected and priced in,
//!    but an accidental per-tuple allocation or re-hash would drop below it.
//! 3. **TCP-backend run** — the same single-phase config over the `slb-net`
//!    loopback TCP transport: frame encode/decode, one write syscall per
//!    batch, reader threads, and the bounded merge queue. Its floor is far
//!    below the in-process one by design — sockets are not crossbeam — but
//!    well above what a per-tuple (rather than per-batch) framing bug or an
//!    accidental per-frame flush storm would deliver.
//! 4. **SPSC-backend run** — the same single-phase config over the
//!    thread-per-core SPSC ring transport (lock-free rings, batch
//!    recycling, core pinning). Gated two ways: an absolute floor, and a
//!    relative gate against the interleaved InProc run of the same pair —
//!    the SPSC backend must not lose to the lock-based backend it exists
//!    to beat (a small tolerance absorbs scheduler noise; on multi-core
//!    machines the margin is a multiple, not a percentage).
//! 5. **Checkpoint overhead** — the single-phase config against the same
//!    config with per-window checkpoint persistence disabled (the
//!    measurement-only baseline, `run_windowed_without_checkpoints`),
//!    measured as five back-to-back A/B pairs. The always-on checkpoint
//!    path — sequence bookkeeping plus one encoded `WorkerCheckpoint` per
//!    window close — must cost less than 10% of fault-free throughput in
//!    the best pair; a regression that makes checkpointing per-tuple (or
//!    starts cloning worker state wholesale) lands far outside the budget
//!    in every pair.
//! 6. **Telemetry overhead** — the single-phase config against the same
//!    config with telemetry collection disabled (the measurement-only
//!    baseline, `run_windowed_without_telemetry`), as five interleaved A/B
//!    pairs. The always-on observability layer — per-batch hop counters,
//!    occupancy histogram updates, and logical trace pushes — must stay
//!    within 5% of baseline throughput in the best pair; anything that
//!    moves telemetry into the per-tuple path (or adds an allocation per
//!    batch) is a multiple, not a percentage.
//! 7. **Controller overhead** — a static single-phase scenario with the
//!    elasticity controller enabled (worker count pinned, capacity
//!    effectively infinite: the controller observes every window, snapshots
//!    the head, re-solves `d`, and decides to do nothing) against the same
//!    scenario with the controller off, as five interleaved A/B pairs.
//!    The always-on cost — one `PerWindowLoads::record` per tuple plus the
//!    per-window observe/snapshot/solve step — must stay within 5% in the
//!    best pair; an accidental per-tuple snapshot or solver call is a
//!    multiple, not a percentage.
//!
//! The best of three runs (for the floors) and the best of five A/B pairs
//! (for the overhead ratio) are compared against the limits to damp
//! scheduler noise on loaded CI machines. See `docs/PERF.md` for the
//! measurement history.

use slb_core::{ControllerConfig, CountAggregate, PartitionerKind};
use slb_engine::{EngineConfig, InProc, ScenarioConfig, Spsc, Topology};
use slb_net::tcp::TcpTransport;
use slb_workloads::{Scenario, ScenarioPhase};

/// Conservative single-phase floor, in events per second.
const FLOOR_EPS: f64 = 5.0e6;

/// Conservative scenario-path floor, in events per second. The scenario run
/// pays a virtual call per tuple for the boxed drifting stream plus the
/// drift remap, so its floor sits below the single-phase one.
const SCENARIO_FLOOR_EPS: f64 = 4.0e6;

/// Conservative TCP-backend floor, in events per second: loopback sockets
/// with one frame per 256-tuple batch comfortably exceed this on any
/// machine; per-tuple framing regressions land an order of magnitude under.
const TCP_FLOOR_EPS: f64 = 1.0e6;

/// Maximum fraction of fault-free throughput the checkpoint path may cost:
/// the best checkpointed-vs-baseline pair must clear a 0.90 ratio.
const CHECKPOINT_MAX_OVERHEAD: f64 = 0.10;

/// Maximum fraction of throughput the enabled-but-idle elasticity
/// controller may cost on a static scenario: the best controlled-vs-off
/// pair must clear a 0.95 ratio.
const CONTROLLER_MAX_OVERHEAD: f64 = 0.05;

/// Maximum fraction of throughput the always-on telemetry layer may cost:
/// the best instrumented-vs-baseline pair must clear a 0.95 ratio.
const TELEMETRY_MAX_OVERHEAD: f64 = 0.05;

/// Conservative SPSC-backend absolute floor, in events per second.
const SPSC_FLOOR_EPS: f64 = 5.0e6;

/// The best SPSC/InProc pairwise ratio must clear this: the lock-free
/// backend must at least match the lock-based one (0.95 leaves room for
/// scheduler noise on single-core CI runners, where both backends are
/// serialized onto one CPU and the SPSC win shrinks to the lock savings).
const SPSC_MIN_RATIO: f64 = 0.95;

fn best_of_three(label: &str, run: impl Fn() -> (f64, u64, f64)) -> f64 {
    let mut best: f64 = 0.0;
    for attempt in 0..3 {
        let (throughput, processed, elapsed) = run();
        println!(
            "perf_smoke {label} run {}: {:.2} Melem/s ({} tuples in {:.4}s)",
            attempt + 1,
            throughput / 1e6,
            processed,
            elapsed
        );
        best = best.max(throughput);
    }
    best
}

fn main() {
    let single = best_of_three("single-phase", || {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 2.0)
            .with_messages(400_000)
            .with_service_time_us(0);
        let r = Topology::new(cfg).run();
        (r.throughput_eps, r.processed, r.elapsed_secs)
    });

    // Two-phase scale-out scenario at a similar tuple budget: 2 sources ×
    // (24 + 24) windows × 4096 tuples ≈ 393k tuples, workers 4 → 8.
    let scenario = Scenario::new("perf", 2, 4_096, 42)
        .phase(ScenarioPhase::new(24, 1_000, 2.0, 4))
        .phase(ScenarioPhase::new(24, 1_000, 2.0, 8).with_drift_epochs(2));
    let scenario_best = best_of_three("scenario", || {
        let r = ScenarioConfig::new(PartitionerKind::Pkg, scenario.clone()).run();
        (r.throughput_eps, r.processed, r.elapsed_secs)
    });

    let tcp_best = best_of_three("tcp-backend", || {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 2.0)
            .with_messages(400_000)
            .with_service_time_us(0);
        let r = Topology::new(cfg)
            .run_windowed_on(CountAggregate, &TcpTransport::loopback())
            .result;
        (r.throughput_eps, r.processed, r.elapsed_secs)
    });

    // SPSC vs InProc A/B: interleaved pairs, best pairwise ratio — the same
    // noise-cancelling structure as the checkpoint gate below. The absolute
    // SPSC floor comes from the best SPSC side of any pair.
    let mut spsc_best: f64 = 0.0;
    let mut spsc_best_ratio: f64 = 0.0;
    for attempt in 0..3 {
        let cfg = || {
            EngineConfig::smoke(PartitionerKind::Pkg, 2.0)
                .with_messages(400_000)
                .with_service_time_us(0)
        };
        let spsc = Topology::new(cfg())
            .run_windowed_on(CountAggregate, &Spsc)
            .result;
        let inproc = Topology::new(cfg())
            .run_windowed_on(CountAggregate, &InProc)
            .result;
        let ratio = spsc.throughput_eps / inproc.throughput_eps;
        println!(
            "perf_smoke spsc pair {}: spsc {:.2} Melem/s vs inproc {:.2} Melem/s (ratio {:.3})",
            attempt + 1,
            spsc.throughput_eps / 1e6,
            inproc.throughput_eps / 1e6,
            ratio
        );
        spsc_best = spsc_best.max(spsc.throughput_eps);
        spsc_best_ratio = spsc_best_ratio.max(ratio);
    }

    // Checkpoint overhead A/B: the same config with durable checkpoint
    // writes elided. The two sides run *interleaved* (checkpointed,
    // baseline, checkpointed, …) and the gate takes the best *pairwise*
    // ratio: each ratio compares two runs launched back to back under the
    // same machine load, so time-varying CI load cancels within a pair
    // instead of turning into a phantom overhead. Taking the best of five
    // pairs damps the residual per-pair jitter — a real budget-busting
    // regression (per-tuple checkpointing, wholesale state clones) is a
    // multiple-of-throughput cost that no pair would survive, while a few
    // percent of true overhead plus noise must not flake the build.
    let mut checkpoint_best_ratio: f64 = 0.0;
    for attempt in 0..5 {
        let cfg = || {
            EngineConfig::smoke(PartitionerKind::Pkg, 2.0)
                .with_messages(400_000)
                .with_service_time_us(0)
        };
        let cp = Topology::new(cfg()).run_windowed(CountAggregate).result;
        let uncp = Topology::new(cfg())
            .run_windowed_without_checkpoints(CountAggregate)
            .result;
        let ratio = cp.throughput_eps / uncp.throughput_eps;
        println!(
            "perf_smoke checkpoint pair {}: checkpointed {:.2} Melem/s vs baseline \
             {:.2} Melem/s (ratio {:.3})",
            attempt + 1,
            cp.throughput_eps / 1e6,
            uncp.throughput_eps / 1e6,
            ratio
        );
        checkpoint_best_ratio = checkpoint_best_ratio.max(ratio);
    }

    // Telemetry overhead A/B: the same config with the observability layer
    // (hop counters, occupancy histograms, trace pushes) disabled. Same
    // interleaved best-pairwise-ratio structure as the checkpoint gate:
    // telemetry is per-batch and per-window by construction, so its true
    // cost is a few percent at worst, and a regression that instruments the
    // per-tuple path fails every pair by a multiple.
    let mut telemetry_best_ratio: f64 = 0.0;
    for attempt in 0..5 {
        let cfg = || {
            EngineConfig::smoke(PartitionerKind::Pkg, 2.0)
                .with_messages(400_000)
                .with_service_time_us(0)
        };
        let on = Topology::new(cfg()).run_windowed(CountAggregate).result;
        let off = Topology::new(cfg())
            .run_windowed_without_telemetry(CountAggregate)
            .result;
        let ratio = on.throughput_eps / off.throughput_eps;
        println!(
            "perf_smoke telemetry pair {}: instrumented {:.2} Melem/s vs baseline \
             {:.2} Melem/s (ratio {:.3})",
            attempt + 1,
            on.throughput_eps / 1e6,
            off.throughput_eps / 1e6,
            ratio
        );
        telemetry_best_ratio = telemetry_best_ratio.max(ratio);
    }

    // Controller overhead A/B: a *static* single-phase scenario — the
    // controller has nothing useful to do, so the measurement isolates its
    // standing cost (per-tuple window-load recording, per-window
    // observe/snapshot/re-solve). D-Choices so the head snapshot and solver
    // are actually exercised; worker count pinned and capacity effectively
    // infinite so no rescale fires and both sides route the same stream
    // shape. Same interleaved best-pairwise-ratio structure as above.
    let controller_scenario =
        Scenario::new("perf-controller", 2, 4_096, 42).phase(ScenarioPhase::new(48, 1_000, 2.0, 4));
    let mut controller_best_ratio: f64 = 0.0;
    for attempt in 0..5 {
        let base = ScenarioConfig::new(PartitionerKind::DChoices, controller_scenario.clone());
        let on = base
            .clone()
            .with_controller(ControllerConfig::new(4, 4, u64::MAX))
            .run_windowed_on(CountAggregate, &InProc)
            .result;
        let off = base.run_windowed_on(CountAggregate, &InProc).result;
        let ratio = on.throughput_eps / off.throughput_eps;
        println!(
            "perf_smoke controller pair {}: controlled {:.2} Melem/s vs off {:.2} Melem/s \
             (ratio {:.3})",
            attempt + 1,
            on.throughput_eps / 1e6,
            off.throughput_eps / 1e6,
            ratio
        );
        controller_best_ratio = controller_best_ratio.max(ratio);
    }

    let mut failed = false;
    if single < FLOOR_EPS {
        eprintln!(
            "perf_smoke FAILED: single-phase best {:.2} Melem/s is below the {:.1} Melem/s \
             floor — the batched hot path has regressed",
            single / 1e6,
            FLOOR_EPS / 1e6
        );
        failed = true;
    }
    if scenario_best < SCENARIO_FLOOR_EPS {
        eprintln!(
            "perf_smoke FAILED: scenario best {:.2} Melem/s is below the {:.1} Melem/s \
             floor — the phased run loop has regressed",
            scenario_best / 1e6,
            SCENARIO_FLOOR_EPS / 1e6
        );
        failed = true;
    }
    if tcp_best < TCP_FLOOR_EPS {
        eprintln!(
            "perf_smoke FAILED: TCP-backend best {:.2} Melem/s is below the {:.1} Melem/s \
             floor — the networked transport has regressed",
            tcp_best / 1e6,
            TCP_FLOOR_EPS / 1e6
        );
        failed = true;
    }
    if spsc_best < SPSC_FLOOR_EPS {
        eprintln!(
            "perf_smoke FAILED: SPSC-backend best {:.2} Melem/s is below the {:.1} Melem/s \
             floor — the thread-per-core transport has regressed",
            spsc_best / 1e6,
            SPSC_FLOOR_EPS / 1e6
        );
        failed = true;
    }
    if spsc_best_ratio < SPSC_MIN_RATIO {
        eprintln!(
            "perf_smoke FAILED: best SPSC/InProc pair ratio {:.3} is below {:.2} — \
             the lock-free backend is losing to the lock-based one",
            spsc_best_ratio, SPSC_MIN_RATIO
        );
        failed = true;
    }
    if checkpoint_best_ratio < 1.0 - CHECKPOINT_MAX_OVERHEAD {
        eprintln!(
            "perf_smoke FAILED: best checkpointed/baseline pair ratio {:.3} is below \
             {:.2} — the checkpoint path costs more than 10% of fault-free throughput",
            checkpoint_best_ratio,
            1.0 - CHECKPOINT_MAX_OVERHEAD
        );
        failed = true;
    }
    if telemetry_best_ratio < 1.0 - TELEMETRY_MAX_OVERHEAD {
        eprintln!(
            "perf_smoke FAILED: best instrumented/baseline pair ratio {:.3} is below \
             {:.2} — the telemetry layer costs more than 5% of throughput",
            telemetry_best_ratio,
            1.0 - TELEMETRY_MAX_OVERHEAD
        );
        failed = true;
    }
    if controller_best_ratio < 1.0 - CONTROLLER_MAX_OVERHEAD {
        eprintln!(
            "perf_smoke FAILED: best controlled/off pair ratio {:.3} is below {:.2} — \
             the idle elasticity controller costs more than 5% of throughput",
            controller_best_ratio,
            1.0 - CONTROLLER_MAX_OVERHEAD
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "perf_smoke OK: single-phase {:.2} Melem/s clears {:.1}, scenario {:.2} Melem/s \
         clears {:.1}, tcp-backend {:.2} Melem/s clears {:.1}, spsc-backend {:.2} Melem/s \
         clears {:.1} at {:.2}x InProc, checkpoint overhead {:.1}% within the 10% budget, \
         telemetry overhead {:.1}% within the 5% budget, \
         controller overhead {:.1}% within the 5% budget",
        single / 1e6,
        FLOOR_EPS / 1e6,
        scenario_best / 1e6,
        SCENARIO_FLOOR_EPS / 1e6,
        tcp_best / 1e6,
        TCP_FLOOR_EPS / 1e6,
        spsc_best / 1e6,
        SPSC_FLOOR_EPS / 1e6,
        spsc_best_ratio,
        (1.0 - checkpoint_best_ratio).max(0.0) * 100.0,
        (1.0 - telemetry_best_ratio).max(0.0) * 100.0,
        (1.0 - controller_best_ratio).max(0.0) * 100.0
    );
}
