//! CI perf smoke: the batched engine hot path must clear a throughput floor.
//!
//! Runs the mini-DSPE with zero per-tuple service time — isolating routing,
//! batching, channel transport, and worker state updates — and fails (exit
//! code 1) if end-to-end throughput falls below a conservative floor. The
//! floor is set far under the ~30 Melem/s the batched transport measures on
//! a developer machine, but well above the ~2.5 Melem/s the tuple-at-a-time
//! transport topped out at, so a regression that reintroduces per-tuple
//! channel round-trips (or comparable hot-path overhead) cannot land
//! silently. See `docs/PERF.md` for the measurement history.
//!
//! The best of three runs is compared against the floor to damp scheduler
//! noise on loaded CI machines.

use slb_core::PartitionerKind;
use slb_engine::{EngineConfig, Topology};

/// Conservative floor, in events per second.
const FLOOR_EPS: f64 = 5.0e6;

fn main() {
    let mut best: f64 = 0.0;
    for run in 0..3 {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 2.0)
            .with_messages(400_000)
            .with_service_time_us(0);
        let result = Topology::new(cfg).run();
        println!(
            "perf_smoke run {}: {} at zero service time: {:.2} Melem/s ({} tuples in {:.4}s)",
            run + 1,
            result.scheme,
            result.throughput_eps / 1e6,
            result.processed,
            result.elapsed_secs
        );
        best = best.max(result.throughput_eps);
    }
    if best < FLOOR_EPS {
        eprintln!(
            "perf_smoke FAILED: best {:.2} Melem/s is below the {:.1} Melem/s floor — \
             the batched hot path has regressed",
            best / 1e6,
            FLOOR_EPS / 1e6
        );
        std::process::exit(1);
    }
    println!(
        "perf_smoke OK: best {:.2} Melem/s clears the {:.1} Melem/s floor",
        best / 1e6,
        FLOOR_EPS / 1e6
    );
}
