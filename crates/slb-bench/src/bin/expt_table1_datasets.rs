//! Table I: summary of the datasets used in the experiments.
//!
//! Prints, for every dataset, the number of messages, number of distinct
//! keys and the relative frequency of the most frequent key, alongside the
//! values published in the paper. The synthetic stand-ins are constructed to
//! match the published statistics exactly (see `slb-workloads`), so the
//! "generated" columns show what the stand-in generators actually declare,
//! and the empirical p1 column shows what a smoke-scale replay measures.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_sketch::{ExactCounter, FrequencyEstimator};
use slb_workloads::datasets::{table1_rows, Dataset, Scale, SyntheticDataset};

fn empirical_p1(dataset: &SyntheticDataset) -> f64 {
    let mut stream = dataset.stream();
    let mut counter = ExactCounter::new();
    // For drifting datasets (CT) the hot keys change identity every epoch, so
    // the whole-stream p1 is diluted by design; Table I's p1 is a property of
    // the stationary distribution, which one epoch reflects.
    let limit = dataset.drift_epoch().unwrap_or(u64::MAX);
    let mut seen = 0u64;
    while let Some(key) = stream.next_key() {
        counter.observe(&key);
        seen += 1;
        if seen >= limit {
            break;
        }
    }
    counter.p1()
}

fn main() {
    let options = options_from_env();
    print_header(
        "Table I",
        "Datasets: messages, keys, p1 (paper-scale declared values)",
        &options,
    );

    println!(
        "{:<10} {:>14} {:>12} {:>8}",
        "dataset", "messages", "keys", "p1(%)"
    );
    let mut table = Table::new(
        "table1_datasets",
        &["dataset", "messages", "keys", "p1", "empirical_p1"],
    );
    for row in table1_rows() {
        println!(
            "{:<10} {:>14} {:>12} {:>8.2}",
            row.kind.symbol(),
            row.messages,
            row.keys,
            row.p1 * 100.0
        );
    }

    println!();
    println!("# Empirical check of the stand-in generators at smoke scale:");
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "dataset", "declared p1", "empirical p1", "abs diff"
    );
    for ds in SyntheticDataset::real_world_suite(Scale::Smoke, options.seed) {
        let declared = ds.stats().p1;
        let measured = empirical_p1(&ds);
        println!(
            "{:<10} {:>11.2}% {:>13.2}% {:>14.4}",
            ds.stats().kind.symbol(),
            declared * 100.0,
            measured * 100.0,
            (declared - measured).abs()
        );
        let stats = ds.stats();
        table.row([
            stats.kind.symbol().into(),
            stats.messages.into(),
            stats.keys.into(),
            declared.into(),
            measured.into(),
        ]);
    }
    table.emit();
}
