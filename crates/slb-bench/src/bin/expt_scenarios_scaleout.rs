//! Scenario study: mid-run scale-out and scale-in, end to end.
//!
//! Replays the canonical stress scenario (drifting skew, a 2×-slow worker,
//! a burst phase, scale-out to 2n workers and back) two ways:
//!
//! 1. through the analytic simulator for all six schemes, reporting the
//!    per-phase imbalance over each phase's *active* worker set, and
//! 2. through the threaded engine for one scheme, verifying that the merged
//!    windowed counts are bit-identical to the single-threaded exact
//!    reference and printing the per-phase stage metrics (tuples,
//!    throughput, latency percentiles) the scenario engine emits.
//!
//! Expected shape: the head-aware schemes keep the imbalance low through
//! every resize, KG degrades wherever skew exists, and the engine's
//! `exact-reference=MATCH` line certifies that scale-out never loses or
//! duplicates a tuple.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{exact_scenario_windowed_counts, ScenarioConfig};
use slb_simulator::experiments::ExperimentScale;
use slb_simulator::simulate_scenario;
use slb_workloads::Scenario;

fn main() {
    let options = options_from_env();
    print_header(
        "Scenario: scale-out",
        "Per-phase imbalance across cluster resizes + engine exactness check",
        &options,
    );

    let (window_size, workers) = match options.scale {
        ExperimentScale::Smoke => (1_024, 5),
        ExperimentScale::Laptop => (4_096, 20),
        ExperimentScale::Paper => (16_384, 40),
    };
    let scenario = Scenario::stress(4, window_size, workers, options.seed);

    println!(
        "{:<8} {:>6} {:>6} {:>8} {:>14} {:>14}",
        "scheme", "phase", "skew", "workers", "imbalance", "weighted-I"
    );
    let mut table = Table::new(
        "scenarios_scaleout",
        &[
            "scheme",
            "phase",
            "skew",
            "workers",
            "imbalance",
            "weighted_imbalance",
        ],
    );
    for kind in PartitionerKind::ALL {
        let result = simulate_scenario(kind, &scenario);
        for outcome in &result.phases {
            println!(
                "{:<8} {:>6} {:>6.1} {:>8} {:>14} {:>14}",
                result.scheme,
                outcome.phase,
                scenario.phases[outcome.phase].skew,
                outcome.workers,
                sci(outcome.imbalance),
                sci(outcome.weighted_imbalance)
            );
            table.row([
                result.scheme.as_str().into(),
                outcome.phase.into(),
                scenario.phases[outcome.phase].skew.into(),
                outcome.workers.into(),
                outcome.imbalance.into(),
                outcome.weighted_imbalance.into(),
            ]);
        }
    }
    table.emit();

    // Engine end-to-end: same spec, threaded execution, exactness pinned
    // against the single-threaded reference.
    let kind = PartitionerKind::WChoices;
    let run = ScenarioConfig::new(kind, scenario.clone()).run_windowed(CountAggregate);
    let reference = exact_scenario_windowed_counts(&scenario);
    let matches = run.windows == reference;
    println!(
        "# engine: scheme={} processed={} windows={} exact-reference={}",
        run.result.scheme,
        run.result.processed,
        run.result.windows,
        if matches { "MATCH" } else { "DIVERGED" }
    );
    println!("# engine per-phase stage metrics:");
    println!(
        "#   {:>6} {:>8} {:>12} {:>14} {:>12} {:>12}",
        "phase", "workers", "tuples", "tuples/s", "p50 (µs)", "p99 (µs)"
    );
    let mut engine_table = Table::new(
        "scenarios_scaleout_engine",
        &[
            "scheme",
            "phase",
            "workers",
            "tuples",
            "tuples_per_sec",
            "p50_us",
            "p99_us",
        ],
    );
    for phase in &run.result.phases {
        println!(
            "#   {:>6} {:>8} {:>12} {:>14.0} {:>12} {:>12}",
            phase.phase,
            phase.workers,
            phase.stage.items,
            phase.stage.items_per_sec,
            phase.stage.latency.p50_us,
            phase.stage.latency.p99_us
        );
        engine_table.row([
            run.result.scheme.as_str().into(),
            phase.phase.into(),
            phase.workers.into(),
            phase.stage.items.into(),
            phase.stage.items_per_sec.into(),
            phase.stage.latency.p50_us.into(),
            phase.stage.latency.p99_us.into(),
        ]);
    }
    engine_table.emit();
    if !matches {
        eprintln!("scale-out run diverged from the exact reference");
        std::process::exit(1);
    }
}
