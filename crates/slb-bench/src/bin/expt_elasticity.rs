//! Closed-loop elasticity study: the online controller versus static `d`.
//!
//! The paper chooses the number of choices `d` offline from the analytical
//! bound and never revisits it; ROADMAP item 3 closes the loop at runtime.
//! This experiment replays the drift-heavy scenario preset through the
//! analytic simulator twice per scheme — once with the elasticity
//! controller (online `d` re-solving plus worker activation inside
//! `[min, max]` bounds) and once without — and reports what the controller
//! did and what it bought.
//!
//! Expected shape: for D-Choices the controller both retunes (as each
//! drift epoch churns the head) and activates workers while windows run
//! hot; the head-blind schemes can only scale workers (no head snapshot to
//! re-solve). The two imbalance columns are over different worker
//! universes — the static run's constant count versus the controller's
//! spawned universe, where partially-used activated slots raise the
//! statistic — so compare *within* a column across schemes, not across the
//! columns. The apples-to-apples beat-static claim is asserted by the
//! `controller_differential` suite, which pins the worker count and lets
//! only the `d` lever move.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_core::{ControllerAction, ControllerConfig, PartitionerKind};
use slb_simulator::experiments::ExperimentScale;
use slb_simulator::{simulate_scenario, simulate_scenario_controlled};
use slb_workloads::Scenario;

fn main() {
    let options = options_from_env();
    print_header(
        "Elasticity: closed-loop controller",
        "Controller (online d re-solve + scale-out) vs static runs on the drift preset",
        &options,
    );

    let (window_size, workers) = match options.scale {
        ExperimentScale::Smoke => (512, 4),
        ExperimentScale::Laptop => (4_096, 8),
        ExperimentScale::Paper => (16_384, 16),
    };
    let sources = 2;
    let scenario = Scenario::drift(sources, window_size, workers, options.seed);
    // Capacity below the balanced per-worker share of one window keeps
    // scale-out pressure on until the active set widens; the bounds leave
    // room to halve or double the scenario's constant worker count.
    let controller = ControllerConfig::new(
        (workers / 2).max(2),
        workers * 2,
        (window_size / workers as u64).max(1),
    );

    println!(
        "{:<8} {:>12} {:>12} {:>6} {:>5} {:>7} {:>9}",
        "scheme", "static_imb", "online_imb", "out", "in", "retune", "workers"
    );
    let mut table = Table::new(
        "elasticity",
        &[
            "scheme",
            "static_imbalance",
            "controlled_imbalance",
            "scale_outs",
            "scale_ins",
            "retunes",
            "final_workers",
        ],
    );
    for kind in PartitionerKind::ALL {
        let fixed = simulate_scenario(kind, &scenario);
        let controlled = simulate_scenario_controlled(kind, &scenario, &controller);
        let count = |action: ControllerAction| {
            controlled
                .controller
                .events
                .iter()
                .filter(|e| e.action == action)
                .count()
        };
        let (outs, ins, retunes) = (
            count(ControllerAction::ScaleOut),
            count(ControllerAction::ScaleIn),
            count(ControllerAction::Retune),
        );
        // Workers that actually absorbed load under control — the spawned
        // universe minus the slots the controller never activated.
        let used = controlled.worker_counts.iter().filter(|&&c| c > 0).count();
        let static_final = fixed.phases.last().expect("scenario has phases").imbalance;
        println!(
            "{:<8} {:>12} {:>12} {:>6} {:>5} {:>7} {:>9}",
            controlled.scheme,
            sci(static_final),
            sci(controlled.imbalance),
            outs,
            ins,
            retunes,
            used
        );
        table.row([
            controlled.scheme.as_str().into(),
            static_final.into(),
            controlled.imbalance.into(),
            outs.into(),
            ins.into(),
            retunes.into(),
            used.into(),
        ]);
    }
    table.emit();
    println!(
        "# drift preset: {} sources, {}-tuple windows, {} workers (controller bounds \
         [{}, {}], capacity {}); online_imb is over the controller's spawned universe",
        sources,
        window_size,
        workers,
        controller.min_workers,
        controller.max_workers,
        controller.worker_capacity
    );
}
