//! Scenario study: heterogeneous worker speeds.
//!
//! The paper's cluster is homogeneous; real deployments are not. This
//! experiment replays a scenario whose phases differ only in the per-worker
//! service-speed multipliers and reports, per scheme and phase, both the
//! routed-count imbalance and the *work-weighted* imbalance (counts × speed
//! multiplier). A count-balanced scheme routing into a cluster with one
//! 2×-slow worker is work-imbalanced by construction — the slow worker is
//! the saturation bottleneck — which is exactly what the weighted column
//! surfaces while the plain column hides it.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_core::PartitionerKind;
use slb_simulator::experiments::ExperimentScale;
use slb_simulator::simulate_scenario;
use slb_workloads::{Scenario, ScenarioPhase};

fn main() {
    let options = options_from_env();
    print_header(
        "Scenario: heterogeneity",
        "Routed vs work-weighted imbalance with slow workers",
        &options,
    );

    let (windows, window_size) = match options.scale {
        ExperimentScale::Smoke => (2, 4_096),
        ExperimentScale::Laptop => (8, 8_192),
        ExperimentScale::Paper => (16, 16_384),
    };
    let workers = 8;
    let keys = 10_000;
    // One worker 2× slower.
    let one_slow: Vec<f64> = (0..workers)
        .map(|w| if w == 0 { 2.0 } else { 1.0 })
        .collect();
    // Half the cluster 1.5× slower.
    let half_slow: Vec<f64> = (0..workers)
        .map(|w| if w < workers / 2 { 1.5 } else { 1.0 })
        .collect();
    let scenario = Scenario::new("hetero", 4, window_size, options.seed)
        .phase(ScenarioPhase::new(windows, keys, 1.4, workers))
        .phase(ScenarioPhase::new(windows, keys, 1.4, workers).with_worker_speed(one_slow))
        .phase(ScenarioPhase::new(windows, keys, 0.0, workers).with_worker_speed(half_slow));

    println!(
        "{:<8} {:>6} {:>6} {:>10} {:>14} {:>14}",
        "scheme", "phase", "skew", "speeds", "imbalance", "weighted-I"
    );
    let mut table = Table::new(
        "scenarios_hetero",
        &[
            "scheme",
            "phase",
            "skew",
            "speeds",
            "imbalance",
            "weighted_imbalance",
        ],
    );
    for kind in PartitionerKind::ALL {
        let result = simulate_scenario(kind, &scenario);
        for outcome in &result.phases {
            let spec = &scenario.phases[outcome.phase];
            let label = match outcome.phase {
                0 => "uniform",
                1 => "1x2.0",
                _ => "4x1.5",
            };
            println!(
                "{:<8} {:>6} {:>6.1} {:>10} {:>14} {:>14}",
                result.scheme,
                outcome.phase,
                spec.skew,
                label,
                sci(outcome.imbalance),
                sci(outcome.weighted_imbalance)
            );
            table.row([
                result.scheme.as_str().into(),
                outcome.phase.into(),
                spec.skew.into(),
                label.into(),
                outcome.imbalance.into(),
                outcome.weighted_imbalance.into(),
            ]);
        }
    }
    table.emit();
    println!(
        "# phases: 0 = homogeneous z=1.4, 1 = worker 0 at 2x service time, \
         2 = uniform keys with half the cluster at 1.5x"
    );
}
