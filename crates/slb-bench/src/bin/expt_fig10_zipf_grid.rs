//! Figure 10: average imbalance vs. skew for PKG, D-C, W-C and RR across the
//! grid of worker counts and key-space sizes.
//!
//! The paper runs n ∈ {5, 10, 50, 100} × |K| ∈ {10⁴, 10⁵, 10⁶} with 10⁷
//! messages. The qualitative result: the number of keys barely matters, while
//! skew and scale do; W-C is uniformly best, D-C and RR close behind, PKG
//! degrades at high skew and large n.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_simulator::experiments::{zipf_grid, ExperimentScale};

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 10",
        "Imbalance vs skew grid (PKG, D-C, W-C, RR)",
        &options,
    );

    let messages = options.scale.zipf_messages();
    let skews = options.scale.skew_sweep();
    let (worker_counts, key_counts): (Vec<usize>, Vec<usize>) = match options.scale {
        ExperimentScale::Smoke => (vec![5, 50], vec![10_000]),
        ExperimentScale::Laptop => (vec![5, 10, 50, 100], vec![10_000, 100_000]),
        ExperimentScale::Paper => (vec![5, 10, 50, 100], vec![10_000, 100_000, 1_000_000]),
    };
    let rows = zipf_grid(&worker_counts, &key_counts, messages, &skews, options.seed);

    println!(
        "{:<8} {:>10} {:>8} {:>6} {:>14} {:>14}",
        "scheme", "keys", "workers", "skew", "I(m)", "mean I(t)"
    );
    let mut table = Table::new(
        "fig10_zipf_grid",
        &[
            "scheme",
            "keys",
            "workers",
            "skew",
            "imbalance",
            "mean_imbalance",
        ],
    );
    for row in &rows {
        println!(
            "{:<8} {:>10} {:>8} {:>6.1} {:>14} {:>14}",
            row.scheme,
            row.keys,
            row.workers,
            row.skew.unwrap_or(f64::NAN),
            sci(row.imbalance),
            sci(row.mean_imbalance)
        );
        table.row([
            row.scheme.as_str().into(),
            row.keys.into(),
            row.workers.into(),
            row.skew.into(),
            row.imbalance.into(),
            row.mean_imbalance.into(),
        ]);
    }
    table.emit();

    // Who wins at the hardest setting (largest n, largest z)?
    let n_max = *worker_counts.iter().max().unwrap();
    let z_max = skews.iter().cloned().fold(0.0f64, f64::max);
    println!("# hardest setting n={n_max}, z={z_max:.1}:");
    for scheme in ["PKG", "D-C", "W-C", "RR"] {
        if let Some(r) = rows.iter().find(|r| {
            r.scheme == scheme && r.workers == n_max && (r.skew.unwrap_or(0.0) - z_max).abs() < 1e-9
        }) {
            println!("#   {scheme}: I(m) = {}", sci(r.imbalance));
        }
    }
}
