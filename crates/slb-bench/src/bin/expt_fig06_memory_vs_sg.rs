//! Figure 6: estimated memory overhead of D-C and W-C with respect to SG.
//!
//! Same model and parameters as Figure 5, but relative to shuffle grouping.
//! Values are negative: the head-aware schemes use a small fraction of the
//! memory shuffle grouping needs (the paper reports at least ~80% savings).

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_simulator::experiments::memory_overhead_vs_skew;

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 6",
        "Memory overhead w.r.t. SG (%) vs skew",
        &options,
    );

    let skews = options.scale.skew_sweep();
    let rows = memory_overhead_vs_skew(&[50, 100], 10_000, 10_000_000, &skews, 1e-4);

    println!(
        "{:<6} {:>8} {:>8} {:>14}",
        "skew", "workers", "scheme", "vs SG (%)"
    );
    let mut table = Table::new(
        "fig06_memory_vs_sg",
        &["skew", "workers", "scheme", "vs_sg_pct"],
    );
    for row in &rows {
        println!(
            "{:<6.1} {:>8} {:>8} {:>14.2}",
            row.skew, row.workers, row.scheme, row.vs_sg_pct
        );
        table.row([
            row.skew.into(),
            row.workers.into(),
            row.scheme.as_str().into(),
            row.vs_sg_pct.into(),
        ]);
    }
    table.emit();
    let least_saving = rows.iter().map(|r| r.vs_sg_pct).fold(f64::MIN, f64::max);
    println!("# smallest saving vs SG across the sweep: {least_saving:.1}%");
}
