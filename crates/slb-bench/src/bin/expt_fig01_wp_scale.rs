//! Figure 1: imbalance vs. number of workers on the Wikipedia-like dataset.
//!
//! Reproduces the motivating figure: PKG keeps the imbalance low at small
//! scale (5–10 workers) but degrades sharply at 20, 50 and 100 workers,
//! while D-Choices and W-Choices stay several orders of magnitude lower.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_core::PartitionerKind;
use slb_simulator::experiments::imbalance_vs_workers;
use slb_workloads::datasets::SyntheticDataset;

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 1",
        "Imbalance I(m) vs workers on WP for PKG, D-C, W-C",
        &options,
    );

    let dataset = SyntheticDataset::wikipedia_like(options.scale.dataset_scale(), options.seed);
    let schemes = [
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
    ];
    let workers = [5usize, 10, 20, 50, 100];
    let rows = imbalance_vs_workers(&[dataset], &schemes, &workers);

    println!(
        "{:<8} {:>8} {:>14} {:>14}",
        "scheme", "workers", "I(m)", "mean I(t)"
    );
    let mut table = Table::new(
        "fig01_wp_scale",
        &["scheme", "workers", "imbalance", "mean_imbalance"],
    );
    for row in &rows {
        println!(
            "{:<8} {:>8} {:>14} {:>14}",
            row.scheme,
            row.workers,
            sci(row.imbalance),
            sci(row.mean_imbalance)
        );
        table.row([
            row.scheme.as_str().into(),
            row.workers.into(),
            row.imbalance.into(),
            row.mean_imbalance.into(),
        ]);
    }
    table.emit();

    // The headline comparison the paper draws from this figure.
    for &n in &[50usize, 100] {
        let pkg = rows
            .iter()
            .find(|r| r.scheme == "PKG" && r.workers == n)
            .unwrap();
        let wc = rows
            .iter()
            .find(|r| r.scheme == "W-C" && r.workers == n)
            .unwrap();
        println!(
            "# at n={n}: PKG imbalance {} vs W-C {} ({}x reduction)",
            sci(pkg.imbalance),
            sci(wc.imbalance),
            if wc.imbalance > 0.0 {
                (pkg.imbalance / wc.imbalance).round()
            } else {
                f64::INFINITY
            }
        );
    }
}
