//! Ablation: how sensitive is D-Choices to its two implementation knobs?
//!
//! The paper fixes the SpaceSaving capacity ("a very small number of keys")
//! and re-runs FINDOPTIMALCHOICES per message (Algorithm 1). This library
//! exposes both as configuration: the sketch capacity (default 10·n
//! counters) and the solver re-run interval (default 1000 messages, plus a
//! re-run whenever head membership changes). This experiment quantifies how
//! much either knob matters for the final imbalance, and additionally
//! replicates one setting across several seeds to show run-to-run variance —
//! the justification for reporting single deterministic runs elsewhere.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_core::{PartitionConfig, PartitionerKind};
use slb_simulator::{SimulationConfig, Simulator};
use slb_workloads::zipf::ZipfGenerator;

fn run_dc(
    workers: usize,
    keys: usize,
    messages: u64,
    z: f64,
    seed: u64,
    sketch_capacity: usize,
    solver_interval: u64,
) -> f64 {
    let partition = PartitionConfig::new(workers)
        .with_seed(seed)
        .with_sketch_capacity(sketch_capacity)
        .with_solver_interval(solver_interval);
    let config = SimulationConfig::new(PartitionerKind::DChoices, workers)
        .with_partition(partition)
        .with_checkpoint_interval((messages / 10).max(1));
    let mut stream = ZipfGenerator::with_limit(keys, z, seed, messages);
    Simulator::run(config, &mut stream).imbalance
}

fn main() {
    let options = options_from_env();
    print_header(
        "Ablation",
        "D-Choices sensitivity to sketch capacity, solver interval, and seed",
        &options,
    );

    let workers = 50;
    let keys = 10_000;
    let z = 1.6;
    let messages = options.scale.zipf_messages();

    let mut table = Table::new("ablation_sensitivity", &["knob", "value", "imbalance"]);

    println!("## SpaceSaving capacity (default 10·n = {})", 10 * workers);
    println!("{:>10} {:>14}", "capacity", "I(m)");
    for capacity in [
        workers,
        2 * workers,
        5 * workers,
        10 * workers,
        50 * workers,
    ] {
        let imb = run_dc(workers, keys, messages, z, options.seed, capacity, 1_000);
        println!("{:>10} {:>14}", capacity, sci(imb));
        table.row(["capacity".into(), capacity.into(), imb.into()]);
    }

    println!();
    println!("## Solver re-run interval (default 1000 messages)");
    println!("{:>10} {:>14}", "interval", "I(m)");
    for interval in [10u64, 100, 1_000, 10_000, 100_000] {
        let imb = run_dc(
            workers,
            keys,
            messages,
            z,
            options.seed,
            10 * workers,
            interval,
        );
        println!("{:>10} {:>14}", interval, sci(imb));
        table.row(["interval".into(), interval.into(), imb.into()]);
    }

    println!();
    println!("## Seed replication (paper defaults, 5 seeds)");
    println!("{:>10} {:>14}", "seed", "I(m)");
    let mut values = Vec::new();
    for offset in 0..5u64 {
        let seed = options.seed.wrapping_add(offset);
        let imb = run_dc(workers, keys, messages, z, seed, 10 * workers, 1_000);
        values.push(imb);
        println!("{:>10} {:>14}", offset, sci(imb));
        table.row(["seed_offset".into(), offset.into(), imb.into()]);
    }
    table.emit();
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    println!("# mean {} min {} max {}", sci(mean), sci(min), sci(max));
    println!("# conclusion: capacity ≥ 2n and any interval ≤ 10^4 messages leave the");
    println!("# imbalance within run-to-run noise; the defaults are not load-bearing.");
}
