//! Figure 14: end-to-end latency of KG, PKG, D-C, W-C and SG on the
//! mini-DSPE.
//!
//! Same setup as Figure 13; reports, per scheme and skew, the maximum of the
//! per-worker average latencies and the 50th/95th/99th percentiles across
//! all processed tuples, in milliseconds. The expected shape: KG has by far
//! the worst tail latency at high skew (queueing at the worker that owns the
//! hottest key), PKG roughly halves it, and D-C / W-C track SG closely.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_core::PartitionerKind;
use slb_engine::topology::compare_schemes;
use slb_engine::EngineConfig;
use slb_simulator::experiments::ExperimentScale;

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 14",
        "Latency (max-avg, p50, p95, p99) per scheme",
        &options,
    );

    let schemes = [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::ShuffleGrouping,
    ];
    let skews = [1.4f64, 1.7, 2.0];

    println!(
        "{:<8} {:>6} {:>14} {:>10} {:>10} {:>10}",
        "scheme", "skew", "max-avg (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"
    );
    let mut table = Table::new(
        "fig14_latency",
        &["scheme", "skew", "max_avg_us", "p50_us", "p95_us", "p99_us"],
    );
    let mut all = Vec::new();
    for &z in &skews {
        let base = match options.scale {
            ExperimentScale::Smoke => EngineConfig::smoke(PartitionerKind::Pkg, z),
            ExperimentScale::Laptop => EngineConfig::laptop(PartitionerKind::Pkg, z),
            ExperimentScale::Paper => EngineConfig::paper(PartitionerKind::Pkg, z),
        }
        .with_seed(options.seed);
        let results = compare_schemes(&base, &schemes);
        for r in &results {
            println!(
                "{:<8} {:>6.1} {:>14.2} {:>10.2} {:>10.2} {:>10.2}",
                r.scheme,
                r.skew,
                r.latency.max_avg_us / 1_000.0,
                r.latency.p50_us as f64 / 1_000.0,
                r.latency.p95_us as f64 / 1_000.0,
                r.latency.p99_us as f64 / 1_000.0
            );
            table.row([
                r.scheme.as_str().into(),
                r.skew.into(),
                r.latency.max_avg_us.into(),
                r.latency.p50_us.into(),
                r.latency.p95_us.into(),
                r.latency.p99_us.into(),
            ]);
        }
        all.push((z, results));
    }
    table.emit();

    for (z, results) in &all {
        let p99 = |s: &str| {
            results
                .iter()
                .find(|r| r.scheme == s)
                .map(|r| r.latency.p99_us as f64)
                .unwrap_or(0.0)
        };
        let (kg, pkg, dc) = (p99("KG"), p99("PKG"), p99("D-C"));
        if pkg > 0.0 && kg > 0.0 {
            println!(
                "# z={z:.1}: D-C cuts p99 latency by {:.0}% vs PKG and {:.0}% vs KG",
                100.0 * (1.0 - dc / pkg),
                100.0 * (1.0 - dc / kg)
            );
        }
    }
}
