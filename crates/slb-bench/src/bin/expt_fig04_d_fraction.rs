//! Figure 4: fraction of workers (d/n) used by D-Choices for the head.
//!
//! Runs the FINDOPTIMALCHOICES solver on the exact Zipf distribution for
//! every skew in the sweep and n ∈ {5, 10, 50, 100}, with |K| = 10⁴ and
//! ε = 10⁻⁴ as in the paper.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_simulator::experiments::d_fraction_vs_skew;

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 4",
        "Fraction of workers d/n used by D-C vs skew",
        &options,
    );

    let skews = options.scale.skew_sweep();
    let worker_counts = [5usize, 10, 50, 100];
    let rows = d_fraction_vs_skew(&worker_counts, 10_000, &skews, 1e-4);

    println!("{:<6} {:>8} {:>6} {:>10}", "skew", "workers", "d", "d/n");
    let mut table = Table::new("fig04_d_fraction", &["skew", "workers", "d", "fraction"]);
    for row in &rows {
        println!(
            "{:<6.1} {:>8} {:>6} {:>10.3}",
            row.skew, row.workers, row.d, row.fraction
        );
        table.row([
            row.skew.into(),
            row.workers.into(),
            row.d.into(),
            row.fraction.into(),
        ]);
    }
    table.emit();

    // The paper's observation: at larger scales (n = 50, 100) the fraction
    // d/n stays clearly below 1 even at high skew.
    for &n in &[50usize, 100] {
        let max_fraction = rows
            .iter()
            .filter(|r| r.workers == n)
            .map(|r| r.fraction)
            .fold(0.0f64, f64::max);
        println!("# n={n}: maximum d/n over the sweep = {max_fraction:.3}");
    }
}
