//! Scenario study: grouping schemes under *drifting* skew.
//!
//! The paper motivates D-Choices/W-Choices with workloads whose hot keys
//! churn (the cashtag dataset's concept drift), but its synthetic evaluation
//! holds the distribution fixed. This experiment replays a three-phase
//! scenario — heavy skew, a uniform cool-down, then moderate skew with
//! in-phase drift — through the analytic simulator for all six schemes and
//! reports the per-phase imbalance. Expected shape: the head-aware schemes
//! and PKG beat KG wherever a head exists (phases 0 and 2, drift or not,
//! because the SpaceSaving tracker re-learns the churned head within each
//! epoch), while under the uniform phase every scheme converges to
//! near-perfect balance.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_core::PartitionerKind;
use slb_simulator::experiments::ExperimentScale;
use slb_simulator::simulate_scenario;
use slb_workloads::{Scenario, ScenarioPhase};

fn main() {
    let options = options_from_env();
    print_header(
        "Scenario: drift",
        "Per-phase imbalance under drifting skew (hot, uniform, drifting phases)",
        &options,
    );

    // Window counts are multiples of 3 so the drifting phase's 3 epochs
    // divide its tuple budget evenly (a `Scenario::validate` requirement).
    let (windows, window_size) = match options.scale {
        ExperimentScale::Smoke => (3, 4_096),
        ExperimentScale::Laptop => (9, 8_192),
        ExperimentScale::Paper => (15, 16_384),
    };
    let workers = 20;
    let keys = 10_000;
    let scenario = Scenario::new("drift", 4, window_size, options.seed)
        .phase(ScenarioPhase::new(windows, keys, 2.0, workers))
        .phase(ScenarioPhase::new(windows, keys, 0.0, workers))
        .phase(ScenarioPhase::new(windows, keys, 1.4, workers).with_drift_epochs(3));

    println!(
        "{:<8} {:>6} {:>6} {:>8} {:>8} {:>14}",
        "scheme", "phase", "skew", "drift", "workers", "imbalance"
    );
    let mut table = Table::new(
        "scenarios_drift",
        &[
            "scheme",
            "phase",
            "skew",
            "drift_epochs",
            "workers",
            "imbalance",
        ],
    );
    for kind in PartitionerKind::ALL {
        let result = simulate_scenario(kind, &scenario);
        for outcome in &result.phases {
            let spec = &scenario.phases[outcome.phase];
            println!(
                "{:<8} {:>6} {:>6.1} {:>8} {:>8} {:>14}",
                result.scheme,
                outcome.phase,
                spec.skew,
                spec.drift_epochs,
                outcome.workers,
                sci(outcome.imbalance)
            );
            table.row([
                result.scheme.as_str().into(),
                outcome.phase.into(),
                spec.skew.into(),
                spec.drift_epochs.into(),
                outcome.workers.into(),
                outcome.imbalance.into(),
            ]);
        }
    }
    table.emit();
    println!(
        "# phases: 0 = static z=2.0, 1 = uniform, 2 = z=1.4 with 3 drift epochs; \
         {} tuples per phase",
        scenario.phase_tuples_per_source(0) * scenario.sources as u64
    );
}
