//! Observability fidelity: the paper's latency-percentile figure rebuilt
//! from the telemetry layer's mergeable histograms alone.
//!
//! Figure 14 reports p50/p95/p99 latency per scheme from *exact* sorted
//! samples. A production deployment cannot retain every raw sample, so the
//! telemetry layer's claim is that its fixed-size log₂ histograms (16
//! sub-buckets per octave) carry enough fidelity to reproduce the figure.
//! This experiment measures that claim within single runs: each scheme ×
//! skew cell runs once, and the cell's exact percentiles (from the run's
//! retained raw samples) are compared against the quantiles of the *same
//! run's* merged latency histogram ([`slb_engine::EngineResult`]'s
//! `latency_histogram` — the distribution a remote node's `MetricsSnapshot`
//! ships over the wire). Latencies are wall-clock, so only a same-run
//! comparison is meaningful; a rerun would measure scheduler noise, not
//! bucketing error.
//!
//! The histogram quantile is the floor of the bucket holding the
//! nearest-rank sample, so it can only under-report, by less than one
//! sub-bucket width: 2⁻⁴ = 6.25% relative. The run fails if any cell
//! exceeds that bound — the bound is structural, not statistical, so a
//! violation means the histogram path is broken, not that the machine was
//! loaded. The figure's *shape* (KG's tail blow-up at high skew, PKG
//! cutting it down, D-C/W-C tracking SG) survives bucketing, which is the
//! operational point: live cluster dashboards built from merged
//! `MetricsSnapshot` histograms rank schemes the same way the paper does.
//!
//! A deployment that sets `SLB_LATENCY_RETAIN=0` (no raw samples at all)
//! gets exactly the histogram column as its report — the bound measured
//! here is that configuration's worst-case reporting error.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_core::PartitionerKind;
use slb_engine::{EngineConfig, Topology};
use slb_simulator::experiments::ExperimentScale;

/// One sub-bucket of relative under-report, plus one microsecond of
/// integer slop for tiny percentiles.
fn within_bound(exact: u64, bucketed: u64) -> bool {
    bucketed <= exact && (exact - bucketed) as f64 <= exact as f64 / 16.0 + 1.0
}

fn err_pct(exact: u64, bucketed: u64) -> f64 {
    if exact == 0 {
        0.0
    } else {
        100.0 * (exact as f64 - bucketed as f64) / exact as f64
    }
}

fn main() {
    let options = options_from_env();
    print_header(
        "Observability",
        "Latency percentiles from exact samples vs telemetry histograms",
        &options,
    );

    let schemes = [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::ShuffleGrouping,
    ];
    let skews = [1.4f64, 1.7, 2.0];
    let base = |kind: PartitionerKind, z: f64| {
        match options.scale {
            ExperimentScale::Smoke => EngineConfig::smoke(kind, z),
            ExperimentScale::Laptop => EngineConfig::laptop(kind, z),
            ExperimentScale::Paper => EngineConfig::paper(kind, z),
        }
        .with_seed(options.seed)
    };

    println!(
        "{:<8} {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "scheme",
        "skew",
        "p50 (us)",
        "p50 hist",
        "p95 (us)",
        "p95 hist",
        "p99 (us)",
        "p99 hist",
        "err max"
    );
    let mut table = Table::new(
        "observability",
        &[
            "scheme",
            "skew",
            "p50_exact_us",
            "p50_hist_us",
            "p95_exact_us",
            "p95_hist_us",
            "p99_exact_us",
            "p99_hist_us",
        ],
    );
    let mut failed = false;
    for &z in &skews {
        for &kind in &schemes {
            let scheme = kind.symbol();
            let r = Topology::new(base(kind, z)).run();
            let exact = &r.latency;
            let hist = &r.latency_histogram;
            assert_eq!(
                hist.count(),
                exact.samples,
                "the histogram and the summary must cover the same population"
            );
            let pairs = [
                (exact.p50_us, hist.quantile(0.50)),
                (exact.p95_us, hist.quantile(0.95)),
                (exact.p99_us, hist.quantile(0.99)),
            ];
            let worst = pairs
                .into_iter()
                .map(|(e, b)| {
                    if !within_bound(e, b) {
                        failed = true;
                        eprintln!(
                            "expt_observability FAILED: {scheme} z={z} histogram percentile \
                             {b}us breaks the one-sub-bucket bound around the exact {e}us"
                        );
                    }
                    err_pct(e, b)
                })
                .fold(0.0f64, f64::max);
            println!(
                "{:<8} {:>5.1} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7.2}%",
                scheme,
                z,
                exact.p50_us,
                pairs[0].1,
                exact.p95_us,
                pairs[1].1,
                exact.p99_us,
                pairs[2].1,
                worst
            );
            table.row([
                scheme.into(),
                z.into(),
                exact.p50_us.into(),
                pairs[0].1.into(),
                exact.p95_us.into(),
                pairs[1].1.into(),
                exact.p99_us.into(),
                pairs[2].1.into(),
            ]);
        }
    }
    table.emit();
    if failed {
        std::process::exit(1);
    }
    println!(
        "# histogram percentiles under-report by < 6.25% in every cell: the \
         telemetry layer reproduces the latency figure without raw samples"
    );
}
