//! Figure 11: imbalance on the real-world-like datasets (WP, TW, CT) as a
//! function of the number of workers, for PKG, D-C and W-C.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_core::PartitionerKind;
use slb_simulator::experiments::imbalance_vs_workers;
use slb_workloads::datasets::{Dataset, SyntheticDataset};

fn main() {
    let options = options_from_env();
    print_header("Figure 11", "Imbalance vs workers on WP, TW, CT", &options);

    let datasets = SyntheticDataset::real_world_suite(options.scale.dataset_scale(), options.seed);
    let schemes = [
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
    ];
    let workers = [5usize, 10, 20, 50, 100];
    let rows = imbalance_vs_workers(&datasets, &schemes, &workers);

    println!(
        "{:<8} {:<8} {:>8} {:>14} {:>14}",
        "dataset", "scheme", "workers", "I(m)", "mean I(t)"
    );
    let mut table = Table::new(
        "fig11_realworld",
        &[
            "dataset",
            "scheme",
            "workers",
            "imbalance",
            "mean_imbalance",
        ],
    );
    for row in &rows {
        println!(
            "{:<8} {:<8} {:>8} {:>14} {:>14}",
            row.dataset,
            row.scheme,
            row.workers,
            sci(row.imbalance),
            sci(row.mean_imbalance)
        );
        table.row([
            row.dataset.as_str().into(),
            row.scheme.as_str().into(),
            row.workers.into(),
            row.imbalance.into(),
            row.mean_imbalance.into(),
        ]);
    }
    table.emit();

    for ds in &datasets {
        let symbol = ds.stats().kind.symbol();
        for &n in &[50usize, 100] {
            let pkg = rows
                .iter()
                .find(|r| r.dataset == symbol && r.scheme == "PKG" && r.workers == n);
            let wc = rows
                .iter()
                .find(|r| r.dataset == symbol && r.scheme == "W-C" && r.workers == n);
            if let (Some(pkg), Some(wc)) = (pkg, wc) {
                println!(
                    "# {symbol} at n={n}: PKG {} vs W-C {}",
                    sci(pkg.imbalance),
                    sci(wc.imbalance)
                );
            }
        }
    }
}
