//! Figure 12: load imbalance over time for the real-world-like datasets.
//!
//! Replays WP-, TW- and CT-like streams under PKG, D-C and W-C, sampling the
//! imbalance at regular checkpoints. The cashtag dataset's concept drift is
//! visible as elevated and more variable imbalance, especially for PKG.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_simulator::experiments::{imbalance_over_time, ExperimentScale};
use slb_workloads::datasets::SyntheticDataset;

fn main() {
    let options = options_from_env();
    print_header("Figure 12", "Imbalance over time on TW, WP, CT", &options);

    let datasets = SyntheticDataset::real_world_suite(options.scale.dataset_scale(), options.seed);
    let worker_counts: Vec<usize> = match options.scale {
        ExperimentScale::Smoke => vec![5, 50],
        _ => vec![5, 10, 20, 50, 100],
    };
    let checkpoints = 20usize;
    let rows = imbalance_over_time(&datasets, &worker_counts, checkpoints);

    let mut table = Table::new(
        "fig12_time_series",
        &["dataset", "scheme", "workers", "messages", "imbalance"],
    );
    for row in &rows {
        println!(
            "series dataset={} scheme={} workers={}",
            row.dataset, row.scheme, row.workers
        );
        for (messages, imbalance) in &row.series {
            println!("  {:>12} {:>14}", messages, sci(*imbalance));
            table.row([
                row.dataset.as_str().into(),
                row.scheme.as_str().into(),
                row.workers.into(),
                (*messages).into(),
                (*imbalance).into(),
            ]);
        }
    }
    table.emit();

    // Stability summary: final vs. median imbalance per series.
    println!("# per-series summary (dataset, scheme, workers, median I, final I):");
    for row in &rows {
        let mut imbs: Vec<f64> = row.series.iter().map(|(_, i)| *i).collect();
        if imbs.is_empty() {
            continue;
        }
        imbs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = imbs[imbs.len() / 2];
        let last = row.series.last().map(|(_, i)| *i).unwrap_or(0.0);
        println!(
            "#   {:<4} {:<5} {:>4} {:>14} {:>14}",
            row.dataset,
            row.scheme,
            row.workers,
            sci(median),
            sci(last)
        );
    }
}
