//! Figure 8: per-worker load split between head and tail keys.
//!
//! Replays a Zipf(z = 2.0) workload with |K| = 10⁴ over n = 5 workers with
//! θ = 1/(8n), for PKG, W-C and RR, and prints each worker's load as the
//! percentage of total messages contributed by head keys and by tail keys.
//! The ideal per-worker share is 1/n = 20%.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header};
use slb_simulator::experiments::head_tail_load;

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 8",
        "Per-worker head/tail load split (n=5, z=2.0, θ=1/(8n))",
        &options,
    );

    let messages = options.scale.zipf_messages();
    let rows = head_tail_load(5, 10_000, messages, 2.0, options.seed);

    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12}",
        "scheme", "worker", "head (%)", "tail (%)", "total (%)"
    );
    let mut table = Table::new(
        "fig08_head_tail_load",
        &["scheme", "worker", "head_pct", "tail_pct"],
    );
    for row in &rows {
        println!(
            "{:<8} {:>8} {:>12.2} {:>12.2} {:>12.2}",
            row.scheme,
            row.worker,
            row.head_pct,
            row.tail_pct,
            row.head_pct + row.tail_pct
        );
        table.row([
            row.scheme.as_str().into(),
            row.worker.into(),
            row.head_pct.into(),
            row.tail_pct.into(),
        ]);
    }
    table.emit();
    println!("# ideal per-worker load: {:.2}%", 100.0 / 5.0);

    for scheme in ["PKG", "W-C", "RR"] {
        let max_total = rows
            .iter()
            .filter(|r| r.scheme == scheme)
            .map(|r| r.head_pct + r.tail_pct)
            .fold(0.0f64, f64::max);
        println!("# {scheme}: most loaded worker carries {max_total:.2}% of the stream");
    }
}
