//! Figure 7: load imbalance as a function of skew for each head threshold,
//! for W-Choices and Round-Robin.
//!
//! The paper sweeps θ from 2/n down to 1/(8n) by successive halving on a
//! Zipf workload with |K| = 10⁴ and m = 10⁷ messages, for n ∈ {5, 10, 50,
//! 100}. W-C achieves near-ideal balance for any θ ≤ 1/n, while RR degrades
//! at high skew and large scale despite the same memory cost.

use slb_bench::json::Table;
use slb_bench::{options_from_env, print_header, sci};
use slb_simulator::experiments::{threshold_sweep, ExperimentScale};

fn main() {
    let options = options_from_env();
    print_header(
        "Figure 7",
        "Imbalance vs skew per threshold, W-C and RR",
        &options,
    );

    let messages = options.scale.zipf_messages();
    let skews = options.scale.skew_sweep();
    let worker_counts: Vec<usize> = match options.scale {
        ExperimentScale::Smoke => vec![5, 50],
        _ => vec![5, 10, 50, 100],
    };
    let rows = threshold_sweep(&worker_counts, 10_000, messages, &skews, options.seed);

    println!(
        "{:<8} {:>10} {:>8} {:>6} {:>14}",
        "scheme", "threshold", "workers", "skew", "I(m)"
    );
    let mut table = Table::new(
        "fig07_threshold_sweep",
        &["scheme", "threshold", "workers", "skew", "imbalance"],
    );
    for row in &rows {
        println!(
            "{:<8} {:>10} {:>8} {:>6.1} {:>14}",
            row.scheme,
            row.threshold,
            row.workers,
            row.skew,
            sci(row.imbalance)
        );
        table.row([
            row.scheme.as_str().into(),
            row.threshold.as_str().into(),
            row.workers.into(),
            row.skew.into(),
            row.imbalance.into(),
        ]);
    }
    table.emit();

    // Summary the paper draws: for every setting, W-C at θ ≤ 1/n is at least
    // as balanced as RR at the same threshold.
    let mut wc_wins = 0usize;
    let mut comparisons = 0usize;
    for row in rows.iter().filter(|r| r.scheme == "W-C") {
        if let Some(rr) = rows.iter().find(|r| {
            r.scheme == "RR"
                && r.threshold == row.threshold
                && r.workers == row.workers
                && (r.skew - row.skew).abs() < 1e-9
        }) {
            comparisons += 1;
            if row.imbalance <= rr.imbalance + 1e-9 {
                wc_wins += 1;
            }
        }
    }
    println!("# W-C at least as balanced as RR in {wc_wins}/{comparisons} settings");
}
