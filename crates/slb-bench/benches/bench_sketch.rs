//! Criterion micro-benchmarks for the heavy-hitter substrate: SpaceSaving
//! and Misra-Gries update cost on a skewed stream, and the cost of merging
//! per-source summaries.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use slb_sketch::{merge::merge_space_saving, FrequencyEstimator, MisraGries, SpaceSaving};
use slb_workloads::zipf::ZipfGenerator;
use slb_workloads::KeyStream;

fn sketch_updates(c: &mut Criterion) {
    let messages = 100_000u64;
    let mut group = c.benchmark_group("sketch_update");
    // Each iteration streams 100k updates; small sample count keeps the
    // suite fast without hurting the signal for O(1)-per-update structures.
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(messages));
    for &capacity in &[100usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("space_saving", capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let mut ss = SpaceSaving::new(capacity);
                    let mut stream = ZipfGenerator::with_limit(100_000, 1.2, 3, messages);
                    while let Some(k) = KeyStream::next_key(&mut stream) {
                        ss.observe(black_box(&k));
                    }
                    black_box(ss.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("misra_gries", capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let mut mg = MisraGries::new(capacity);
                    let mut stream = ZipfGenerator::with_limit(100_000, 1.2, 3, messages);
                    while let Some(k) = KeyStream::next_key(&mut stream) {
                        mg.observe(black_box(&k));
                    }
                    black_box(mg.len())
                })
            },
        );
    }
    group.finish();
}

fn summary_merge(c: &mut Criterion) {
    let capacity = 500usize;
    let mut summaries = Vec::new();
    for s in 0..5u64 {
        let mut ss = SpaceSaving::new(capacity);
        let mut stream = ZipfGenerator::with_limit(50_000, 1.5, s, 100_000);
        while let Some(k) = KeyStream::next_key(&mut stream) {
            ss.observe(&k);
        }
        summaries.push(ss);
    }
    let refs: Vec<&SpaceSaving<u64>> = summaries.iter().collect();
    c.bench_function("merge_five_source_summaries", |b| {
        b.iter(|| black_box(merge_space_saving(black_box(&refs), capacity)))
    });
}

criterion_group!(benches, sketch_updates, summary_merge);
criterion_main!(benches);
