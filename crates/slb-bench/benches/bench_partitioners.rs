//! Criterion micro-benchmarks: per-tuple routing cost of each grouping
//! scheme.
//!
//! These complement the figure harnesses: the paper argues the head-aware
//! schemes add negligible per-message overhead (a SpaceSaving update plus,
//! for head keys, a few extra hash evaluations); this bench quantifies that
//! on a skewed stream.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use slb_core::{build_partitioner, PartitionConfig, PartitionerKind};
use slb_workloads::zipf::ZipfGenerator;
use slb_workloads::KeyStream;

fn routing_cost(c: &mut Criterion) {
    let workers = 50;
    let messages = 50_000u64;
    let mut group = c.benchmark_group("route_per_tuple");
    // Each iteration replays 50k messages; keep the sample count small so the
    // whole suite stays in CI-friendly territory.
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(messages));
    for kind in PartitionerKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("scheme", kind.symbol()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let cfg = PartitionConfig::new(workers).with_seed(7);
                    let mut p = build_partitioner::<u64>(kind, &cfg);
                    let mut stream = ZipfGenerator::with_limit(10_000, 1.6, 7, messages);
                    let mut acc = 0usize;
                    while let Some(k) = KeyStream::next_key(&mut stream) {
                        acc += p.route(black_box(&k));
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

/// Scalar `route` versus `route_batch` over the same pre-generated stream,
/// per scheme. Unlike `route_per_tuple` (which regenerates the Zipf stream
/// inside the measured loop), both sides here route an in-memory key vector,
/// so the pair isolates the batch API's dispatch/locality win and proves the
/// head-key candidate cache pays for itself on skewed traffic.
fn routing_batch_vs_scalar(c: &mut Criterion) {
    let workers = 50;
    let messages = 50_000u64;
    let keys: Vec<u64> = {
        let mut stream = ZipfGenerator::with_limit(10_000, 1.6, 7, messages);
        let mut v = Vec::with_capacity(messages as usize);
        while let Some(k) = KeyStream::next_key(&mut stream) {
            v.push(k);
        }
        v
    };
    let mut group = c.benchmark_group("route_batch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(messages));
    for kind in PartitionerKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("scalar", kind.symbol()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let cfg = PartitionConfig::new(workers).with_seed(7);
                    let mut p = build_partitioner::<u64>(kind, &cfg);
                    let mut acc = 0usize;
                    for k in &keys {
                        acc += p.route(black_box(k));
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch256", kind.symbol()),
            &kind,
            |b, &kind| {
                let mut out = Vec::with_capacity(256);
                b.iter(|| {
                    let cfg = PartitionConfig::new(workers).with_seed(7);
                    let mut p = build_partitioner::<u64>(kind, &cfg);
                    let mut acc = 0usize;
                    for chunk in keys.chunks(256) {
                        p.route_batch(black_box(chunk), &mut out);
                        acc += out.iter().sum::<usize>();
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn solver_cost(c: &mut Criterion) {
    use slb_core::find_optimal_choices;
    use slb_workloads::zipf::ZipfDistribution;

    let mut group = c.benchmark_group("find_optimal_choices");
    for &(n, z) in &[(50usize, 1.4f64), (100, 2.0)] {
        let dist = ZipfDistribution::new(10_000, z);
        let theta = 1.0 / (5.0 * n as f64);
        let head: Vec<f64> = dist
            .probabilities()
            .iter()
            .copied()
            .take_while(|&p| p >= theta)
            .collect();
        let tail = 1.0 - head.iter().sum::<f64>();
        group.bench_with_input(
            BenchmarkId::new("n_z", format!("n{n}_z{z}")),
            &(head, tail, n),
            |b, (head, tail, n)| b.iter(|| find_optimal_choices(black_box(head), *tail, *n, 1e-4)),
        );
    }
    group.finish();
}

criterion_group!(benches, routing_cost, routing_batch_vs_scalar, solver_cost);
criterion_main!(benches);
