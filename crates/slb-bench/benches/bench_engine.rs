//! Criterion end-to-end bench: throughput of the mini-DSPE under each
//! grouping scheme at a small scale (the micro counterpart of Figure 13).
//!
//! Two groups:
//! * `engine_end_to_end` — the saturated-worker configuration (25 µs of
//!   emulated work per tuple), where the grouping scheme decides who
//!   saturates first. Kept identical to the PR-1 baseline for continuity.
//! * `engine_zero_service` — no per-tuple work, so the measurement isolates
//!   the transport hot path itself (routing, batching, channels, state
//!   updates). This is the number the batched-transport refactor moves and
//!   the CI perf smoke guards.
//!
//! Keep the per-iteration work small: Criterion repeats each measurement
//! many times and a full-size topology per iteration would take minutes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use slb_core::PartitionerKind;
use slb_engine::{EngineConfig, Topology};

fn engine_throughput(c: &mut Criterion) {
    let messages = 20_000u64;
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(messages));
    for kind in [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::ShuffleGrouping,
    ] {
        group.bench_with_input(
            BenchmarkId::new("scheme", kind.symbol()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let cfg = EngineConfig::smoke(kind, 2.0).with_messages(messages);
                    let result = Topology::new(cfg).run();
                    black_box(result.processed)
                })
            },
        );
    }
    group.finish();
}

fn engine_zero_service(c: &mut Criterion) {
    let messages = 100_000u64;
    let mut group = c.benchmark_group("engine_zero_service");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(messages));
    for kind in [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::ShuffleGrouping,
    ] {
        group.bench_with_input(
            BenchmarkId::new("scheme", kind.symbol()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let cfg = EngineConfig::smoke(kind, 2.0)
                        .with_messages(messages)
                        .with_service_time_us(0);
                    let result = Topology::new(cfg).run();
                    black_box(result.processed)
                })
            },
        );
    }
    // Batch-size sweep for one scheme: batch 1 is the old tuple-at-a-time
    // transport, so this row quantifies the batching win in isolation.
    for batch in [1usize, 16, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("pkg_batch", batch), &batch, |b, &batch| {
            b.iter(|| {
                let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 2.0)
                    .with_messages(messages)
                    .with_service_time_us(0)
                    .with_batch_size(batch);
                let result = Topology::new(cfg).run();
                black_box(result.processed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine_throughput, engine_zero_service);
criterion_main!(benches);
