//! Criterion end-to-end bench: throughput of the mini-DSPE under each
//! grouping scheme at a small scale (the micro counterpart of Figure 13).
//!
//! Keep the per-iteration work small: Criterion repeats each measurement
//! many times and a full-size topology per iteration would take minutes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use slb_core::PartitionerKind;
use slb_engine::{EngineConfig, Topology};

fn engine_throughput(c: &mut Criterion) {
    let messages = 20_000u64;
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(messages));
    for kind in [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::ShuffleGrouping,
    ] {
        group.bench_with_input(
            BenchmarkId::new("scheme", kind.symbol()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let cfg = EngineConfig::smoke(kind, 2.0).with_messages(messages);
                    let result = Topology::new(cfg).run();
                    black_box(result.processed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
