//! Criterion bench for the analytic machinery behind D-Choices: evaluating
//! the expected worker-set size b_h and checking the full set of prefix
//! constraints of Eqn. 3 (the work FINDOPTIMALCHOICES performs per candidate
//! d). Supports the Appendix A / Section IV-A reproduction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use slb_core::{constraints_hold, expected_worker_set_size};
use slb_workloads::zipf::ZipfDistribution;

fn worker_set_size(c: &mut Criterion) {
    c.bench_function("expected_worker_set_size", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for h in 1..=64usize {
                for d in 2..=32usize {
                    acc += expected_worker_set_size(black_box(100), h, d);
                }
            }
            black_box(acc)
        })
    });
}

fn constraint_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("eqn3_constraints");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &z in &[1.0f64, 2.0] {
        let dist = ZipfDistribution::new(10_000, z);
        let n = 100usize;
        let theta = 1.0 / (5.0 * n as f64);
        let head: Vec<f64> = dist
            .probabilities()
            .iter()
            .copied()
            .take_while(|&p| p >= theta)
            .collect();
        let tail = 1.0 - head.iter().sum::<f64>();
        group.bench_with_input(BenchmarkId::new("z", format!("{z}")), &z, |b, _| {
            b.iter(|| {
                let mut feasible = 0usize;
                for d in 2..=n {
                    if constraints_hold(black_box(&head), tail, n, d, 1e-4) {
                        feasible += 1;
                    }
                }
                black_box(feasible)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, worker_set_size, constraint_check);
criterion_main!(benches);
