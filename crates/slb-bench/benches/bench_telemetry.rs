//! Criterion benches for the telemetry layer: the primitives themselves
//! (histogram record/merge/quantile) and the end-to-end cost of leaving
//! telemetry on (instrumented vs baseline topology runs — the micro
//! counterpart of the CI perf smoke's telemetry gate).
//!
//! The primitive numbers bound what the hot path pays per call: a histogram
//! record is a few arithmetic ops and one array increment, a merge is a
//! fixed 1-KiB-ish array walk, and neither allocates. The end-to-end pair
//! shows the aggregate cost at per-batch granularity.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{EngineConfig, Topology};
use slb_telemetry::{HopTelemetry, LogHistogram};

fn telemetry_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");

    // One histogram record per iteration, over a value sweep wide enough to
    // touch many buckets (the bucket index is a function of the value).
    group.throughput(Throughput::Elements(1));
    group.bench_function("histogram_record", |b| {
        let mut hist = LogHistogram::new();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            hist.record(black_box(x >> 32));
        });
        black_box(hist.count());
    });

    // Merging two fully populated histograms: the per-snapshot and
    // per-report rollup cost. Fixed-size, allocation-free.
    let mut a = LogHistogram::new();
    let mut b_hist = LogHistogram::new();
    for i in 0..100_000u64 {
        a.record(i.wrapping_mul(2_654_435_761));
        b_hist.record(i.wrapping_mul(11_400_714_819_323_198_485));
    }
    group.bench_function("histogram_merge", |bencher| {
        bencher.iter(|| {
            let mut merged = a.clone();
            merged.merge(black_box(&b_hist));
            black_box(merged.count())
        })
    });
    group.bench_function("histogram_quantile_p99", |bencher| {
        bencher.iter(|| black_box(a.quantile(black_box(0.99))))
    });

    // The per-batch hop-telemetry update a live sender performs: two
    // counter adds and one occupancy record.
    group.bench_function("hop_record_batch", |bencher| {
        let hop = HopTelemetry::default();
        bencher.iter(|| {
            let n = black_box(256u64);
            hop.batches_sent.add(1);
            hop.tuples_sent.add(n);
            hop.batch_occupancy.record(n);
        });
        black_box(hop.snapshot());
    });
    group.finish();
}

fn telemetry_end_to_end(c: &mut Criterion) {
    let messages = 100_000u64;
    let mut group = c.benchmark_group("telemetry_end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(messages));
    for (label, telemetry) in [("instrumented", true), ("baseline", false)] {
        group.bench_with_input(
            BenchmarkId::new("windowed", label),
            &telemetry,
            |b, &telemetry| {
                b.iter(|| {
                    let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 2.0)
                        .with_messages(messages)
                        .with_service_time_us(0);
                    let topo = Topology::new(cfg);
                    let run = if telemetry {
                        topo.run_windowed(CountAggregate)
                    } else {
                        topo.run_windowed_without_telemetry(CountAggregate)
                    };
                    black_box(run.result.processed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, telemetry_primitives, telemetry_end_to_end);
criterion_main!(benches);
