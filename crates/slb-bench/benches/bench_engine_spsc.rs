//! Criterion bench for the thread-per-core SPSC transport, head-to-head
//! against the lock-based in-process backend on identical configurations.
//!
//! Three groups:
//! * `engine_backend_ab` — the zero-service hot path over `InProc` and
//!   `Spsc` at the same batch size: the headline A/B the transport exists
//!   for. Routing, windowing, and aggregation are byte-identical across
//!   the pair (the differential suite proves it), so any delta is pure
//!   transport: lock/wakeup cost vs ring stores plus recycling.
//! * `spsc_batch_sweep` — the SPSC backend across batch sizes. Batch 1
//!   maximizes ring crossings per tuple and shows the per-message floor;
//!   large batches amortize toward the routing ceiling.
//! * `spsc_schemes` — the paper's grouping schemes over SPSC, mirroring
//!   `engine_zero_service` in `bench_engine.rs` so the two backends'
//!   scheme profiles can be compared run-to-run.
//!
//! Keep the per-iteration work small: Criterion repeats each measurement
//! many times and a full-size topology per iteration would take minutes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{EngineConfig, InProc, Spsc, Topology};

fn zero_service_cfg(kind: PartitionerKind, messages: u64) -> EngineConfig {
    EngineConfig::smoke(kind, 2.0)
        .with_messages(messages)
        .with_service_time_us(0)
}

fn backend_ab(c: &mut Criterion) {
    let messages = 100_000u64;
    let mut group = c.benchmark_group("engine_backend_ab");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(messages));
    group.bench_function("inproc", |b| {
        b.iter(|| {
            let cfg = zero_service_cfg(PartitionerKind::Pkg, messages);
            let run = Topology::new(cfg).run_windowed_on(CountAggregate, &InProc);
            black_box(run.result.processed)
        })
    });
    group.bench_function("spsc", |b| {
        b.iter(|| {
            let cfg = zero_service_cfg(PartitionerKind::Pkg, messages);
            let run = Topology::new(cfg).run_windowed_on(CountAggregate, &Spsc);
            black_box(run.result.processed)
        })
    });
    group.finish();
}

fn spsc_batch_sweep(c: &mut Criterion) {
    let messages = 100_000u64;
    let mut group = c.benchmark_group("spsc_batch_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(messages));
    for batch in [1usize, 16, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| {
                let cfg = zero_service_cfg(PartitionerKind::Pkg, messages).with_batch_size(batch);
                let run = Topology::new(cfg).run_windowed_on(CountAggregate, &Spsc);
                black_box(run.result.processed)
            })
        });
    }
    group.finish();
}

fn spsc_schemes(c: &mut Criterion) {
    let messages = 100_000u64;
    let mut group = c.benchmark_group("spsc_schemes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(messages));
    for kind in [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::ShuffleGrouping,
    ] {
        group.bench_with_input(
            BenchmarkId::new("scheme", kind.symbol()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let cfg = zero_service_cfg(kind, messages);
                    let run = Topology::new(cfg).run_windowed_on(CountAggregate, &Spsc);
                    black_box(run.result.processed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, backend_ab, spsc_batch_sweep, spsc_schemes);
criterion_main!(benches);
