//! Criterion micro-benchmarks for the hashing substrate: raw digest
//! throughput and the cost of producing d candidate workers per key.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use slb_hash::{murmur::murmur3_64, xxhash::xxhash64, HashFamily};

fn digest_throughput(c: &mut Criterion) {
    let keys: Vec<String> = (0..1_000)
        .map(|i| format!("entity/{i}/page-{}", i * 31))
        .collect();
    let total_bytes: u64 = keys.iter().map(|k| k.len() as u64).sum();
    let mut group = c.benchmark_group("digest");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("xxhash64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc ^= xxhash64(black_box(k.as_bytes()), 7);
            }
            black_box(acc)
        })
    });
    group.bench_function("murmur3_64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc ^= murmur3_64(black_box(k.as_bytes()), 7);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn candidate_generation(c: &mut Criterion) {
    let family = HashFamily::new(3, 100, 100);
    let mut group = c.benchmark_group("candidates_per_key");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &d in &[2usize, 5, 20, 100] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let mut out = Vec::with_capacity(d);
            b.iter(|| {
                for key in 0..1_000u64 {
                    family.choices_into(black_box(&key), d, &mut out);
                    black_box(&out);
                }
            })
        });
    }
    group.finish();
}

/// Candidate generation for string keys: with digest-then-derive the key
/// bytes are hashed once and each extra choice costs one SplitMix64 round,
/// so the d=100 row is barely more expensive than d=2 plus 98 mixes —
/// compare with the per-seed rehash this replaced, where cost was d full
/// passes over the key bytes.
fn candidate_generation_string_keys(c: &mut Criterion) {
    let family = HashFamily::new(3, 100, 100);
    let keys: Vec<String> = (0..1_000)
        .map(|i| format!("entity/{i}/page-{}", i * 31))
        .collect();
    let mut group = c.benchmark_group("candidates_per_key_str");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &d in &[2usize, 5, 20, 100] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let mut out = Vec::with_capacity(d);
            b.iter(|| {
                for key in &keys {
                    family.choices_into(black_box(key), d, &mut out);
                    black_box(&out);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    digest_throughput,
    candidate_generation,
    candidate_generation_string_keys
);
criterion_main!(benches);
