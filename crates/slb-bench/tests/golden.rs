//! Golden smoke tests for the experiment binaries.
//!
//! `ci.sh` used to be the only thing running the `expt_*` binaries, and it
//! only checked exit codes. These tests run every binary at `--scale smoke`
//! inside `cargo test` and additionally assert the *scheme-ordering
//! invariants* the paper's figures rest on — the orderings that are
//! deterministic at a fixed seed (imbalance and replica counts come from
//! deterministic routing; wall-clock throughput and latency orderings are
//! noisy on loaded machines and are deliberately not asserted).
//!
//! The binaries are invoked through `CARGO_BIN_EXE_*`, so cargo builds them
//! as part of the test target and no nested cargo lock is taken.

use std::collections::HashMap;
use std::process::Command;

/// Runs one experiment binary at smoke scale and returns its stdout.
fn run_smoke(exe: &str) -> String {
    let output = Command::new(exe)
        .args(["--scale", "smoke"])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8(output.stdout).expect("experiment output is UTF-8");
    assert!(
        stdout.starts_with("== "),
        "{exe}: missing the experiment header, got:\n{stdout}"
    );
    assert!(
        stdout.lines().count() >= 4,
        "{exe}: suspiciously short output:\n{stdout}"
    );
    stdout
}

/// Basic golden check for binaries whose output has no deterministic
/// ordering to pin (latency/throughput tables, dataset listings).
macro_rules! golden_smoke {
    ($($name:ident),+ $(,)?) => {$(
        #[test]
        fn $name() {
            let _ = run_smoke(env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
        }
    )+};
}

golden_smoke!(
    expt_table1_datasets,
    expt_fig01_wp_scale,
    expt_fig03_head_cardinality,
    expt_fig04_d_fraction,
    expt_fig06_memory_vs_sg,
    expt_fig07_threshold_sweep,
    expt_fig08_head_tail_load,
    expt_fig09_d_vs_optimal,
    expt_fig11_realworld,
    expt_fig12_time_series,
    expt_fig14_latency,
    expt_ablation_sensitivity,
);

/// Parses whitespace-separated data rows that follow the header line
/// starting with `header`, returning one Vec of columns per row (rows end
/// at the first `#`-prefixed footer line).
fn table_rows_after(stdout: &str, header: &str) -> Vec<Vec<String>> {
    stdout
        .lines()
        .skip_while(|l| !l.trim_start().starts_with(header))
        .skip(1)
        .take_while(|l| !l.trim_start().starts_with('#'))
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split_whitespace().map(str::to_string).collect())
        .collect()
}

/// Most experiment tables lead with a `scheme` column.
fn table_rows(stdout: &str) -> Vec<Vec<String>> {
    table_rows_after(stdout, "scheme")
}

#[test]
fn expt_fig13_throughput_preserves_imbalance_ordering() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_fig13_throughput"));
    // Columns: scheme skew throughput imbalance elapsed.
    let mut imbalance: HashMap<(String, String), f64> = HashMap::new();
    for row in table_rows(&stdout) {
        assert_eq!(row.len(), 5, "unexpected fig13 row: {row:?}");
        let value: f64 = row[3].parse().expect("imbalance parses");
        assert!(value >= 0.0);
        let throughput: f64 = row[2].parse().expect("throughput parses");
        assert!(throughput > 0.0, "zero throughput in {row:?}");
        imbalance.insert((row[0].clone(), row[1].clone()), value);
    }
    let get = |scheme: &str, skew: &str| {
        *imbalance
            .get(&(scheme.to_string(), skew.to_string()))
            .unwrap_or_else(|| panic!("missing {scheme} at z={skew}"))
    };
    // The paper's ordering at extreme skew: key splitting beats key
    // grouping, and the head-aware schemes do not lose to plain PKG.
    assert!(
        get("PKG", "2.0") <= get("KG", "2.0"),
        "PKG should balance better than KG at z=2.0"
    );
    assert!(
        get("W-C", "2.0") <= get("PKG", "2.0") + 1e-9,
        "W-C should not lose to PKG at z=2.0"
    );
    assert!(
        get("D-C", "2.0") <= get("KG", "2.0"),
        "D-C should balance better than KG at z=2.0"
    );
}

#[test]
fn expt_fig10_zipf_grid_w_choices_wins_the_hardest_cell() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_fig10_zipf_grid"));
    // Columns: scheme keys workers skew I(m) mean-I(t), in sci notation.
    let rows = table_rows(&stdout);
    assert!(!rows.is_empty(), "fig10 table empty");
    let imbalance = |scheme: &str, workers: &str, skew: &str| -> f64 {
        rows.iter()
            .find(|r| r[0] == scheme && r[2] == workers && r[3] == skew)
            .unwrap_or_else(|| panic!("missing {scheme} n={workers} z={skew}"))[4]
            .parse()
            .expect("sci-notation imbalance parses")
    };
    // Hardest smoke-scale cell: n=50, z=2.0. W-C must not lose to PKG, and
    // the head-aware schemes must stay sane (finite, non-negative).
    let wc = imbalance("W-C", "50", "2.0");
    let pkg = imbalance("PKG", "50", "2.0");
    assert!(
        wc <= pkg + 1e-12,
        "W-C {wc} vs PKG {pkg} at the hardest cell"
    );
    for r in &rows {
        let value: f64 = r[4].parse().expect("imbalance parses");
        assert!(value.is_finite() && value >= 0.0, "bad imbalance in {r:?}");
    }
}

#[test]
fn expt_fig05_memory_overhead_is_bounded_and_ordered() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_fig05_memory_vs_pkg"));
    // Columns: skew workers scheme vs-PKG-%. This table's header starts
    // with `skew`, not `scheme`.
    let rows = table_rows_after(&stdout, "skew");
    assert!(!rows.is_empty(), "fig05 table empty");
    for row in &rows {
        assert_eq!(row.len(), 4, "unexpected fig05 row: {row:?}");
        let pct: f64 = row[3].parse().expect("overhead parses");
        // The paper reports worst cases around 25-30%; anything beyond 100%
        // would mean the replica model broke.
        assert!(
            (-100.0..=100.0).contains(&pct),
            "memory overhead {pct}% out of the plausible band in {row:?}"
        );
    }
}

/// Shared checker for the scenario bins' tables: collects imbalance by
/// `(scheme, phase)` from a table whose first two columns are scheme and
/// phase, with the imbalance in `column` (sci notation).
fn scenario_imbalances(stdout: &str, column: usize) -> HashMap<(String, String), f64> {
    let mut out = HashMap::new();
    for row in table_rows(stdout) {
        let value: f64 = row[column].parse().expect("sci-notation imbalance parses");
        assert!(
            value.is_finite() && value >= 0.0,
            "bad imbalance in {row:?}"
        );
        out.insert((row[0].clone(), row[1].clone()), value);
    }
    out
}

fn lookup(map: &HashMap<(String, String), f64>, scheme: &str, phase: &str) -> f64 {
    *map.get(&(scheme.to_string(), phase.to_string()))
        .unwrap_or_else(|| panic!("missing {scheme} phase {phase}"))
}

#[test]
fn expt_scenarios_drift_orders_schemes_per_phase() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_scenarios_drift"));
    // Columns: scheme phase skew drift workers imbalance.
    let imb = scenario_imbalances(&stdout, 5);
    // Skewed phases (0: static z=2.0, 2: drifting z=1.4): key splitting
    // beats key grouping, and the head-aware schemes do not lose to PKG.
    for phase in ["0", "2"] {
        let kg = lookup(&imb, "KG", phase);
        assert!(
            lookup(&imb, "PKG", phase) <= kg,
            "PKG vs KG in phase {phase}"
        );
        assert!(
            lookup(&imb, "D-C", phase) <= kg,
            "D-C vs KG in phase {phase}"
        );
        assert!(
            lookup(&imb, "W-C", phase) <= lookup(&imb, "PKG", phase) + 1e-9,
            "W-C vs PKG in phase {phase}"
        );
    }
    // Uniform phase: every scheme converges to near-perfect balance.
    let uniform: Vec<f64> = ["KG", "PKG", "D-C", "W-C", "RR", "SG"]
        .iter()
        .map(|s| lookup(&imb, s, "1"))
        .collect();
    for (i, v) in uniform.iter().enumerate() {
        assert!(*v < 0.05, "scheme #{i} did not converge under uniform: {v}");
    }
    let spread = uniform.iter().cloned().fold(f64::MIN, f64::max)
        - uniform.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.05, "uniform-phase spread {spread}");
}

#[test]
fn expt_scenarios_hetero_surfaces_slow_workers_in_the_weighted_metric() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_scenarios_hetero"));
    // Columns: scheme phase skew speeds imbalance weighted-I.
    let plain = scenario_imbalances(&stdout, 4);
    let weighted = scenario_imbalances(&stdout, 5);
    // Skewed phases order as the paper predicts on routed counts.
    for phase in ["0", "1"] {
        let kg = lookup(&plain, "KG", phase);
        assert!(
            lookup(&plain, "PKG", phase) <= kg,
            "PKG vs KG in phase {phase}"
        );
        assert!(
            lookup(&plain, "W-C", phase) <= lookup(&plain, "PKG", phase) + 1e-9,
            "W-C vs PKG in phase {phase}"
        );
    }
    // SG balances counts perfectly, so the 2×-slow worker of phase 1 can
    // only appear in the weighted metric.
    let sg_plain = lookup(&plain, "SG", "1");
    let sg_weighted = lookup(&weighted, "SG", "1");
    assert!(sg_plain < 0.01, "SG routed imbalance {sg_plain}");
    assert!(
        sg_weighted > sg_plain + 0.05,
        "weighted {sg_weighted} must expose the slow worker over plain {sg_plain}"
    );
    // Homogeneous phase: the two metrics agree for every scheme.
    for scheme in ["KG", "PKG", "D-C", "W-C", "RR", "SG"] {
        let p = lookup(&plain, scheme, "0");
        let w = lookup(&weighted, scheme, "0");
        assert!(
            (p - w).abs() < 1e-9,
            "{scheme}: homogeneous metrics diverged"
        );
    }
}

#[test]
fn expt_scenarios_scaleout_keeps_orderings_and_matches_the_exact_reference() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_scenarios_scaleout"));
    // Columns: scheme phase skew workers imbalance weighted-I.
    let imb = scenario_imbalances(&stdout, 4);
    // Skewed phases — including phase 2, which runs on the scaled-out
    // worker set — order as the paper predicts.
    for phase in ["0", "2"] {
        let kg = lookup(&imb, "KG", phase);
        assert!(
            lookup(&imb, "PKG", phase) <= kg,
            "PKG vs KG in phase {phase}"
        );
        assert!(
            lookup(&imb, "D-C", phase) <= kg,
            "D-C vs KG in phase {phase}"
        );
        assert!(
            lookup(&imb, "W-C", phase) <= lookup(&imb, "PKG", phase) + 1e-9,
            "W-C vs PKG in phase {phase}"
        );
    }
    // Scale-in onto the uniform tail: everything converges.
    for scheme in ["KG", "PKG", "D-C", "W-C", "RR", "SG"] {
        let v = lookup(&imb, scheme, "3");
        assert!(v < 0.05, "{scheme} did not converge after scale-in: {v}");
    }
    // The threaded engine's merged windowed counts matched the exact
    // single-threaded reference across the resizes.
    assert!(
        stdout.contains("exact-reference=MATCH"),
        "engine run diverged from the exact reference:\n{stdout}"
    );
}

#[test]
fn expt_elasticity_controller_acts_where_it_can() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_elasticity"));
    // Columns: scheme static_imb online_imb out in retune workers.
    let mut retunes = Vec::new();
    for line in stdout.lines().skip(4) {
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() != 7 || line.starts_with('#') {
            continue;
        }
        let scheme = cols[0];
        let outs: u64 = cols[3]
            .parse()
            .unwrap_or_else(|_| panic!("bad row: {line}"));
        let retune: u64 = cols[5].parse().expect("retune column");
        let used: u64 = cols[6].parse().expect("workers column");
        // Only D-Choices exposes a head snapshot, so only it can retune.
        if scheme != "D-C" {
            assert_eq!(retune, 0, "{scheme} retuned without a head snapshot");
        }
        retunes.push((scheme.to_string(), outs, retune));
        assert!(
            (1..=8).contains(&used),
            "{scheme}: {used} used workers escaped the controller's universe"
        );
    }
    assert_eq!(retunes.len(), 6, "expected one row per scheme:\n{stdout}");
    let dc = retunes
        .iter()
        .find(|(s, _, _)| s == "D-C")
        .expect("D-C row");
    // The drift preset must actually exercise both levers for D-Choices.
    assert!(dc.1 > 0, "no scale-out under drift pressure:\n{stdout}");
    assert!(dc.2 > 0, "no retune across drift epochs:\n{stdout}");
}

#[test]
fn expt_fig15_aggregation_accounting_is_exact() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_fig15_aggregation_cost"));
    // Columns: scheme window shards tuples/s windows partials p50 p99.
    let rows = table_rows(&stdout);
    assert!(!rows.is_empty(), "fig15 table empty");
    // The binary runs the smoke engine topology; read its worker count
    // rather than hardcoding it.
    let workers =
        slb_engine::EngineConfig::smoke(slb_core::PartitionerKind::Pkg, 2.0).workers as u64;
    for row in &rows {
        assert_eq!(row.len(), 8, "unexpected fig15 row: {row:?}");
        let shards: u64 = row[2].parse().expect("shards parse");
        let windows: u64 = row[4].parse().expect("windows parse");
        let partials: u64 = row[5].parse().expect("partials parse");
        assert!(windows > 0, "no windows finalized in {row:?}");
        assert_eq!(
            partials,
            windows * workers * shards,
            "every worker must ship one partial per window per shard: {row:?}"
        );
        let throughput: f64 = row[3].parse().expect("throughput parses");
        assert!(throughput > 0.0);
    }
}

#[test]
fn expt_binaries_emit_json_via_the_env_hook() {
    // The SLB_BENCH_JSON_DIR hook must mirror a binary's printed rows into
    // EXPT_<experiment>.json. One cheap solver-only binary stands in for
    // the fleet — every binary goes through the same `json::Table::emit`.
    let dir = std::env::temp_dir().join(format!("slb-golden-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create json dir");
    let output = Command::new(env!("CARGO_BIN_EXE_expt_fig04_d_fraction"))
        .args(["--scale", "smoke"])
        .env("SLB_BENCH_JSON_DIR", &dir)
        .output()
        .expect("spawn expt_fig04_d_fraction");
    assert!(output.status.success());
    let body =
        std::fs::read_to_string(dir.join("EXPT_fig04_d_fraction.json")).expect("JSON file written");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        body.starts_with("{\"experiment\":\"fig04_d_fraction\""),
        "unexpected JSON head: {body}"
    );
    assert!(
        body.contains("\"columns\":[\"skew\",\"workers\",\"d\",\"fraction\"]"),
        "missing column list: {body}"
    );
    // Row objects are keyed by column name; the printed table is non-empty.
    assert!(body.contains("\"rows\":[{\"skew\":"), "no rows: {body}");

    // The JSON mirror is additive: the human-readable table still prints.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("d/n"), "table still printed:\n{stdout}");
}
