//! Golden smoke tests for the experiment binaries.
//!
//! `ci.sh` used to be the only thing running the `expt_*` binaries, and it
//! only checked exit codes. These tests run every binary at `--scale smoke`
//! inside `cargo test` and additionally assert the *scheme-ordering
//! invariants* the paper's figures rest on — the orderings that are
//! deterministic at a fixed seed (imbalance and replica counts come from
//! deterministic routing; wall-clock throughput and latency orderings are
//! noisy on loaded machines and are deliberately not asserted).
//!
//! The binaries are invoked through `CARGO_BIN_EXE_*`, so cargo builds them
//! as part of the test target and no nested cargo lock is taken.

use std::collections::HashMap;
use std::process::Command;

/// Runs one experiment binary at smoke scale and returns its stdout.
fn run_smoke(exe: &str) -> String {
    let output = Command::new(exe)
        .args(["--scale", "smoke"])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8(output.stdout).expect("experiment output is UTF-8");
    assert!(
        stdout.starts_with("== "),
        "{exe}: missing the experiment header, got:\n{stdout}"
    );
    assert!(
        stdout.lines().count() >= 4,
        "{exe}: suspiciously short output:\n{stdout}"
    );
    stdout
}

/// Basic golden check for binaries whose output has no deterministic
/// ordering to pin (latency/throughput tables, dataset listings).
macro_rules! golden_smoke {
    ($($name:ident),+ $(,)?) => {$(
        #[test]
        fn $name() {
            let _ = run_smoke(env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
        }
    )+};
}

golden_smoke!(
    expt_table1_datasets,
    expt_fig01_wp_scale,
    expt_fig03_head_cardinality,
    expt_fig04_d_fraction,
    expt_fig06_memory_vs_sg,
    expt_fig07_threshold_sweep,
    expt_fig08_head_tail_load,
    expt_fig09_d_vs_optimal,
    expt_fig11_realworld,
    expt_fig12_time_series,
    expt_fig14_latency,
    expt_ablation_sensitivity,
);

/// Parses whitespace-separated data rows that follow the header line
/// starting with `header`, returning one Vec of columns per row (rows end
/// at the first `#`-prefixed footer line).
fn table_rows_after(stdout: &str, header: &str) -> Vec<Vec<String>> {
    stdout
        .lines()
        .skip_while(|l| !l.trim_start().starts_with(header))
        .skip(1)
        .take_while(|l| !l.trim_start().starts_with('#'))
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split_whitespace().map(str::to_string).collect())
        .collect()
}

/// Most experiment tables lead with a `scheme` column.
fn table_rows(stdout: &str) -> Vec<Vec<String>> {
    table_rows_after(stdout, "scheme")
}

#[test]
fn expt_fig13_throughput_preserves_imbalance_ordering() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_fig13_throughput"));
    // Columns: scheme skew throughput imbalance elapsed.
    let mut imbalance: HashMap<(String, String), f64> = HashMap::new();
    for row in table_rows(&stdout) {
        assert_eq!(row.len(), 5, "unexpected fig13 row: {row:?}");
        let value: f64 = row[3].parse().expect("imbalance parses");
        assert!(value >= 0.0);
        let throughput: f64 = row[2].parse().expect("throughput parses");
        assert!(throughput > 0.0, "zero throughput in {row:?}");
        imbalance.insert((row[0].clone(), row[1].clone()), value);
    }
    let get = |scheme: &str, skew: &str| {
        *imbalance
            .get(&(scheme.to_string(), skew.to_string()))
            .unwrap_or_else(|| panic!("missing {scheme} at z={skew}"))
    };
    // The paper's ordering at extreme skew: key splitting beats key
    // grouping, and the head-aware schemes do not lose to plain PKG.
    assert!(
        get("PKG", "2.0") <= get("KG", "2.0"),
        "PKG should balance better than KG at z=2.0"
    );
    assert!(
        get("W-C", "2.0") <= get("PKG", "2.0") + 1e-9,
        "W-C should not lose to PKG at z=2.0"
    );
    assert!(
        get("D-C", "2.0") <= get("KG", "2.0"),
        "D-C should balance better than KG at z=2.0"
    );
}

#[test]
fn expt_fig10_zipf_grid_w_choices_wins_the_hardest_cell() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_fig10_zipf_grid"));
    // Columns: scheme keys workers skew I(m) mean-I(t), in sci notation.
    let rows = table_rows(&stdout);
    assert!(!rows.is_empty(), "fig10 table empty");
    let imbalance = |scheme: &str, workers: &str, skew: &str| -> f64 {
        rows.iter()
            .find(|r| r[0] == scheme && r[2] == workers && r[3] == skew)
            .unwrap_or_else(|| panic!("missing {scheme} n={workers} z={skew}"))[4]
            .parse()
            .expect("sci-notation imbalance parses")
    };
    // Hardest smoke-scale cell: n=50, z=2.0. W-C must not lose to PKG, and
    // the head-aware schemes must stay sane (finite, non-negative).
    let wc = imbalance("W-C", "50", "2.0");
    let pkg = imbalance("PKG", "50", "2.0");
    assert!(
        wc <= pkg + 1e-12,
        "W-C {wc} vs PKG {pkg} at the hardest cell"
    );
    for r in &rows {
        let value: f64 = r[4].parse().expect("imbalance parses");
        assert!(value.is_finite() && value >= 0.0, "bad imbalance in {r:?}");
    }
}

#[test]
fn expt_fig05_memory_overhead_is_bounded_and_ordered() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_fig05_memory_vs_pkg"));
    // Columns: skew workers scheme vs-PKG-%. This table's header starts
    // with `skew`, not `scheme`.
    let rows = table_rows_after(&stdout, "skew");
    assert!(!rows.is_empty(), "fig05 table empty");
    for row in &rows {
        assert_eq!(row.len(), 4, "unexpected fig05 row: {row:?}");
        let pct: f64 = row[3].parse().expect("overhead parses");
        // The paper reports worst cases around 25-30%; anything beyond 100%
        // would mean the replica model broke.
        assert!(
            (-100.0..=100.0).contains(&pct),
            "memory overhead {pct}% out of the plausible band in {row:?}"
        );
    }
}

#[test]
fn expt_fig15_aggregation_accounting_is_exact() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_expt_fig15_aggregation_cost"));
    // Columns: scheme window shards tuples/s windows partials p50 p99.
    let rows = table_rows(&stdout);
    assert!(!rows.is_empty(), "fig15 table empty");
    // The binary runs the smoke engine topology; read its worker count
    // rather than hardcoding it.
    let workers =
        slb_engine::EngineConfig::smoke(slb_core::PartitionerKind::Pkg, 2.0).workers as u64;
    for row in &rows {
        assert_eq!(row.len(), 8, "unexpected fig15 row: {row:?}");
        let shards: u64 = row[2].parse().expect("shards parse");
        let windows: u64 = row[4].parse().expect("windows parse");
        let partials: u64 = row[5].parse().expect("partials parse");
        assert!(windows > 0, "no windows finalized in {row:?}");
        assert_eq!(
            partials,
            windows * workers * shards,
            "every worker must ship one partial per window per shard: {row:?}"
        );
        let throughput: f64 = row[3].parse().expect("throughput parses");
        assert!(throughput > 0.0);
    }
}
