//! Property-based tests for the hashing substrate.

use proptest::prelude::*;
use slb_hash::{bucket_of, Fnv1a64, HashFamily, Hasher64, SplitMix64, XxHash64};

proptest! {
    /// Every hash function is a pure function of (bytes, seed).
    #[test]
    fn hashes_are_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
        prop_assert_eq!(XxHash64::hash_with_seed(&bytes, seed), XxHash64::hash_with_seed(&bytes, seed));
        prop_assert_eq!(Fnv1a64::hash_with_seed(&bytes, seed), Fnv1a64::hash_with_seed(&bytes, seed));
        prop_assert_eq!(SplitMix64::hash_with_seed(&bytes, seed), SplitMix64::hash_with_seed(&bytes, seed));
        let (a1, a2) = slb_hash::murmur::murmur3_x64_128(&bytes, seed);
        let (b1, b2) = slb_hash::murmur::murmur3_x64_128(&bytes, seed);
        prop_assert_eq!((a1, a2), (b1, b2));
    }

    /// Bucketing never exceeds the bucket count.
    #[test]
    fn bucket_always_in_range(hash in any::<u64>(), n in 1usize..10_000) {
        prop_assert!(bucket_of(hash, n) < n);
    }

    /// Appending a byte to the input changes the xxHash64 digest (no trivial
    /// extension collisions on random inputs).
    #[test]
    fn extension_changes_digest(bytes in proptest::collection::vec(any::<u8>(), 0..128), extra in any::<u8>()) {
        let mut longer = bytes.clone();
        longer.push(extra);
        prop_assert_ne!(XxHash64::hash(&bytes), XxHash64::hash(&longer));
    }

    /// A family's candidate lists are always within range, have the requested
    /// length, and are identical for identical (seed, key) pairs.
    #[test]
    fn family_candidates_well_formed(
        master in any::<u64>(),
        key in any::<u64>(),
        n in 1usize..500,
        d in 1usize..16,
    ) {
        let d_max = d.max(2);
        let fam = HashFamily::new(master, d_max, n);
        let cs = fam.choices(&key, d);
        prop_assert_eq!(cs.len(), d);
        prop_assert!(cs.iter().all(|&c| c < n));
        prop_assert_eq!(cs, HashFamily::new(master, d_max, n).choices(&key, d));
    }

    /// String keys and their byte representation route identically.
    #[test]
    fn str_and_bytes_agree(s in ".{0,64}", seed in any::<u64>()) {
        use slb_hash::KeyHash;
        prop_assert_eq!(s.as_str().key_hash(seed), s.as_bytes().key_hash(seed));
    }
}
