//! MurmurHash3: the 32-bit (x86) and 128-bit (x64) variants.
//!
//! Apache Storm's default field grouping hashes keys with Java's
//! `Object.hashCode`, but the PKG implementation shipped with the paper uses
//! Guava's Murmur3 to pick the two candidate workers. We provide the same
//! functions so the routing decisions of this library can mirror those of the
//! original system.

const C1_32: u32 = 0xcc9e_2d51;
const C2_32: u32 = 0x1b87_3593;

#[inline(always)]
fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

#[inline(always)]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// Computes the 32-bit Murmur3 digest of `bytes` under `seed`.
pub fn murmur3_32(bytes: &[u8], seed: u32) -> u32 {
    let mut h1 = seed;
    let nblocks = bytes.len() / 4;

    for i in 0..nblocks {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&bytes[i * 4..i * 4 + 4]);
        let mut k1 = u32::from_le_bytes(buf);

        k1 = k1.wrapping_mul(C1_32);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2_32);

        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let tail = &bytes[nblocks * 4..];
    let mut k1: u32 = 0;
    if tail.len() >= 3 {
        k1 ^= u32::from(tail[2]) << 16;
    }
    if tail.len() >= 2 {
        k1 ^= u32::from(tail[1]) << 8;
    }
    if !tail.is_empty() {
        k1 ^= u32::from(tail[0]);
        k1 = k1.wrapping_mul(C1_32);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2_32);
        h1 ^= k1;
    }

    h1 ^= bytes.len() as u32;
    fmix32(h1)
}

/// Computes the 128-bit (x64 variant) Murmur3 digest of `bytes` under `seed`.
///
/// Returns the two 64-bit halves `(h1, h2)`. The first half is what Guava's
/// `murmur3_128().hashBytes(..).asLong()` exposes, and is therefore the value
/// used when mimicking the reference PKG implementation.
pub fn murmur3_x64_128(bytes: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let mut h1 = seed;
    let mut h2 = seed;
    let nblocks = bytes.len() / 16;

    for i in 0..nblocks {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes[i * 16..i * 16 + 8]);
        let mut k1 = u64::from_le_bytes(buf);
        buf.copy_from_slice(&bytes[i * 16 + 8..i * 16 + 16]);
        let mut k2 = u64::from_le_bytes(buf);

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = &bytes[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;

    let t = |i: usize| u64::from(tail[i]);
    let len = tail.len();
    if len >= 15 {
        k2 ^= t(14) << 48;
    }
    if len >= 14 {
        k2 ^= t(13) << 40;
    }
    if len >= 13 {
        k2 ^= t(12) << 32;
    }
    if len >= 12 {
        k2 ^= t(11) << 24;
    }
    if len >= 11 {
        k2 ^= t(10) << 16;
    }
    if len >= 10 {
        k2 ^= t(9) << 8;
    }
    if len >= 9 {
        k2 ^= t(8);
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if len >= 8 {
        k1 ^= t(7) << 56;
    }
    if len >= 7 {
        k1 ^= t(6) << 48;
    }
    if len >= 6 {
        k1 ^= t(5) << 40;
    }
    if len >= 5 {
        k1 ^= t(4) << 32;
    }
    if len >= 4 {
        k1 ^= t(3) << 24;
    }
    if len >= 3 {
        k1 ^= t(2) << 16;
    }
    if len >= 2 {
        k1 ^= t(1) << 8;
    }
    if len >= 1 {
        k1 ^= t(0);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= bytes.len() as u64;
    h2 ^= bytes.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// 64-bit convenience wrapper over [`murmur3_x64_128`] returning the first half.
#[inline]
pub fn murmur3_64(bytes: &[u8], seed: u64) -> u64 {
    murmur3_x64_128(bytes, seed).0
}

/// Zero-sized marker implementing [`crate::Hasher64`] via Murmur3 x64/128.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Murmur3;

impl crate::Hasher64 for Murmur3 {
    #[inline]
    fn hash_with_seed(bytes: &[u8], seed: u64) -> u64 {
        murmur3_64(bytes, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murmur32_known_vectors() {
        // Reference values from the canonical smhasher implementation.
        assert_eq!(murmur3_32(b"", 0), 0);
        assert_eq!(murmur3_32(b"", 1), 0x514E_28B7);
        assert_eq!(murmur3_32(b"hello", 0), 0x248B_FA47);
        assert_eq!(murmur3_32(b"hello, world", 0), 0x149B_BB7F);
    }

    #[test]
    fn murmur128_consistency() {
        // Digest is deterministic and seed-sensitive.
        let (a1, a2) = murmur3_x64_128(b"stream processing", 0);
        let (b1, b2) = murmur3_x64_128(b"stream processing", 0);
        assert_eq!((a1, a2), (b1, b2));
        let (c1, c2) = murmur3_x64_128(b"stream processing", 7);
        assert_ne!((a1, a2), (c1, c2));
    }

    #[test]
    fn murmur128_tail_lengths_all_distinct() {
        let buf: Vec<u8> = (0..64u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..buf.len() {
            assert!(
                seen.insert(murmur3_x64_128(&buf[..len], 0)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn murmur64_is_first_half() {
        let bytes = b"cashtag:$AAPL";
        assert_eq!(murmur3_64(bytes, 3), murmur3_x64_128(bytes, 3).0);
    }
}
