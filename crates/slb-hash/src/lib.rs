//! Hashing substrate for the SLB (Scalable Load Balancing) library.
//!
//! The stream-partitioning algorithms reproduced from *"When Two Choices Are
//! not Enough: Balancing at Scale in Distributed Stream Processing"*
//! (Nasir et al., ICDE 2016) route every tuple by hashing its key with one or
//! more independent hash functions (the *Greedy-d* process uses `d` of them).
//! Production stream processors (Storm, Flink) rely on library hash functions
//! such as Murmur3 or Guava's hashing; this crate provides from-scratch,
//! dependency-free implementations of the same class of functions:
//!
//! * [`xxhash::XxHash64`] — fast 64-bit hash, default choice for routing.
//! * [`murmur::murmur3_32`] / [`murmur::murmur3_x64_128`] — the hash Storm's
//!   `fieldsGrouping` historically used.
//! * [`fnv::Fnv1a64`] — simple byte-at-a-time hash, useful for tiny keys.
//! * [`splitmix::SplitMix64`] — integer mixer used to derive independent
//!   seeds and to hash already-numeric keys.
//!
//! On top of the raw functions, [`family::HashFamily`] packages *d*
//! independently-seeded functions mapping arbitrary keys to a worker index in
//! `[0, n)`, which is exactly the interface the Greedy-d process needs. The
//! family hashes the key bytes once into a digest and derives each of the
//! `d` choices with a single SplitMix64 round ("digest-then-derive"), so the
//! marginal cost of an extra choice is a few integer instructions rather
//! than another pass over the key.
//!
//! All functions are deterministic given their seed, so experiments are
//! reproducible run-to-run.

pub mod family;
pub mod fnv;
pub mod murmur;
pub mod splitmix;
pub mod xxhash;

pub use family::{HashFamily, KeyHash, StreamHasher, DIGEST_SEED};
pub use fnv::Fnv1a64;
pub use splitmix::SplitMix64;
pub use xxhash::XxHash64;

/// A hash function over byte slices producing a 64-bit digest.
///
/// Implementations must be pure functions of `(seed, bytes)`: the same input
/// always yields the same output, across platforms and process runs. This is
/// required so that every source in a distributed deployment routes a given
/// key to the same candidate workers without coordination.
pub trait Hasher64 {
    /// Hashes `bytes` with the given `seed`.
    fn hash_with_seed(bytes: &[u8], seed: u64) -> u64;

    /// Hashes `bytes` with seed 0.
    fn hash(bytes: &[u8]) -> u64 {
        Self::hash_with_seed(bytes, 0)
    }
}

/// Maps a 64-bit hash onto `n` buckets with negligible modulo bias.
///
/// Uses the widening-multiply technique (Lemire's "fastrange"): the result is
/// `⌊hash · n / 2^64⌋`, which is uniform when `hash` is uniform and avoids the
/// slow hardware modulo.
#[inline]
pub fn bucket_of(hash: u64, n: usize) -> usize {
    debug_assert!(n > 0, "cannot bucket into zero buckets");
    (((hash as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_in_range() {
        for n in [1usize, 2, 3, 5, 7, 80, 128, 1000] {
            for h in [0u64, 1, u64::MAX, u64::MAX / 2, 0xdead_beef_cafe_babe] {
                assert!(bucket_of(h, n) < n, "bucket_of({h}, {n}) out of range");
            }
        }
    }

    #[test]
    fn bucket_of_max_hash_maps_to_last_bucket() {
        assert_eq!(bucket_of(u64::MAX, 10), 9);
        assert_eq!(bucket_of(0, 10), 0);
    }

    #[test]
    fn bucket_of_single_bucket_always_zero() {
        for h in [0u64, 42, u64::MAX] {
            assert_eq!(bucket_of(h, 1), 0);
        }
    }

    #[test]
    fn bucket_of_is_roughly_uniform() {
        // Hash consecutive integers and check every bucket receives a share
        // close to the expected count.
        let n = 16;
        let samples = 64_000u64;
        let mut counts = vec![0usize; n];
        for i in 0..samples {
            let h = XxHash64::hash_with_seed(&i.to_le_bytes(), 7);
            counts[bucket_of(h, n)] += 1;
        }
        let expected = samples as f64 / n as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.10, "bucket {b} deviates {dev:.3} from uniform");
        }
    }
}
