//! FNV-1a 64-bit hash.
//!
//! A tiny byte-at-a-time hash. It is weaker than xxHash/Murmur3 on avalanche
//! quality but is extremely cheap on very short keys and useful as an extra,
//! structurally different function when building hash families for tests.

use crate::Hasher64;

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Zero-sized marker type implementing [`Hasher64`] via FNV-1a.
///
/// The seed is folded into the offset basis so that differently-seeded
/// instances behave as distinct functions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fnv1a64;

/// Computes the seeded FNV-1a digest of `bytes`.
pub fn fnv1a64(bytes: &[u8], seed: u64) -> u64 {
    // Mix the seed through one round of the FNV loop plus a SplitMix finalizer
    // so that seed=0 reduces exactly to classic FNV-1a.
    let mut hash = if seed == 0 {
        FNV_OFFSET_BASIS
    } else {
        crate::splitmix::splitmix64(FNV_OFFSET_BASIS ^ seed)
    };
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl Hasher64 for Fnv1a64 {
    #[inline]
    fn hash_with_seed(bytes: &[u8], seed: u64) -> u64 {
        fnv1a64(bytes, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_unseeded() {
        // Classic FNV-1a 64-bit reference values.
        assert_eq!(fnv1a64(b"", 0), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a", 0), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar", 0), 0x85944171f73967e8);
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(fnv1a64(b"key", 0), fnv1a64(b"key", 1));
        assert_ne!(fnv1a64(b"key", 1), fnv1a64(b"key", 2));
    }

    #[test]
    fn deterministic() {
        assert_eq!(fnv1a64(b"wiki/Main_Page", 9), fnv1a64(b"wiki/Main_Page", 9));
    }

    #[test]
    fn trait_matches_free_function() {
        assert_eq!(Fnv1a64::hash_with_seed(b"x", 5), fnv1a64(b"x", 5));
    }
}
