//! xxHash64: a fast, high-quality non-cryptographic 64-bit hash.
//!
//! This is a from-scratch implementation of the public xxHash64 algorithm
//! (Yann Collet). It is the default routing hash in this library because it
//! is both very fast on short keys (the common case for stream routing keys
//! such as words, URLs or ticker symbols) and has excellent avalanche
//! behaviour, which matters for the uniformity assumptions in the paper's
//! analysis (ideal-hash-function collisions, Appendix A).

use crate::Hasher64;

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Zero-sized marker type implementing [`Hasher64`] via xxHash64.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XxHash64;

#[inline(always)]
fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[offset..offset + 8]);
    u64::from_le_bytes(buf)
}

#[inline(always)]
fn read_u32(bytes: &[u8], offset: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[offset..offset + 4]);
    u32::from_le_bytes(buf)
}

#[inline(always)]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline(always)]
fn merge_round(acc: u64, val: u64) -> u64 {
    let val = round(0, val);
    (acc ^ val).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4)
}

#[inline(always)]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// Computes the xxHash64 digest of `bytes` under `seed`.
pub fn xxhash64(bytes: &[u8], seed: u64) -> u64 {
    let len = bytes.len();
    let mut h: u64;
    let mut offset = 0usize;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);

        while offset + 32 <= len {
            v1 = round(v1, read_u64(bytes, offset));
            v2 = round(v2, read_u64(bytes, offset + 8));
            v3 = round(v3, read_u64(bytes, offset + 16));
            v4 = round(v4, read_u64(bytes, offset + 24));
            offset += 32;
        }

        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while offset + 8 <= len {
        h ^= round(0, read_u64(bytes, offset));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        offset += 8;
    }

    if offset + 4 <= len {
        h ^= u64::from(read_u32(bytes, offset)).wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        offset += 4;
    }

    while offset < len {
        h ^= u64::from(bytes[offset]).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
        offset += 1;
    }

    avalanche(h)
}

impl Hasher64 for XxHash64 {
    #[inline]
    fn hash_with_seed(bytes: &[u8], seed: u64) -> u64 {
        xxhash64(bytes, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference digests from the canonical xxHash implementation.
    #[test]
    fn known_vectors_seed_zero() {
        assert_eq!(xxhash64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxhash64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxhash64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn known_vectors_nonzero_seed() {
        // Seed changes the digest entirely.
        assert_ne!(xxhash64(b"abc", 0), xxhash64(b"abc", 1));
        assert_ne!(xxhash64(b"", 0), xxhash64(b"", 1));
    }

    #[test]
    fn long_input_avalanche() {
        // The >=32-byte stripe path must keep full avalanche behaviour:
        // flipping a single input bit flips roughly half of the output bits.
        let mut base = vec![0u8; 96];
        for (i, b) in base.iter_mut().enumerate() {
            *b = i as u8;
        }
        let h0 = xxhash64(&base, 0);
        let mut total_flips = 0u32;
        let trials = 64;
        for t in 0..trials {
            let mut flipped = base.clone();
            flipped[t % base.len()] ^= 1 << (t % 8);
            total_flips += (h0 ^ xxhash64(&flipped, 0)).count_ones();
        }
        let avg = f64::from(total_flips) / trials as f64;
        assert!(
            (avg - 32.0).abs() < 8.0,
            "average flipped bits {avg} far from 32"
        );
    }

    #[test]
    fn deterministic_across_calls() {
        let data = b"the quick brown fox jumps over the lazy dog";
        assert_eq!(xxhash64(data, 42), xxhash64(data, 42));
    }

    #[test]
    fn handles_all_length_classes() {
        // Exercise every branch: <4, 4..8, 8..32, >=32 bytes, plus stragglers.
        let buf: Vec<u8> = (0..100u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..buf.len() {
            assert!(
                seen.insert(xxhash64(&buf[..len], 3)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn avalanche_flipping_one_bit_changes_many_output_bits() {
        let a = xxhash64(b"partition-key-000", 0);
        let b = xxhash64(b"partition-key-001", 0);
        let differing = (a ^ b).count_ones();
        assert!(differing > 16, "only {differing} bits differ");
    }

    #[test]
    fn trait_impl_matches_free_function() {
        assert_eq!(XxHash64::hash_with_seed(b"key", 9), xxhash64(b"key", 9));
        assert_eq!(XxHash64::hash(b"key"), xxhash64(b"key", 0));
    }
}
