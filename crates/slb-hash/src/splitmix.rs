//! SplitMix64: a statistically strong 64-bit integer mixer.
//!
//! Used in two places:
//! * deriving `d` independent seeds from a single master seed when building a
//!   [`crate::HashFamily`], and
//! * hashing keys that are already integers (e.g. pre-assigned key ranks in
//!   the synthetic Zipf workloads) without the overhead of byte serialization.

use crate::Hasher64;

/// Applies one SplitMix64 step to `x`, returning a well-mixed 64-bit value.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic sequence generator based on repeated SplitMix64 steps.
///
/// This is *not* a general purpose RNG (use the `rand` crate for that); it
/// exists to derive reproducible seed sequences without pulling RNG state
/// into hashing code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given initial state.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next value in the sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Hasher64 for SplitMix64 {
    /// Hashes up to the first 8 bytes directly and folds longer inputs
    /// 8 bytes at a time through the mixer.
    fn hash_with_seed(bytes: &[u8], seed: u64) -> u64 {
        let mut acc = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            acc = splitmix64(acc ^ u64::from_le_bytes(buf) ^ (chunk.len() as u64) << 56);
        }
        splitmix64(acc ^ bytes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sequence() {
        // Reference: splitmix64 with state 1234567 produces this first output
        // (computed from the reference algorithm; stable across runs).
        let mut g = SplitMix64::new(0);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        // First output of seed 0 is the mix of the golden-gamma increment.
        assert_eq!(a, splitmix64(0));
    }

    #[test]
    fn mixer_is_bijective_on_samples() {
        // splitmix64 is a bijection; sampled inputs must not collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn hash_distinguishes_lengths_and_content() {
        let a = SplitMix64::hash_with_seed(b"", 0);
        let b = SplitMix64::hash_with_seed(b"\0", 0);
        let c = SplitMix64::hash_with_seed(b"\0\0", 0);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_seed_sensitivity() {
        assert_ne!(
            SplitMix64::hash_with_seed(b"key-1", 0),
            SplitMix64::hash_with_seed(b"key-1", 1)
        );
    }
}
