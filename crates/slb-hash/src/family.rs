//! Families of independently-seeded hash functions mapping keys to workers.
//!
//! The Greedy-d process of the paper routes a key by evaluating `d`
//! independent hash functions `F_1..F_d : K -> [n]` and picking the least
//! loaded candidate worker. [`HashFamily`] provides exactly that interface:
//! it owns `d_max` seeds (derived deterministically from one master seed) and
//! can evaluate any prefix of them for a key, so the same family serves keys
//! with different `d` (2 for the tail, more for the head) without rehashing.
//!
//! ## Digest-then-derive
//!
//! The family does *not* hash the key bytes once per function. It hashes the
//! key **once** into a 64-bit digest ([`KeyHash::digest`]) and derives the
//! `i`-th choice with a single SplitMix64 round over `digest ^ seed_i`. For a
//! string key this turns `d` full passes over the bytes into one pass plus
//! `d` integer mixes, which is what makes large `d` (D-Choices head keys)
//! affordable on the per-tuple hot path. Callers that route the same key
//! several times can compute the digest themselves and use the
//! `*_from_digest` variants to skip even the single key hash.

use crate::{bucket_of, splitmix::splitmix64, xxhash::xxhash64};

/// Seed used to produce the one-per-key digest that all family members
/// derive their choices from. Any fixed constant works; this one is arbitrary
/// but must never change, or every persisted routing decision would move.
pub const DIGEST_SEED: u64 = 0xD16E_57A1_5EED_0001;

/// Anything that can be routed by the partitioners: a key viewed as bytes.
///
/// Implemented for the common key representations used in stream processors
/// (strings, byte slices, and integer key identifiers as used by the
/// synthetic workloads).
pub trait KeyHash {
    /// Hashes the key with the given seed into a 64-bit digest.
    fn key_hash(&self, seed: u64) -> u64;

    /// The key's routing digest: one 64-bit hash from which every family
    /// member derives its choice. Hash the key once, derive `d` times.
    #[inline]
    fn digest(&self) -> u64 {
        self.key_hash(DIGEST_SEED)
    }
}

impl KeyHash for [u8] {
    #[inline]
    fn key_hash(&self, seed: u64) -> u64 {
        xxhash64(self, seed)
    }
}

impl KeyHash for &[u8] {
    #[inline]
    fn key_hash(&self, seed: u64) -> u64 {
        xxhash64(self, seed)
    }
}

impl KeyHash for str {
    #[inline]
    fn key_hash(&self, seed: u64) -> u64 {
        xxhash64(self.as_bytes(), seed)
    }
}

impl KeyHash for &str {
    #[inline]
    fn key_hash(&self, seed: u64) -> u64 {
        xxhash64(self.as_bytes(), seed)
    }
}

impl KeyHash for String {
    #[inline]
    fn key_hash(&self, seed: u64) -> u64 {
        xxhash64(self.as_bytes(), seed)
    }
}

impl KeyHash for u64 {
    /// Integer keys (e.g. key ranks from the synthetic generators) are mixed
    /// directly: two SplitMix64 rounds over `key ^ seed` give full avalanche
    /// without a byte-serialization round trip.
    #[inline]
    fn key_hash(&self, seed: u64) -> u64 {
        splitmix64(splitmix64(*self ^ 0x9E37_79B9_7F4A_7C15) ^ splitmix64(seed))
    }
}

impl KeyHash for u32 {
    #[inline]
    fn key_hash(&self, seed: u64) -> u64 {
        u64::from(*self).key_hash(seed)
    }
}

impl KeyHash for usize {
    #[inline]
    fn key_hash(&self, seed: u64) -> u64 {
        (*self as u64).key_hash(seed)
    }
}

/// A family of up to `d_max` independent hash functions onto `n` workers.
///
/// The functions are `F_i(k) = bucket(mix(digest(k) ^ seed_i), n)` where the
/// seeds are derived from the master seed with SplitMix64 and `mix` is one
/// SplitMix64 finalizer round, so distinct family members behave as
/// independent ideal hash functions for the purposes of the analysis in the
/// paper (Section IV and Appendix A) while the key bytes are only hashed
/// once per tuple.
#[derive(Debug, Clone)]
pub struct HashFamily {
    seeds: Vec<u64>,
    workers: usize,
}

/// Derives the `i`-th function's 64-bit value from a key digest: one
/// SplitMix64 finalizer round over `digest ^ seed_i`.
#[inline]
fn derive(digest: u64, seed: u64) -> u64 {
    splitmix64(digest ^ seed)
}

impl HashFamily {
    /// Creates a family of `d_max` functions mapping onto `workers` buckets.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `d_max == 0`.
    pub fn new(master_seed: u64, d_max: usize, workers: usize) -> Self {
        assert!(workers > 0, "a hash family needs at least one worker");
        assert!(d_max > 0, "a hash family needs at least one function");
        let mut sm = crate::SplitMix64::new(master_seed);
        let seeds = (0..d_max).map(|_| sm.next_u64()).collect();
        Self { seeds, workers }
    }

    /// Number of functions available in this family.
    #[inline]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Returns true if the family holds no functions (never the case for a
    /// constructed family, but required for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Number of workers (buckets) the family maps onto.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates the `i`-th function on `key`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn choice<K: KeyHash + ?Sized>(&self, key: &K, i: usize) -> usize {
        self.choice_from_digest(key.digest(), i)
    }

    /// Evaluates the `i`-th function on a precomputed key digest.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn choice_from_digest(&self, digest: u64, i: usize) -> usize {
        bucket_of(derive(digest, self.seeds[i]), self.workers)
    }

    /// Evaluates the first `d` functions on `key`, returning the candidate
    /// workers in function order (duplicates possible, as in the paper:
    /// hash collisions mean a key may effectively have fewer than `d`
    /// distinct choices).
    ///
    /// # Panics
    /// Panics if `d > self.len()` or `d == 0`.
    pub fn choices<K: KeyHash + ?Sized>(&self, key: &K, d: usize) -> Vec<usize> {
        assert!(
            d > 0 && d <= self.seeds.len(),
            "d={d} out of range 1..={}",
            self.seeds.len()
        );
        let digest = key.digest();
        self.seeds[..d]
            .iter()
            .map(|&s| bucket_of(derive(digest, s), self.workers))
            .collect()
    }

    /// Evaluates the first `d` functions, writing candidates into `out`
    /// (cleared first). Allocation-free variant of [`Self::choices`] for the
    /// per-tuple hot path: the key bytes are hashed once, then each choice
    /// costs one integer mix.
    #[inline]
    pub fn choices_into<K: KeyHash + ?Sized>(&self, key: &K, d: usize, out: &mut Vec<usize>) {
        self.choices_from_digest_into(key.digest(), d, out);
    }

    /// Evaluates the first `d` functions on a precomputed digest, writing
    /// candidates into `out` (cleared first).
    ///
    /// # Panics
    /// Panics if `d > self.len()` or `d == 0`.
    #[inline]
    pub fn choices_from_digest_into(&self, digest: u64, d: usize, out: &mut Vec<usize>) {
        assert!(
            d > 0 && d <= self.seeds.len(),
            "d={d} out of range 1..={}",
            self.seeds.len()
        );
        out.clear();
        for &s in &self.seeds[..d] {
            out.push(bucket_of(derive(digest, s), self.workers));
        }
    }

    /// Returns a copy of this family mapping onto a different worker count.
    ///
    /// Useful when the same logical functions must be re-used after a scale
    /// change in an experiment sweep.
    pub fn with_workers(&self, workers: usize) -> Self {
        assert!(workers > 0, "a hash family needs at least one worker");
        Self {
            seeds: self.seeds.clone(),
            workers,
        }
    }
}

/// Convenience wrapper bundling a [`HashFamily`] sized for the common
/// "2 choices for the tail, up to `n` for the head" configuration.
#[derive(Debug, Clone)]
pub struct StreamHasher {
    family: HashFamily,
}

impl StreamHasher {
    /// Builds a hasher for `workers` downstream instances. The family holds
    /// `workers` functions so that any `d <= n` requested by D-Choices can be
    /// served.
    pub fn new(master_seed: u64, workers: usize) -> Self {
        Self {
            family: HashFamily::new(master_seed, workers.max(2), workers),
        }
    }

    /// The underlying hash family.
    #[inline]
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// The two PKG candidate workers for `key`.
    #[inline]
    pub fn two_choices<K: KeyHash + ?Sized>(&self, key: &K) -> (usize, usize) {
        (self.family.choice(key, 0), self.family.choice(key, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_choices_in_range() {
        let fam = HashFamily::new(7, 8, 13);
        for key in 0..1000u64 {
            for c in fam.choices(&key, 8) {
                assert!(c < 13);
            }
        }
    }

    #[test]
    fn family_is_deterministic_across_instances() {
        let a = HashFamily::new(42, 4, 10);
        let b = HashFamily::new(42, 4, 10);
        for key in ["alpha", "beta", "gamma", "$AAPL", "wiki/Main_Page"] {
            assert_eq!(a.choices(&key, 4), b.choices(&key, 4));
        }
    }

    #[test]
    fn different_master_seeds_give_different_functions() {
        let a = HashFamily::new(1, 2, 100);
        let b = HashFamily::new(2, 2, 100);
        let diffs = (0..1000u64)
            .filter(|k| a.choices(k, 2) != b.choices(k, 2))
            .count();
        assert!(diffs > 900, "only {diffs} keys routed differently");
    }

    #[test]
    fn functions_within_family_are_independent() {
        // Fraction of keys where F1(k) == F2(k) should be about 1/n.
        let n = 50;
        let fam = HashFamily::new(3, 2, n);
        let samples = 20_000u64;
        let collisions = (0..samples)
            .filter(|k| fam.choice(k, 0) == fam.choice(k, 1))
            .count();
        let rate = collisions as f64 / samples as f64;
        let expected = 1.0 / n as f64;
        assert!(
            (rate - expected).abs() < expected,
            "collision rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn choices_into_matches_choices() {
        let fam = HashFamily::new(11, 5, 17);
        let mut buf = Vec::new();
        for key in 0..100u64 {
            fam.choices_into(&key, 5, &mut buf);
            assert_eq!(buf, fam.choices(&key, 5));
        }
    }

    #[test]
    fn digest_variants_match_keyed_variants() {
        let fam = HashFamily::new(13, 6, 23);
        let mut buf = Vec::new();
        for key in ["alpha", "beta", "wiki/Main_Page", ""] {
            let digest = key.digest();
            assert_eq!(digest, key.key_hash(DIGEST_SEED));
            for i in 0..6 {
                assert_eq!(fam.choice(&key, i), fam.choice_from_digest(digest, i));
            }
            fam.choices_from_digest_into(digest, 6, &mut buf);
            assert_eq!(buf, fam.choices(&key, 6));
        }
    }

    #[test]
    fn derived_choices_stay_uniform_per_function() {
        // Each derived function must still spread keys evenly: the digest
        // indirection must not introduce bucket bias.
        let n = 16;
        let fam = HashFamily::new(9, 3, n);
        let samples = 48_000u64;
        for i in 0..3 {
            let mut counts = vec![0usize; n];
            for key in 0..samples {
                counts[fam.choice(&key, i)] += 1;
            }
            let expected = samples as f64 / n as f64;
            for (b, &c) in counts.iter().enumerate() {
                let dev = (c as f64 - expected).abs() / expected;
                assert!(dev < 0.10, "fn {i} bucket {b} deviates {dev:.3}");
            }
        }
    }

    #[test]
    fn string_and_str_hash_identically() {
        let fam = HashFamily::new(0, 2, 10);
        let s = String::from("hot-key");
        assert_eq!(fam.choices(&s, 2), fam.choices(&"hot-key", 2));
        assert_eq!(fam.choices(&s, 2), fam.choices("hot-key", 2));
    }

    #[test]
    fn with_workers_keeps_seeds() {
        let a = HashFamily::new(5, 3, 10);
        let b = a.with_workers(20);
        assert_eq!(b.workers(), 20);
        // Same seeds: a key's digest ordering is preserved even if buckets change.
        assert_eq!(b.len(), a.len());
    }

    #[test]
    fn stream_hasher_two_choices_match_family() {
        let sh = StreamHasher::new(9, 30);
        for key in 0..50u64 {
            let (a, b) = sh.two_choices(&key);
            assert_eq!(a, sh.family().choice(&key, 0));
            assert_eq!(b, sh.family().choice(&key, 1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = HashFamily::new(0, 2, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_choices_panics() {
        let fam = HashFamily::new(0, 2, 5);
        let _ = fam.choices(&1u64, 3);
    }
}
