//! Property tests for `Partitioner::rescale`: phase-boundary regeneration
//! must be bit-for-bit equivalent to constructing a fresh partitioner.
//!
//! The scenario engine relies on this equivalence for its determinism story:
//! the threaded engine rescales each source's partitioner in place at phase
//! boundaries, while the simulator and test references may build fresh
//! instances — both must route the remainder of the stream identically.

use proptest::prelude::*;

use slb_core::{build_partitioner, PartitionConfig, PartitionerKind};

/// Deterministic xorshift key stream with a hot-key share.
fn stream(len: usize, hot_permille: u16, tail_keys: u64, state0: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(len);
    let mut state = state0 | 1;
    for i in 0..len {
        if (i * 1000 / len.max(1)) % 1000 < usize::from(hot_permille) && i % 7 != 0 {
            out.push(0);
        } else {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.push(1 + state % tail_keys);
        }
    }
    out
}

proptest! {
    // 24 cases locally (each runs all six schemes); ci.sh raises this via
    // PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(24))]

    /// After routing an arbitrary prefix and rescaling to a new
    /// configuration, every scheme routes exactly like a freshly built
    /// partitioner: no state survives the phase boundary.
    #[test]
    fn rescale_equals_fresh_build(
        prefix_len in 0usize..2_000,
        suffix_len in 1usize..2_000,
        hot_permille in 0u16..700,
        n1 in 1usize..40,
        n2 in 1usize..40,
        seed in any::<u64>(),
        state0 in any::<u64>(),
    ) {
        let cfg1 = PartitionConfig::new(n1).with_seed(seed);
        let cfg2 = PartitionConfig::new(n2).with_seed(seed.wrapping_add(1));
        let prefix = stream(prefix_len.max(1), hot_permille, 500, state0);
        let suffix = stream(suffix_len, hot_permille, 500, state0 ^ 0xABCD);
        for kind in PartitionerKind::ALL {
            let mut rescaled = build_partitioner::<u64>(kind, &cfg1);
            for key in &prefix {
                let w = rescaled.route(key);
                prop_assert!(w < n1, "{:?} routed out of range before rescale", kind);
            }
            rescaled.rescale(&cfg2);
            prop_assert_eq!(rescaled.workers(), n2, "{:?} did not adopt the new worker count", kind);
            prop_assert_eq!(rescaled.local_loads().total(), 0, "{:?} kept load state across rescale", kind);

            let mut fresh = build_partitioner::<u64>(kind, &cfg2);
            for key in &suffix {
                let a = rescaled.route(key);
                let b = fresh.route(key);
                prop_assert_eq!(a, b, "{:?} diverged from a fresh build after rescale", kind);
                prop_assert!(a < n2, "{:?} routed out of range after rescale", kind);
            }
            prop_assert_eq!(
                rescaled.local_loads().counts(),
                fresh.local_loads().counts(),
                "{:?} load vectors diverged after rescale",
                kind
            );
        }
    }

    /// A chain of back-to-back rescales (with arbitrary traffic between
    /// them) is equivalent to a single fresh build at the final
    /// configuration. This is what lets the elasticity controller fire
    /// scale decisions in consecutive windows — even rescale-then-rescale
    /// with zero tuples in between — without accumulating hidden state:
    /// only the *last* configuration matters.
    #[test]
    fn rescale_chain_equals_single_fresh_build(
        hops in 1usize..6,
        hot_permille in 0u16..700,
        interleave_len in 0usize..600,
        suffix_len in 1usize..2_000,
        seed in any::<u64>(),
        state0 in any::<u64>(),
    ) {
        // Worker counts and per-hop traffic derived deterministically from
        // the seed; some hops route zero tuples before the next rescale,
        // the back-to-back case the controller's cooldown=0 setting allows.
        let mut mix = seed | 1;
        let mut next = move || {
            mix ^= mix << 13;
            mix ^= mix >> 7;
            mix ^= mix << 17;
            mix
        };
        let counts: Vec<usize> = (0..=hops).map(|_| 1 + (next() % 40) as usize).collect();
        let traffic: Vec<usize> = (0..hops).map(|_| (next() as usize) % (interleave_len + 1)).collect();
        let suffix = stream(suffix_len, hot_permille, 500, state0 ^ 0xABCD);
        for kind in PartitionerKind::ALL {
            let cfg_at = |hop: usize| {
                PartitionConfig::new(counts[hop]).with_seed(seed.wrapping_add(hop as u64))
            };
            let mut chained = build_partitioner::<u64>(kind, &cfg_at(0));
            for (hop, &tuples) in traffic.iter().enumerate() {
                for key in stream(tuples, hot_permille, 500, state0 ^ hop as u64) {
                    chained.route(&key);
                }
                chained.rescale(&cfg_at(hop + 1));
            }
            let mut fresh = build_partitioner::<u64>(kind, &cfg_at(hops));
            prop_assert_eq!(chained.workers(), fresh.workers());
            for key in &suffix {
                let a = chained.route(key);
                let b = fresh.route(key);
                prop_assert_eq!(
                    a, b,
                    "{:?} diverged from a fresh build after a {}-hop rescale chain",
                    kind, hops
                );
            }
            prop_assert_eq!(
                chained.local_loads().counts(),
                fresh.local_loads().counts(),
                "{:?} load vectors diverged after a rescale chain",
                kind
            );
        }
    }
}
