//! Property suite for the durable checkpoint file codec and store: the
//! load path is **total** and corruption is a *recoverable* error.
//!
//! A respawned worker process owns nothing but its checkpoint directory,
//! and the writer that produced those files may have died at any
//! instruction — so the properties here are exactly the crash cases:
//!
//! 1. **Round-trip identity** — `decode(encode(gen, payload))` returns the
//!    generation and payload bit-for-bit, through the file system and
//!    through in-memory framing alike.
//! 2. **Totality** — every strict prefix of a valid file image, every
//!    single-bit flip, and arbitrary byte soup decode to an error (or, for
//!    soup that accidentally frames, a value) and never panic; the store's
//!    `load` folds all of it into clean fallback.
//! 3. **Generation fallback** — corrupting the current file makes `load`
//!    return the *previous* generation's payload, and the corruption is
//!    observable as a `Corrupt` (not `Io`) error per generation.
//! 4. **Crashed-rename leftovers are inert** — a torn `.tmp` file from a
//!    writer that died mid-save never changes what loads.

use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use slb_core::{
    decode_checkpoint_file, encode_checkpoint_file, CheckpointFileError, DurableCheckpointStore,
};

/// A unique scratch directory per test case (the offline proptest shim
/// runs cases sequentially, but unique names also survive a killed run's
/// leftovers).
fn scratch_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("slb-durable-props-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

proptest! {
    // 64 cases locally; ci.sh raises this via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    #[test]
    fn file_images_round_trip(generation in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..2_000)) {
        let image = encode_checkpoint_file(generation, &payload);
        let (gen_back, payload_back) = decode_checkpoint_file(&image).expect("own encoding decodes");
        prop_assert_eq!(gen_back, generation);
        prop_assert_eq!(payload_back, payload);
    }

    #[test]
    fn every_strict_prefix_errors_not_panics(
        generation in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        fraction in 0.0f64..1.0,
    ) {
        let image = encode_checkpoint_file(generation, &payload);
        let cut = ((image.len() - 1) as f64 * fraction) as usize;
        prop_assert!(decode_checkpoint_file(&image[..cut]).is_err(), "prefix of {} bytes decoded", cut);
    }

    #[test]
    fn every_single_bit_flip_in_a_small_image_errors(
        generation in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..24),
        byte_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // A flip in the magic, generation, length, CRC, or payload must be
        // caught. Flips inside `generation` alone survive CRC-wise only if
        // they also matched — they don't: generation is not covered by the
        // CRC, so exempt those 8 bytes (a wrong-but-intact generation is
        // still an intact file; the *store* orders by generation).
        let image = encode_checkpoint_file(generation, &payload);
        let at = ((image.len() - 1) as f64 * byte_fraction) as usize;
        if (8..16).contains(&at) {
            return Ok(());
        }
        let mut corrupt = image.clone();
        corrupt[at] ^= 1 << bit;
        prop_assert!(decode_checkpoint_file(&corrupt).is_err(), "flip at byte {} bit {} decoded", at, bit);
    }

    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_checkpoint_file(&bytes);
    }

    #[test]
    fn corrupt_current_file_falls_back_to_previous_generation(
        old_payload in proptest::collection::vec(any::<u8>(), 0..500),
        new_payload in proptest::collection::vec(any::<u8>(), 1..500),
        byte_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = scratch_dir();
        let mut store = DurableCheckpointStore::open(&dir, 0).expect("store opens");
        store.save(&old_payload).expect("first save");
        store.save(&new_payload).expect("second save");
        // Corrupt the current file outside the uncovered generation field.
        let mut bytes = fs::read(store.current_path()).expect("current file exists");
        let mut at = ((bytes.len() - 1) as f64 * byte_fraction) as usize;
        if (8..16).contains(&at) {
            at = 16;
        }
        bytes[at] ^= 1 << bit;
        fs::write(store.current_path(), &bytes).expect("rewrite current");
        // Load is total and recovers the previous generation.
        let loaded = store.load();
        prop_assert_eq!(loaded, Some((1, old_payload.clone())));
        // The skipped generation reports corruption, not an I/O failure.
        let generations = store.load_generations();
        prop_assert!(matches!(&generations[0], Err(CheckpointFileError::Corrupt(_))),
            "current generation should be corrupt, got {:?}", generations[0]);
        prop_assert!(generations[1].is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_rename_leftover_is_inert_and_reopen_continues(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..5),
        torn in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let dir = scratch_dir();
        let mut store = DurableCheckpointStore::open(&dir, 4).expect("store opens");
        for payload in &payloads {
            store.save(payload).expect("save");
        }
        let last = payloads.len() as u64;
        // A writer that died mid-save leaves a torn tmp file behind...
        fs::write(store.tmp_path(), &torn).expect("plant torn tmp");
        prop_assert_eq!(store.load(), Some((last, payloads.last().unwrap().clone())));
        drop(store);
        // ...and a respawned process ignores it and keeps the generation
        // counter monotonic.
        let mut respawned = DurableCheckpointStore::open(&dir, 4).expect("store reopens");
        prop_assert_eq!(respawned.generation(), last);
        prop_assert_eq!(respawned.save(b"after respawn").expect("save after respawn"), last + 1);
        prop_assert_eq!(respawned.load(), Some((last + 1, b"after respawn".to_vec())));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_current_file_falls_back(
        old_payload in proptest::collection::vec(any::<u8>(), 0..200),
        new_payload in proptest::collection::vec(any::<u8>(), 1..200),
        fraction in 0.0f64..1.0,
    ) {
        // A torn write that somehow reached the current name (e.g. a
        // filesystem without atomic rename durability) still falls back.
        let dir = scratch_dir();
        let mut store = DurableCheckpointStore::open(&dir, 9).expect("store opens");
        store.save(&old_payload).expect("first save");
        store.save(&new_payload).expect("second save");
        let bytes = fs::read(store.current_path()).expect("current file exists");
        let cut = ((bytes.len() - 1) as f64 * fraction) as usize;
        fs::write(store.current_path(), &bytes[..cut]).expect("truncate current");
        prop_assert_eq!(store.load(), Some((1, old_payload.clone())));
        let _ = fs::remove_dir_all(&dir);
    }
}
