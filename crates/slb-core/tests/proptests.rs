//! Property-based tests for the core partitioning invariants.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

use slb_core::{
    build_partitioner, constraints_hold, expected_worker_set_size, find_optimal_choices, imbalance,
    ChoicesDecision, PartitionConfig, PartitionerKind,
};

/// Strategy for a skewed key stream over a small universe.
fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            4 => Just(0u64),       // one very hot key
            2 => 1u64..10,         // warm keys
            3 => 10u64..2_000,     // cold tail
        ],
        100..4_000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheme routes every message to a valid worker and records it in
    /// its local load vector.
    #[test]
    fn all_schemes_route_in_range(stream in stream_strategy(), n in 1usize..64, seed in any::<u64>()) {
        let cfg = PartitionConfig::new(n).with_seed(seed);
        for kind in PartitionerKind::ALL {
            let mut p = build_partitioner::<u64>(kind, &cfg);
            for k in &stream {
                prop_assert!(p.route(k) < n, "{:?} out of range", kind);
            }
            prop_assert_eq!(p.local_loads().total(), stream.len() as u64);
            let counted: u64 = p.local_loads().counts().iter().sum();
            prop_assert_eq!(counted, stream.len() as u64);
        }
    }

    /// PKG never sends one key to more than two distinct workers.
    #[test]
    fn pkg_two_worker_invariant(stream in stream_strategy(), n in 2usize..64, seed in any::<u64>()) {
        let cfg = PartitionConfig::new(n).with_seed(seed);
        let mut p = build_partitioner::<u64>(PartitionerKind::Pkg, &cfg);
        let mut dests: HashMap<u64, HashSet<usize>> = HashMap::new();
        for k in &stream {
            dests.entry(*k).or_default().insert(p.route(k));
        }
        for (k, ws) in dests {
            prop_assert!(ws.len() <= 2, "key {} hit {} workers", k, ws.len());
        }
    }

    /// Key grouping is a pure function of the key.
    #[test]
    fn key_grouping_sticky(stream in stream_strategy(), n in 1usize..64, seed in any::<u64>()) {
        let cfg = PartitionConfig::new(n).with_seed(seed);
        let mut p = build_partitioner::<u64>(PartitionerKind::KeyGrouping, &cfg);
        let mut assignment: HashMap<u64, usize> = HashMap::new();
        for k in &stream {
            let w = p.route(k);
            let prev = assignment.entry(*k).or_insert(w);
            prop_assert_eq!(*prev, w);
        }
    }

    /// Shuffle grouping's imbalance is bounded by one message's worth of
    /// load: max count - min count <= 1.
    #[test]
    fn shuffle_grouping_near_perfect_balance(len in 1usize..5_000, n in 1usize..64, seed in any::<u64>()) {
        let cfg = PartitionConfig::new(n).with_seed(seed);
        let mut p = build_partitioner::<u64>(PartitionerKind::ShuffleGrouping, &cfg);
        for i in 0..len {
            p.route(&(i as u64));
        }
        let counts = p.local_loads().counts().to_vec();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// The same seed and stream always produce the same routing decisions,
    /// for every scheme.
    #[test]
    fn determinism_across_instances(stream in stream_strategy(), n in 1usize..32, seed in any::<u64>()) {
        let cfg = PartitionConfig::new(n).with_seed(seed);
        for kind in PartitionerKind::ALL {
            let mut a = build_partitioner::<u64>(kind, &cfg);
            let mut b = build_partitioner::<u64>(kind, &cfg);
            for k in &stream {
                prop_assert_eq!(a.route(k), b.route(k), "{:?} diverged", kind);
            }
        }
    }

    /// W-Choices never balances worse than PKG on the same stream (allowing
    /// a tiny tolerance for ties), because it has strictly more freedom for
    /// the head and behaves identically on the tail.
    #[test]
    fn w_choices_at_least_as_balanced_as_pkg(stream in stream_strategy(), n in 4usize..64, seed in any::<u64>()) {
        let cfg = PartitionConfig::new(n).with_seed(seed);
        let mut pkg = build_partitioner::<u64>(PartitionerKind::Pkg, &cfg);
        let mut wc = build_partitioner::<u64>(PartitionerKind::WChoices, &cfg);
        for k in &stream {
            pkg.route(k);
            wc.route(k);
        }
        let pkg_imb = imbalance(pkg.local_loads().counts());
        let wc_imb = imbalance(wc.local_loads().counts());
        // One message of slack absorbs discretization noise on short streams.
        let slack = 1.0 / stream.len() as f64;
        prop_assert!(wc_imb <= pkg_imb + slack, "W-C {} vs PKG {}", wc_imb, pkg_imb);
    }

    /// The expected worker-set size b_h is monotone in h and d and bounded
    /// by min(n, h*d).
    #[test]
    fn worker_set_size_bounds(n in 1usize..200, h in 1usize..50, d in 1usize..50) {
        let b = expected_worker_set_size(n, h, d);
        prop_assert!(b > 0.0);
        prop_assert!(b <= n as f64 + 1e-9);
        prop_assert!(b <= (h * d) as f64 + 1e-9);
        prop_assert!(expected_worker_set_size(n, h + 1, d) >= b - 1e-12);
        prop_assert!(expected_worker_set_size(n, h, d + 1) >= b - 1e-12);
    }

    /// The solver's output always satisfies the constraints it was asked to
    /// satisfy (when it returns UseD), and is at least 2.
    #[test]
    fn solver_output_is_feasible(
        head in proptest::collection::vec(0.001f64..0.6, 0..8),
        n in 2usize..128,
        eps_exp in 2u32..6,
    ) {
        let epsilon = 10f64.powi(-(eps_exp as i32));
        let mass: f64 = head.iter().sum();
        prop_assume!(mass < 1.0);
        let tail = 1.0 - mass;
        match find_optimal_choices(&head, tail, n, epsilon) {
            ChoicesDecision::UseD(d) => {
                prop_assert!(d >= 2);
                prop_assert!(d < n.max(3));
                let mut sorted = head.clone();
                sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
                prop_assert!(constraints_hold(&sorted, tail, n, d, epsilon));
            }
            ChoicesDecision::SwitchToW => {
                // Switching is always a safe answer; nothing more to check.
            }
        }
    }
}
