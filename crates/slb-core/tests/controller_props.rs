//! Property tests for the elasticity controller's policy invariants.
//!
//! Three guarantees the closed loop leans on, checked over the whole knob
//! space rather than hand-picked examples:
//!
//! 1. **No oscillation on a constant signal** — whatever the hysteresis
//!    knobs, a constant `(total, max)` window signal can only ever push the
//!    controller in one direction. Mixed ScaleOut/ScaleIn logs would mean
//!    the hysteresis is broken and a steady workload could make the engine
//!    thrash between rescales.
//! 2. **Re-solved `d` is monotone in head skew** — a strictly hotter head
//!    key never makes the solver ask for *fewer* choices. This is the
//!    sanity bound from the paper's Figure 4: the d/n fraction grows with
//!    skew until W-Choices takes over.
//! 3. **Activation respects the bounds** — under arbitrary window signals
//!    the active worker count never leaves `[min_workers, max_workers]`,
//!    every returned rescale target equals the controller's own view, and
//!    consecutive targets differ by at most `step`.

use proptest::prelude::*;

use slb_core::{
    find_optimal_choices, ChoicesDecision, ControllerAction, ControllerConfig, ElasticityController,
};

/// Builds a validated config from raw knob draws (the vendored proptest has
/// no `prop_map`, so composition happens in the test body).
fn build_config(
    min: usize,
    span: usize,
    capacity: u64,
    patience: u32,
    cooldown: u32,
    step: usize,
) -> ControllerConfig {
    ControllerConfig::new(min, min + span, capacity)
        .with_patience(patience)
        .with_cooldown(cooldown)
        .with_step(step)
}

proptest! {
    // 32 cases locally; ci.sh raises this via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(32))]

    /// Guarantee 1: on a constant signal, the action log never mixes
    /// directions — scale-out pressure suppresses scale-in, and without
    /// pressure scale-out cannot fire, so one of the two is absent.
    #[test]
    fn constant_signal_never_oscillates(
        min in 1usize..6,
        span in 0usize..12,
        capacity in 1u64..10_000,
        patience in 1u32..5,
        cooldown in 0u32..5,
        step in 1usize..4,
        initial in 1usize..16,
        window_max in 0u64..20_000,
        extra_total in 0u64..40_000,
        windows in 1usize..128,
    ) {
        let cfg = build_config(min, span, capacity, patience, cooldown, step);
        let mut ctrl = ElasticityController::new(cfg, 0, initial);
        let window_total = window_max + extra_total;
        for _ in 0..windows {
            let _ = ctrl.observe_window(window_total, window_max);
        }
        let saw_out = ctrl.events().iter().any(|e| e.action == ControllerAction::ScaleOut);
        let saw_in = ctrl.events().iter().any(|e| e.action == ControllerAction::ScaleIn);
        prop_assert!(
            !(saw_out && saw_in),
            "constant signal (total={}, max={}) produced both directions: {:?}",
            window_total,
            window_max,
            ctrl.events()
        );
    }

    /// Guarantee 2: a hotter head never asks for fewer choices. Single
    /// head-key model: frequency `p` head, `1 - p` tail; the effective
    /// candidate count (`d`, or `n` for SwitchToW) is non-decreasing in `p`.
    #[test]
    fn resolved_d_is_monotone_in_head_skew(
        workers in 2usize..64,
        p_lo_millis in 1u64..998,
        gap_millis in 1u64..500,
        epsilon in prop_oneof![Just(1e-4), Just(1e-3), Just(1e-2)],
    ) {
        let p_lo = p_lo_millis as f64 / 1000.0;
        let p_hi = ((p_lo_millis + gap_millis).min(999)) as f64 / 1000.0;
        let d_lo = find_optimal_choices(&[p_lo], 1.0 - p_lo, workers, epsilon)
            .effective_d(workers);
        let d_hi = find_optimal_choices(&[p_hi], 1.0 - p_hi, workers, epsilon)
            .effective_d(workers);
        prop_assert!(
            d_lo <= d_hi,
            "skew {} -> d={}, hotter skew {} -> d={} (n={})",
            p_lo,
            d_lo,
            p_hi,
            d_hi,
            workers
        );
    }

    /// Guarantee 3: under an arbitrary window signal the controller stays
    /// inside its bounds, reports targets consistent with its own state,
    /// and moves at most `step` workers per action.
    #[test]
    fn activation_respects_bounds_under_arbitrary_signals(
        min in 1usize..6,
        span in 0usize..12,
        capacity in 1u64..4_000,
        patience in 1u32..5,
        cooldown in 0u32..5,
        step in 1usize..4,
        initial in 1usize..20,
        signal in proptest::collection::vec(0u64..16_000_000, 1..200),
    ) {
        let cfg = build_config(min, span, capacity, patience, cooldown, step);
        let mut ctrl = ElasticityController::new(cfg.clone(), 0, initial);
        let mut previous = ctrl.active_workers();
        prop_assert!(previous >= cfg.min_workers && previous <= cfg.max_workers);
        for &draw in &signal {
            // Decompose one draw into a (max, total) pair with max <= total.
            let window_max = draw % 4_000;
            let window_total = window_max + (draw / 4_000) % 4_000;
            let changed = ctrl.observe_window(window_total, window_max);
            let active = ctrl.active_workers();
            prop_assert!(
                active >= cfg.min_workers && active <= cfg.max_workers,
                "active {} escaped [{}, {}]",
                active,
                cfg.min_workers,
                cfg.max_workers
            );
            if let Some(target) = changed {
                prop_assert_eq!(target, active);
                prop_assert!(
                    active.abs_diff(previous) <= cfg.step,
                    "jumped {} -> {} with step {}",
                    previous,
                    active,
                    cfg.step
                );
            } else {
                prop_assert_eq!(active, previous);
            }
            previous = active;
        }
        // The event log agrees with the final state: the last scale event's
        // recorded worker count is where the controller ended.
        if let Some(last) = ctrl
            .events()
            .iter()
            .rev()
            .find(|e| e.action != ControllerAction::Retune)
        {
            prop_assert_eq!(last.workers as usize, ctrl.active_workers());
        }
    }

    /// The retune path never logs a no-op: every Retune event changes the
    /// recorded decision relative to the one before it.
    #[test]
    fn retune_events_always_change_the_decision(
        workers in 2usize..32,
        freqs_millis in proptest::collection::vec(1u64..900, 1..40),
    ) {
        let cfg = ControllerConfig::new(workers, workers, u64::MAX);
        let mut ctrl = ElasticityController::new(cfg, 0, workers);
        let mut last = ChoicesDecision::UseD(2);
        for &f in &freqs_millis {
            let p = f as f64 / 1000.0;
            if let Some(decision) = ctrl.retune(&[p], 1.0 - p) {
                // A logged retune must actually change the decision.
                prop_assert_ne!(decision, last);
                last = decision;
            }
        }
        prop_assert_eq!(ctrl.current_decision(), last);
    }
}
