//! Property tests proving `route_batch` is bit-for-bit equivalent to
//! tuple-at-a-time `route` for every grouping scheme.
//!
//! The batched hot path (engine transport, specialized `route_batch`
//! implementations, the head-key candidate cache, digest-then-derive
//! hashing) is only admissible because it never changes a routing decision:
//! the worker sequence and the per-worker load vector must be identical to
//! the scalar path for the same configuration and input stream. These tests
//! pin that guarantee across schemes, skews, seeds, worker counts, and
//! batch-size boundaries (including partial final batches and batch size 1).

use proptest::prelude::*;

use slb_core::{build_partitioner, PartitionConfig, PartitionerKind};

/// A synthetic stream with a controllable hot-key share: `hot_permille` of
/// the messages are key 0, the rest a deterministic xorshift tail.
fn stream(len: usize, hot_permille: u16, tail_keys: u64, state0: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(len);
    let mut state = state0 | 1;
    for i in 0..len {
        if (i * 1000 / len.max(1)) % 1000 < usize::from(hot_permille) && i % 7 != 0 {
            out.push(0);
        } else {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.push(1 + state % tail_keys);
        }
    }
    out
}

proptest! {
    // 40 cases locally; ci.sh raises this via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(40))]

    /// For all six schemes: routing the stream in chunks via `route_batch`
    /// yields byte-identical worker sequences and load vectors to routing it
    /// one tuple at a time via `route`.
    #[test]
    fn route_batch_equals_scalar_route(
        len in 200usize..3_000,
        hot_permille in 0u16..700,
        tail_keys in 1u64..2_000,
        state0 in any::<u64>(),
        n in 1usize..80,
        seed in any::<u64>(),
        batch in 1usize..300,
    ) {
        let keys = stream(len, hot_permille, tail_keys, state0);
        let cfg = PartitionConfig::new(n).with_seed(seed);
        for kind in PartitionerKind::ALL {
            let mut scalar = build_partitioner::<u64>(kind, &cfg);
            let mut batched = build_partitioner::<u64>(kind, &cfg);

            let scalar_seq: Vec<usize> = keys.iter().map(|k| scalar.route(k)).collect();

            let mut batched_seq = Vec::with_capacity(keys.len());
            let mut out = Vec::new();
            for chunk in keys.chunks(batch) {
                batched.route_batch(chunk, &mut out);
                prop_assert_eq!(out.len(), chunk.len(), "{:?} batch output length", kind);
                batched_seq.extend_from_slice(&out);
            }

            prop_assert_eq!(&scalar_seq, &batched_seq, "{:?} worker sequence diverged", kind);
            prop_assert_eq!(
                scalar.local_loads().counts(),
                batched.local_loads().counts(),
                "{:?} load vectors diverged",
                kind
            );
            prop_assert_eq!(scalar.local_loads().total(), batched.local_loads().total());
        }
    }

    /// Mixing the two APIs mid-stream is also equivalent: a partitioner that
    /// alternates `route` and `route_batch` arrives at the same state.
    #[test]
    fn interleaved_scalar_and_batch_calls_are_equivalent(
        len in 200usize..2_000,
        hot_permille in 0u16..700,
        state0 in any::<u64>(),
        n in 2usize..48,
        seed in any::<u64>(),
        batch in 1usize..97,
    ) {
        let keys = stream(len, hot_permille, 500, state0);
        let cfg = PartitionConfig::new(n).with_seed(seed);
        for kind in PartitionerKind::ALL {
            let mut scalar = build_partitioner::<u64>(kind, &cfg);
            let mut mixed = build_partitioner::<u64>(kind, &cfg);

            let scalar_seq: Vec<usize> = keys.iter().map(|k| scalar.route(k)).collect();

            let mut mixed_seq = Vec::with_capacity(keys.len());
            let mut out = Vec::new();
            for (i, chunk) in keys.chunks(batch).enumerate() {
                if i % 2 == 0 {
                    mixed.route_batch(chunk, &mut out);
                    mixed_seq.extend_from_slice(&out);
                } else {
                    for k in chunk {
                        mixed_seq.push(mixed.route(k));
                    }
                }
            }

            prop_assert_eq!(&scalar_seq, &mixed_seq, "{:?} diverged when mixing APIs", kind);
            prop_assert_eq!(
                scalar.local_loads().counts(),
                mixed.local_loads().counts(),
                "{:?} load vectors diverged",
                kind
            );
        }
    }
}
