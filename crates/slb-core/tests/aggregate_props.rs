//! Property tests for the [`WindowAggregate`] merge laws.
//!
//! The aggregator stage merges worker partials in whatever order windows
//! happen to close across threads and shards, so the engine's correctness
//! rests on the merge being associative and commutative with `empty()` as
//! identity, and on sharding being a lossless partition. These properties
//! are checked over random streams and random split points:
//!
//! * [`CountAggregate`] and [`SumAggregate`] are exact algebras — the laws
//!   hold with literal equality, always.
//! * [`TopKAggregate`] (SpaceSaving partials merged via
//!   `slb_sketch::merge::merged_space_saving`) is exact — and therefore
//!   obeys the laws with equality — while the summaries stay below
//!   capacity. Past capacity the equalities relax to the SpaceSaving
//!   guarantees (additive totals, upper-bound estimates), which are checked
//!   separately in the truncating-regime property.
//!
//! Locally each property runs a modest number of cases; ci.sh raises the
//! count via `PROPTEST_CASES` (see `ProptestConfig::with_cases_env`).

use std::collections::HashMap;

use proptest::prelude::*;

use slb_core::{CountAggregate, SumAggregate, TopKAggregate, WindowAggregate};
use slb_sketch::{FrequencyEstimator, SpaceSaving};

/// Weighted tuple stream: keys from a small universe (so the top-k exact
/// regime is reachable with a modest capacity), weights derived from the
/// key so the shim's lack of tuple strategies costs nothing.
fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            3 => 0u64..4,   // hot keys
            2 => 4u64..20,  // warm keys
            1 => 20u64..64, // tail
        ],
        0..400,
    )
}

fn weight_of(key: u64) -> u64 {
    key % 3 + 1
}

/// Builds one partial from a stream segment.
fn partial_from<A: WindowAggregate<u64>>(agg: &A, segment: &[u64]) -> A::Partial {
    let mut partial = agg.empty();
    for &key in segment {
        agg.observe(&mut partial, &key, weight_of(key));
    }
    partial
}

/// Splits `stream` at two independent cut points into three segments.
fn split3(stream: &[u64], cut_a: usize, cut_b: usize) -> (&[u64], &[u64], &[u64]) {
    let (mut lo, mut hi) = (cut_a % (stream.len() + 1), cut_b % (stream.len() + 1));
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    (&stream[..lo], &stream[lo..hi], &stream[hi..])
}

/// Checks the three merge laws plus the shard law for one aggregate, using
/// `canon` to project partials to a comparable fingerprint.
fn check_laws<A, C>(
    agg: &A,
    stream: &[u64],
    cut_a: usize,
    cut_b: usize,
    shards: usize,
    canon: impl Fn(&A::Partial) -> C,
) -> Result<(), proptest::test_runner::TestCaseError>
where
    A: WindowAggregate<u64>,
    C: PartialEq + std::fmt::Debug,
{
    let (sa, sb, sc) = split3(stream, cut_a, cut_b);
    let build = |segment: &[u64]| partial_from(agg, segment);

    // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    let mut left = build(sa);
    agg.merge(&mut left, build(sb));
    agg.merge(&mut left, build(sc));
    let mut right_tail = build(sb);
    agg.merge(&mut right_tail, build(sc));
    let mut right = build(sa);
    agg.merge(&mut right, right_tail);
    prop_assert_eq!(canon(&left), canon(&right), "associativity violated");

    // Commutativity: a ⊕ b == b ⊕ a.
    let mut ab = build(sa);
    agg.merge(&mut ab, build(sb));
    let mut ba = build(sb);
    agg.merge(&mut ba, build(sa));
    prop_assert_eq!(canon(&ab), canon(&ba), "commutativity violated");

    // Identity: a ⊕ empty == a == empty ⊕ a.
    let mut with_empty = build(sa);
    agg.merge(&mut with_empty, agg.empty());
    prop_assert_eq!(
        canon(&with_empty),
        canon(&build(sa)),
        "right identity violated"
    );
    let mut empty_with = agg.empty();
    agg.merge(&mut empty_with, build(sa));
    prop_assert_eq!(
        canon(&empty_with),
        canon(&build(sa)),
        "left identity violated"
    );

    // Shard partition: merging all shards reproduces the whole.
    let whole = build(stream);
    let mut reassembled = agg.empty();
    for slice in agg.shard(build(stream), shards) {
        agg.merge(&mut reassembled, slice);
    }
    prop_assert_eq!(
        canon(&reassembled),
        canon(&whole),
        "shard+merge lost content"
    );
    Ok(())
}

/// Canonical fingerprint of a SpaceSaving partial: total plus the counters
/// sorted by key (the structure's internal order is irrelevant).
fn summary_canon(ss: &SpaceSaving<u64>) -> (u64, Vec<(u64, u64, u64)>) {
    let mut counters: Vec<(u64, u64, u64)> =
        ss.counters().map(|c| (c.key, c.count, c.error)).collect();
    counters.sort_unstable();
    (ss.total(), counters)
}

fn exact_weighted_counts(stream: &[u64]) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for &key in stream {
        *counts.entry(key).or_insert(0) += weight_of(key);
    }
    counts
}

proptest! {
    // 64 cases locally; ci.sh raises this via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    #[test]
    fn count_aggregate_obeys_the_merge_laws(
        stream in stream_strategy(),
        cut_a in any::<usize>(),
        cut_b in any::<usize>(),
        shards in 1usize..8,
    ) {
        let agg = CountAggregate;
        check_laws(&agg, &stream, cut_a, cut_b, shards, |p| {
            let mut entries: Vec<(u64, u64)> = p.iter().map(|(&k, &v)| (k, v)).collect();
            entries.sort_unstable();
            entries
        })?;
        // The merged whole is the exact weighted count of the stream.
        let whole = partial_from(&agg, &stream);
        prop_assert_eq!(whole, exact_weighted_counts(&stream));
    }

    #[test]
    fn sum_aggregate_obeys_the_merge_laws(
        stream in stream_strategy(),
        cut_a in any::<usize>(),
        cut_b in any::<usize>(),
        shards in 1usize..8,
    ) {
        let agg = SumAggregate;
        check_laws(&agg, &stream, cut_a, cut_b, shards, |p| *p)?;
        let whole = partial_from(&agg, &stream);
        let expected: u64 = stream.iter().map(|&k| weight_of(k)).sum();
        prop_assert_eq!(whole, expected);
    }

    #[test]
    fn top_k_obeys_the_merge_laws_below_capacity(
        stream in stream_strategy(),
        cut_a in any::<usize>(),
        cut_b in any::<usize>(),
        shards in 1usize..8,
    ) {
        // The key universe is 0..64 and the capacity 128, so no summary ever
        // evicts: the SpaceSaving algebra is exact and the laws must hold
        // with equality, through the slb-sketch merge path.
        let agg = TopKAggregate::new(128);
        check_laws(&agg, &stream, cut_a, cut_b, shards, summary_canon)?;
        // Exact regime means the summary IS the weighted count, error-free.
        let whole = partial_from(&agg, &stream);
        let truth = exact_weighted_counts(&stream);
        prop_assert_eq!(whole.len(), truth.len());
        for (key, count) in truth {
            prop_assert_eq!(whole.estimate(&key), count);
            prop_assert_eq!(whole.guaranteed_count(&key), count);
        }
    }

    #[test]
    fn top_k_keeps_summary_guarantees_past_capacity(
        stream in stream_strategy(),
        cut_a in any::<usize>(),
        cut_b in any::<usize>(),
        capacity in 1usize..12,
        shards in 1usize..5,
    ) {
        // Truncating regime: equality laws no longer apply, but the
        // SpaceSaving guarantees must survive merging and sharding in any
        // order — additive totals and upper-bound estimates.
        let agg = TopKAggregate::new(capacity);
        let (sa, sb, sc) = split3(&stream, cut_a, cut_b);
        let mut merged = partial_from(&agg, sb);
        agg.merge(&mut merged, partial_from(&agg, sa));
        agg.merge(&mut merged, partial_from(&agg, sc));
        let total_weight: u64 = stream.iter().map(|&k| weight_of(k)).sum();
        prop_assert_eq!(merged.total(), total_weight, "totals must stay additive");
        let truth = exact_weighted_counts(&stream);
        for c in merged.counters() {
            let t = truth.get(&c.key).copied().unwrap_or(0);
            prop_assert!(c.count >= t, "merged estimate {} below truth {}", c.count, t);
        }
        // Sharding apportions the total by monitored mass, with the
        // unmonitored remainder on shard 0: the shard totals sum back to the
        // original total unless truncation inflated the monitored mass past
        // it (possible after a lossy merge), in which case they sum to the
        // monitored mass — never less than either.
        let monitored: u64 = merged.counters().map(|c| c.count).sum();
        let slices = agg.shard(merged, shards);
        let reassembled_total: u64 = slices.iter().map(|s| s.total()).sum();
        prop_assert_eq!(reassembled_total, total_weight.max(monitored));
    }
}
