//! Configuration shared by all partitioners (the paper's Table III defaults).
//!
//! | Parameter | Description                         | Paper default |
//! |-----------|-------------------------------------|---------------|
//! | `n`       | number of workers                   | 5…100         |
//! | `s`       | number of sources                   | 5             |
//! | `ε`       | imbalance tolerance (D-Choices)     | 10⁻⁴          |
//! | `θ`       | threshold defining the head         | 1/(5n)        |
//!
//! The threshold is expressed as a multiple of `1/n` so that the same
//! configuration can be reused across worker counts: the paper explores
//! `θ ∈ {2/n, 1/n, 1/(2n), 1/(4n), 1/(8n)}` and settles on `1/(5n)` as the
//! conservative default.

use serde::{Deserialize, Serialize};

/// Threshold θ separating the head from the tail, expressed relative to the
/// number of workers `n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadThreshold {
    /// θ = `numerator / (denominator_times_n · n)`.
    pub numerator: f64,
    /// Multiplier of `n` in the denominator.
    pub denominator_times_n: f64,
}

impl HeadThreshold {
    /// The paper's default θ = 1/(5n).
    pub const DEFAULT: HeadThreshold = HeadThreshold {
        numerator: 1.0,
        denominator_times_n: 5.0,
    };

    /// θ = 2/n — the upper end of the theoretically justified range (any key
    /// above this frequency necessarily overloads two workers).
    pub const UPPER: HeadThreshold = HeadThreshold {
        numerator: 2.0,
        denominator_times_n: 1.0,
    };

    /// θ = 1/(8n) — the lowest threshold explored in the paper (Figure 7).
    pub const LOWEST: HeadThreshold = HeadThreshold {
        numerator: 1.0,
        denominator_times_n: 8.0,
    };

    /// Builds θ = `num / (denom_times_n · n)`.
    pub fn new(numerator: f64, denominator_times_n: f64) -> Self {
        assert!(
            numerator > 0.0 && denominator_times_n > 0.0,
            "threshold parts must be positive"
        );
        Self {
            numerator,
            denominator_times_n,
        }
    }

    /// The concrete frequency threshold for a deployment of `n` workers.
    pub fn frequency(&self, workers: usize) -> f64 {
        assert!(workers > 0, "worker count must be positive");
        self.numerator / (self.denominator_times_n * workers as f64)
    }

    /// The sweep of thresholds used in the paper's Figure 7, from 2/n down to
    /// 1/(8n) by successive halving.
    pub fn figure7_sweep() -> Vec<HeadThreshold> {
        vec![
            HeadThreshold::new(2.0, 1.0),
            HeadThreshold::new(1.0, 1.0),
            HeadThreshold::new(1.0, 2.0),
            HeadThreshold::new(1.0, 4.0),
            HeadThreshold::new(1.0, 8.0),
        ]
    }

    /// Human-readable label such as `"2/n"` or `"1/(5n)"`.
    pub fn label(&self) -> String {
        if (self.denominator_times_n - 1.0).abs() < f64::EPSILON {
            format!("{}/n", self.numerator)
        } else {
            format!("{}/({}n)", self.numerator, self.denominator_times_n)
        }
    }
}

impl Default for HeadThreshold {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// How a head-aware partitioner chooses `d`, the number of choices for head
/// keys.
///
/// The default, [`SolverMode::Online`], is the paper's behavior: the
/// D-Choices solver re-runs whenever the head membership changes or every
/// `solver_interval` messages. The other two modes exist for controlled
/// experiments and for the elasticity controller:
///
/// * [`SolverMode::Fixed`] pins `d` to a constant — the static-`d` baselines
///   the controller is measured against.
/// * [`SolverMode::External`] disables the internal solver entirely; `d`
///   only changes through [`crate::Partitioner::apply_choices`], making an
///   external controller the single adaptation authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverMode {
    /// Re-solve `d` online inside the partitioner (paper behavior).
    #[default]
    Online,
    /// Pin `d` to the given constant (clamped to the worker count).
    Fixed(usize),
    /// Never solve internally; `d` changes only via `apply_choices`.
    External,
}

/// Configuration for building a partitioner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of downstream workers `n`.
    pub workers: usize,
    /// Seed for the hash-function family and any randomized choices.
    pub seed: u64,
    /// Imbalance tolerance ε used by the D-Choices solver.
    pub epsilon: f64,
    /// Head threshold θ.
    pub threshold: HeadThreshold,
    /// Number of SpaceSaving counters per source. Defaults to `10·n`
    /// (twice the worst-case head cardinality of `5n` keys at θ = 1/(5n)) so
    /// that frequency estimates for head keys are sharp.
    pub sketch_capacity: usize,
    /// How many messages may elapse between re-runs of the D-Choices solver.
    /// The solver also re-runs whenever the head membership changes.
    pub solver_interval: u64,
    /// How `d` is chosen for head keys (online solver, pinned constant, or
    /// externally controlled). Defaults to [`SolverMode::Online`].
    pub solver: SolverMode,
}

impl PartitionConfig {
    /// Creates a configuration with the paper's defaults for `workers`
    /// downstream instances.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self {
            workers,
            seed: 0,
            epsilon: 1e-4,
            threshold: HeadThreshold::DEFAULT,
            sketch_capacity: 10 * workers,
            solver_interval: 1_000,
            solver: SolverMode::Online,
        }
    }

    /// Sets the RNG/hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the imbalance tolerance ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.epsilon = epsilon;
        self
    }

    /// Sets the head threshold θ.
    pub fn with_threshold(mut self, threshold: HeadThreshold) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the SpaceSaving capacity.
    pub fn with_sketch_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "sketch capacity must be positive");
        self.sketch_capacity = capacity;
        self
    }

    /// Sets the solver re-run interval (in messages).
    pub fn with_solver_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "solver interval must be positive");
        self.solver_interval = interval;
        self
    }

    /// Sets the solver mode (see [`SolverMode`]).
    pub fn with_solver(mut self, solver: SolverMode) -> Self {
        if let SolverMode::Fixed(d) = solver {
            assert!(d >= 2, "a fixed d must be at least 2 (got {d})");
        }
        self.solver = solver;
        self
    }

    /// The concrete frequency threshold θ for this worker count.
    pub fn theta(&self) -> f64 {
        self.threshold.frequency(self.workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_is_one_over_5n() {
        let cfg = PartitionConfig::new(50);
        assert!((cfg.theta() - 1.0 / 250.0).abs() < 1e-12);
        assert_eq!(cfg.threshold.label(), "1/(5n)");
    }

    #[test]
    fn threshold_sweep_matches_figure7() {
        let sweep = HeadThreshold::figure7_sweep();
        assert_eq!(sweep.len(), 5);
        let n = 10;
        let freqs: Vec<f64> = sweep.iter().map(|t| t.frequency(n)).collect();
        assert!((freqs[0] - 0.2).abs() < 1e-12, "2/n at n=10");
        assert!((freqs[4] - 0.0125).abs() < 1e-12, "1/(8n) at n=10");
        for w in freqs.windows(2) {
            assert!(w[0] > w[1], "sweep must be strictly decreasing");
        }
    }

    #[test]
    fn threshold_labels() {
        assert_eq!(HeadThreshold::UPPER.label(), "2/n");
        assert_eq!(HeadThreshold::new(1.0, 2.0).label(), "1/(2n)");
    }

    #[test]
    fn config_builders_apply() {
        let cfg = PartitionConfig::new(20)
            .with_seed(7)
            .with_epsilon(1e-3)
            .with_threshold(HeadThreshold::UPPER)
            .with_sketch_capacity(64)
            .with_solver_interval(10);
        assert_eq!(cfg.workers, 20);
        assert_eq!(cfg.seed, 7);
        assert!((cfg.epsilon - 1e-3).abs() < 1e-15);
        assert_eq!(cfg.sketch_capacity, 64);
        assert_eq!(cfg.solver_interval, 10);
        assert!((cfg.theta() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn default_sketch_capacity_scales_with_workers() {
        assert_eq!(PartitionConfig::new(5).sketch_capacity, 50);
        assert_eq!(PartitionConfig::new(100).sketch_capacity, 1_000);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = PartitionConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn non_positive_epsilon_panics() {
        let _ = PartitionConfig::new(5).with_epsilon(0.0);
    }

    #[test]
    fn solver_mode_defaults_to_online() {
        assert_eq!(PartitionConfig::new(5).solver, SolverMode::Online);
        assert_eq!(SolverMode::default(), SolverMode::Online);
    }

    #[test]
    fn solver_mode_builder_applies() {
        let cfg = PartitionConfig::new(8).with_solver(SolverMode::Fixed(3));
        assert_eq!(cfg.solver, SolverMode::Fixed(3));
        let cfg = cfg.with_solver(SolverMode::External);
        assert_eq!(cfg.solver, SolverMode::External);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn fixed_d_below_two_panics() {
        let _ = PartitionConfig::new(5).with_solver(SolverMode::Fixed(1));
    }
}
