//! Online tracking of the head of the key distribution.
//!
//! The head `H = {k : p_k ≥ θ}` is the set of keys frequent enough that two
//! choices cannot balance them (Section III-A). Each source tracks the head
//! of its own sub-stream with a SpaceSaving summary; because the sources
//! receive statistically identical sub-streams (they are fed via shuffle
//! grouping), the local head converges to the global one without
//! coordination.
//!
//! [`HeadTracker`] wraps the summary and exposes exactly what the
//! partitioners need:
//! * membership tests ("is this key currently in the head?"),
//! * the estimated relative frequencies of the head keys in rank order, and
//! * the total estimated mass of the head (the solver needs the tail mass
//!   `1 − Σ_{k∈H} p_k`).

use std::hash::Hash;

use slb_sketch::{FrequencyEstimator, SpaceSaving};

/// A snapshot of the head of the distribution at some point in the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadSnapshot<K> {
    /// Head keys in decreasing frequency order.
    pub keys: Vec<K>,
    /// Estimated relative frequencies of those keys (same order).
    pub frequencies: Vec<f64>,
}

impl<K> HeadSnapshot<K> {
    /// Number of keys in the head.
    pub fn cardinality(&self) -> usize {
        self.keys.len()
    }

    /// Total estimated probability mass of the head.
    pub fn mass(&self) -> f64 {
        self.frequencies.iter().sum()
    }

    /// Estimated probability mass of the tail (everything not in the head).
    pub fn tail_mass(&self) -> f64 {
        (1.0 - self.mass()).max(0.0)
    }
}

/// Tracks the head of a key distribution online.
#[derive(Debug, Clone)]
pub struct HeadTracker<K: Eq + Hash + Clone> {
    sketch: SpaceSaving<K>,
    theta: f64,
    /// Number of observations when the head membership last changed.
    last_change_at: u64,
    /// Cached sorted head keys, refreshed on every observation cheaply by
    /// checking membership of the observed key only.
    generation: u64,
}

impl<K: Eq + Hash + Clone> HeadTracker<K> {
    /// Creates a tracker with `capacity` SpaceSaving counters and threshold
    /// `theta` (a relative frequency in `(0, 1]`).
    ///
    /// # Panics
    /// Panics if `theta` is not in `(0, 1]` or `capacity == 0`.
    pub fn new(capacity: usize, theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "theta must be in (0, 1], got {theta}"
        );
        Self {
            sketch: SpaceSaving::new(capacity),
            theta,
            last_change_at: 0,
            generation: 0,
        }
    }

    /// The frequency threshold θ.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Total number of observations so far.
    #[inline]
    pub fn total(&self) -> u64 {
        self.sketch.total()
    }

    /// Observes one occurrence of `key` and reports whether the key is in
    /// the head *after* the update.
    ///
    /// Uses a single SpaceSaving probe: the sketch reports the key's
    /// estimate before and after the update, and the before/after head
    /// membership is recomputed from those counts rather than by bracketing
    /// the update with two extra `is_head` lookups.
    pub fn observe(&mut self, key: &K) -> bool {
        let total_before = self.sketch.total();
        let (est_before, est_after) = self.sketch.observe_counts(key);
        let was_head = self.crosses_threshold(est_before, total_before);
        let now_head = self.crosses_threshold(est_after, total_before + 1);
        if was_head != now_head {
            self.last_change_at = self.sketch.total();
            self.generation += 1;
        }
        now_head
    }

    /// The head-membership predicate over an (estimate, total) pair; shared
    /// by [`Self::is_head`] and the single-probe [`Self::observe`].
    #[inline]
    fn crosses_threshold(&self, estimate: u64, total: u64) -> bool {
        if total < self.warmup_messages() {
            return false;
        }
        let cut = (self.theta * total as f64).ceil() as u64;
        estimate >= cut.max(1)
    }

    /// True if `key` is currently estimated to be in the head.
    ///
    /// A key is in the head when its estimated count is at least
    /// `θ · total`. Until the stream has seen at least `2/θ` messages no key
    /// can qualify: on a shorter stream a single occurrence already clears
    /// the threshold, which would cause pointless replication at start-up.
    pub fn is_head(&self, key: &K) -> bool {
        self.crosses_threshold(self.sketch.estimate(key), self.sketch.total())
    }

    /// Number of messages that must be observed before any key can be
    /// classified as head.
    #[inline]
    fn warmup_messages(&self) -> u64 {
        (2.0 / self.theta).ceil() as u64
    }

    /// Monotone counter incremented every time head membership changes;
    /// partitioners use it to invalidate cached solver results.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current head as a sorted snapshot.
    pub fn snapshot(&self) -> HeadSnapshot<K> {
        let total = self.sketch.total();
        if total < self.warmup_messages() {
            return HeadSnapshot {
                keys: Vec::new(),
                frequencies: Vec::new(),
            };
        }
        let hh = self.sketch.heavy_hitters(self.theta);
        let mut keys = Vec::with_capacity(hh.len());
        let mut frequencies = Vec::with_capacity(hh.len());
        for (k, c) in hh {
            keys.push(k);
            frequencies.push(c as f64 / total as f64);
        }
        HeadSnapshot { keys, frequencies }
    }

    /// Estimated relative frequency of `key`.
    pub fn frequency(&self, key: &K) -> f64 {
        self.sketch.frequency(key)
    }

    /// Read-only access to the underlying SpaceSaving summary (used by the
    /// distributed-merge audit paths and by tests).
    pub fn sketch(&self) -> &SpaceSaving<K> {
        &self.sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_is_head_on_an_empty_or_tiny_stream() {
        let mut tracker: HeadTracker<u64> = HeadTracker::new(50, 0.1);
        assert!(!tracker.is_head(&1));
        // Fewer than 2/θ = 20 messages: still no head, even for a key that
        // makes up 100% of what has been seen.
        for _ in 0..15 {
            tracker.observe(&1);
        }
        assert!(!tracker.is_head(&1));
        assert_eq!(tracker.snapshot().cardinality(), 0);
    }

    #[test]
    fn hot_key_enters_head_and_cold_key_stays_out() {
        let mut tracker: HeadTracker<u64> = HeadTracker::new(100, 0.05);
        // Key 7 gets 30% of a 10k-message stream; keys 1000.. get the rest,
        // each well below 5%.
        let mut state = 1u64;
        for i in 0..10_000u64 {
            let key = if i % 10 < 3 {
                7
            } else {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                1_000 + state % 500
            };
            tracker.observe(&key);
        }
        assert!(tracker.is_head(&7));
        assert!(!tracker.is_head(&1_042));
        let snap = tracker.snapshot();
        assert!(snap.keys.contains(&7));
        assert!((tracker.frequency(&7) - 0.3).abs() < 0.05);
        assert!(snap.mass() < 1.0);
        assert!(snap.tail_mass() > 0.5);
    }

    #[test]
    fn snapshot_is_sorted_by_frequency() {
        let mut tracker: HeadTracker<u64> = HeadTracker::new(50, 0.01);
        for i in 0..10_000u64 {
            let key = match i % 10 {
                0..=4 => 1, // 50%
                5..=7 => 2, // 30%
                _ => 3,     // 20%
            };
            tracker.observe(&key);
        }
        let snap = tracker.snapshot();
        assert_eq!(snap.keys, vec![1, 2, 3]);
        for w in snap.frequencies.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!((snap.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generation_bumps_when_membership_changes() {
        let mut tracker: HeadTracker<u64> = HeadTracker::new(50, 0.5);
        let g0 = tracker.generation();
        // Key 1 becomes a majority key -> head membership changes once it
        // crosses both the warm-up and the threshold.
        for _ in 0..10 {
            tracker.observe(&1);
        }
        assert!(tracker.is_head(&1));
        assert!(tracker.generation() > g0);
        // Flood with other keys until key 1 drops out of the head. Implicit
        // exits (the key is simply not observed any more) do not bump the
        // generation — consumers rely on their periodic refresh for that —
        // but membership itself must reflect the new reality.
        for i in 0..100u64 {
            tracker.observe(&(i % 10 + 2));
        }
        assert!(!tracker.is_head(&1));
    }

    #[test]
    fn observe_returns_current_membership() {
        let mut tracker: HeadTracker<u64> = HeadTracker::new(10, 0.4);
        let mut last = false;
        for _ in 0..10 {
            last = tracker.observe(&9);
        }
        assert!(
            last,
            "a key taking 100% of a warm stream must be in the head"
        );
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn invalid_theta_panics() {
        let _: HeadTracker<u64> = HeadTracker::new(10, 0.0);
    }

    #[test]
    fn single_probe_observe_keeps_generation_semantics() {
        // The single-probe observe must behave exactly like the original
        // bracketed form: return the post-update membership, and bump the
        // generation iff the observed key's membership changed across the
        // update. Checked against `is_head` on a skewed stream that drives
        // keys in and out of the head (including eviction churn: capacity 8
        // is far below the key universe).
        // θ = 0.36 sits inside the band the bursty key's cumulative ratio
        // oscillates across (2/3 during on-blocks, decaying toward 1/3), so
        // the key enters and leaves the head repeatedly.
        let mut tracker: HeadTracker<u64> = HeadTracker::new(8, 0.36);
        let mut state = 0x9e37_79b9u64;
        let mut bumps = 0u64;
        for i in 0..30_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Key 1 is hot in bursts, so it repeatedly enters and leaves the
            // head; the rest is a churning tail.
            let key = if (i / 1_000) % 2 == 0 && i % 3 != 0 {
                1
            } else {
                10 + state % 40
            };
            let was = tracker.is_head(&key);
            let generation_before = tracker.generation();
            let now = tracker.observe(&key);
            assert_eq!(
                now,
                tracker.is_head(&key),
                "return is post-update membership"
            );
            let bumped = tracker.generation() != generation_before;
            assert_eq!(
                bumped,
                was != now,
                "generation bumps iff membership changed"
            );
            if bumped {
                bumps += 1;
                assert_eq!(tracker.generation(), generation_before + 1);
            }
        }
        assert!(bumps >= 2, "stream must actually exercise transitions");
    }
}
