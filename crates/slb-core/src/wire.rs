//! Encoding hooks that let aggregate partials cross process boundaries.
//!
//! The engine's worker → aggregator hop ships per-window partial aggregates.
//! Inside one process they move by value through channels; a networked
//! transport (the `slb-net` crate) has to turn them into bytes instead.
//! [`WirePartial`] is the contract a partial type implements to be
//! transportable: a deterministic-length, self-delimiting binary encoding
//! against plain byte buffers, with decoding that reports malformed input as
//! an error rather than panicking (a remote peer's bytes are never trusted).
//!
//! The trait lives here — next to [`WindowAggregate`](crate::WindowAggregate)
//! — rather than in the transport crate so that every aggregate the engine
//! can run is transportable by construction, without the transport crate
//! needing to know each partial's internals.
//!
//! ## Format conventions
//!
//! All integers are little-endian fixed width. Collections are a `u32`
//! element count followed by the elements. The encoding is *self-delimiting*:
//! decoding consumes exactly the bytes encoding produced and leaves the rest
//! of the input untouched, so partials can be embedded inside larger frames.
//! Round-trip identity (`decode(encode(p)) == p` up to aggregate content) is
//! pinned by the wire property suite in `slb-net`.

use std::collections::HashMap;

use slb_sketch::space_saving::Counter;
use slb_sketch::{FrequencyEstimator, SpaceSaving};

/// Error produced when decoding a partial from untrusted bytes fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialDecodeError(pub &'static str);

impl std::fmt::Display for PartialDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed partial: {}", self.0)
    }
}

impl std::error::Error for PartialDecodeError {}

/// Reads a little-endian `u64`, advancing the input slice.
pub fn read_u64(input: &mut &[u8]) -> Result<u64, PartialDecodeError> {
    if input.len() < 8 {
        return Err(PartialDecodeError("truncated u64"));
    }
    let (bytes, rest) = input.split_at(8);
    *input = rest;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte split")))
}

/// Reads a little-endian `u32`, advancing the input slice.
pub fn read_u32(input: &mut &[u8]) -> Result<u32, PartialDecodeError> {
    if input.len() < 4 {
        return Err(PartialDecodeError("truncated u32"));
    }
    let (bytes, rest) = input.split_at(4);
    *input = rest;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte split")))
}

/// Appends a little-endian `u64`.
pub fn write_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn write_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// A per-window partial aggregate that can be transported as bytes.
///
/// Implementations must be self-delimiting and must reject malformed input
/// with [`PartialDecodeError`] instead of panicking. Decoding the bytes an
/// implementation produced must reproduce the partial's aggregate content
/// exactly (for the exact aggregates, structural equality; for SpaceSaving
/// summaries, identical counters, total, and capacity).
pub trait WirePartial: Sized {
    /// Appends this partial's encoding to `out`.
    fn encode_partial(&self, out: &mut Vec<u8>);

    /// Decodes one partial from the front of `input`, advancing it past the
    /// consumed bytes.
    fn decode_partial(input: &mut &[u8]) -> Result<Self, PartialDecodeError>;
}

/// [`crate::CountAggregate`] partials: `u32` entry count, then `(key, count)`
/// pairs. Entry order is not part of the content (it is a hash map), so
/// encodings of equal maps may differ byte-wise while decoding to equal maps.
impl WirePartial for HashMap<u64, u64> {
    fn encode_partial(&self, out: &mut Vec<u8>) {
        write_u32(out, self.len() as u32);
        for (&key, &count) in self {
            write_u64(out, key);
            write_u64(out, count);
        }
    }

    fn decode_partial(input: &mut &[u8]) -> Result<Self, PartialDecodeError> {
        let entries = read_u32(input)? as usize;
        // 16 bytes per entry must still be present; guards allocation from a
        // corrupt length prefix.
        if input.len() < entries.saturating_mul(16) {
            return Err(PartialDecodeError("count map shorter than its length"));
        }
        let mut map = HashMap::with_capacity(entries);
        for _ in 0..entries {
            let key = read_u64(input)?;
            let count = read_u64(input)?;
            if map.insert(key, count).is_some() {
                return Err(PartialDecodeError("duplicate key in count map"));
            }
        }
        Ok(map)
    }
}

/// [`crate::SumAggregate`] partials: one `u64`.
impl WirePartial for u64 {
    fn encode_partial(&self, out: &mut Vec<u8>) {
        write_u64(out, *self);
    }

    fn decode_partial(input: &mut &[u8]) -> Result<Self, PartialDecodeError> {
        read_u64(input)
    }
}

/// [`crate::TopKAggregate`] partials: capacity, total, then the monitored
/// counters as `(key, count, error)` triples. Decoding rebuilds the summary
/// with [`SpaceSaving::from_counters`], which preserves counters, estimates,
/// and totals exactly.
impl WirePartial for SpaceSaving<u64> {
    fn encode_partial(&self, out: &mut Vec<u8>) {
        write_u32(out, self.capacity() as u32);
        write_u64(out, self.total());
        // Sorted order keeps the encoding deterministic for equal summaries.
        let counters = self.sorted_counters();
        write_u32(out, counters.len() as u32);
        for c in &counters {
            write_u64(out, c.key);
            write_u64(out, c.count);
            write_u64(out, c.error);
        }
    }

    fn decode_partial(input: &mut &[u8]) -> Result<Self, PartialDecodeError> {
        let capacity = read_u32(input)? as usize;
        if capacity == 0 {
            return Err(PartialDecodeError("summary capacity must be positive"));
        }
        let total = read_u64(input)?;
        let counters = read_u32(input)? as usize;
        if counters > capacity {
            return Err(PartialDecodeError("more counters than capacity"));
        }
        if input.len() < counters.saturating_mul(24) {
            return Err(PartialDecodeError("summary shorter than its length"));
        }
        let mut list = Vec::with_capacity(counters);
        let mut seen = std::collections::HashSet::with_capacity(counters);
        for _ in 0..counters {
            let key = read_u64(input)?;
            let count = read_u64(input)?;
            let error = read_u64(input)?;
            if error > count {
                return Err(PartialDecodeError("counter error exceeds its count"));
            }
            // `from_counters` asserts on duplicates; untrusted input must
            // error here instead of tripping that assert.
            if !seen.insert(key) {
                return Err(PartialDecodeError("duplicate key in summary"));
            }
            list.push(Counter { key, count, error });
        }
        Ok(SpaceSaving::from_counters(capacity, total, list))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<P: WirePartial>(p: &P) -> P {
        let mut buf = Vec::new();
        p.encode_partial(&mut buf);
        let mut input = buf.as_slice();
        let back = P::decode_partial(&mut input).expect("decode of own encoding");
        assert!(input.is_empty(), "decode must consume exactly the encoding");
        back
    }

    #[test]
    fn count_map_roundtrips() {
        let mut map = HashMap::new();
        for k in 0..200u64 {
            map.insert(k * 7, k + 1);
        }
        assert_eq!(roundtrip(&map), map);
        assert_eq!(roundtrip(&HashMap::new()), HashMap::new());
    }

    #[test]
    fn sum_roundtrips_and_is_self_delimiting() {
        let mut buf = Vec::new();
        42u64.encode_partial(&mut buf);
        7u64.encode_partial(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(u64::decode_partial(&mut input), Ok(42));
        assert_eq!(u64::decode_partial(&mut input), Ok(7));
        assert!(input.is_empty());
    }

    #[test]
    fn space_saving_roundtrips_counters_total_capacity() {
        let mut s = SpaceSaving::<u64>::new(8);
        for i in 0..100u64 {
            s.observe(&(i % 13));
        }
        let back = roundtrip(&s);
        assert_eq!(back.capacity(), s.capacity());
        assert_eq!(back.total(), s.total());
        // Counter content is order-free: ties among equal counts may list in
        // any order, so compare key-sorted.
        let by_key = |summary: &SpaceSaving<u64>| {
            let mut counters = summary.sorted_counters();
            counters.sort_by_key(|c| c.key);
            counters
        };
        assert_eq!(by_key(&back), by_key(&s));
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let mut map = HashMap::new();
        map.insert(1u64, 2u64);
        map.insert(3, 4);
        let mut buf = Vec::new();
        map.encode_partial(&mut buf);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert!(
                HashMap::<u64, u64>::decode_partial(&mut input).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn duplicate_summary_keys_error_not_panic() {
        // capacity=4, total=10, two counters with the same key: must be a
        // decode error, not the `from_counters` duplicate-key assert.
        let mut buf = Vec::new();
        write_u32(&mut buf, 4);
        write_u64(&mut buf, 10);
        write_u32(&mut buf, 2);
        for _ in 0..2 {
            write_u64(&mut buf, 7); // key
            write_u64(&mut buf, 5); // count
            write_u64(&mut buf, 0); // error
        }
        match SpaceSaving::<u64>::decode_partial(&mut buf.as_slice()) {
            Err(e) => assert_eq!(e, PartialDecodeError("duplicate key in summary")),
            Ok(_) => panic!("duplicate keys must not decode"),
        }
    }

    #[test]
    fn corrupt_summary_headers_error() {
        let mut s = SpaceSaving::<u64>::new(4);
        s.observe(&1u64);
        let mut buf = Vec::new();
        s.encode_partial(&mut buf);
        // Zero capacity.
        let mut corrupt = buf.clone();
        corrupt[..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(SpaceSaving::<u64>::decode_partial(&mut corrupt.as_slice()).is_err());
        // Counter count past capacity.
        let mut corrupt = buf.clone();
        corrupt[12..16].copy_from_slice(&1000u32.to_le_bytes());
        assert!(SpaceSaving::<u64>::decode_partial(&mut corrupt.as_slice()).is_err());
    }

    #[test]
    fn oversized_length_prefix_errors_without_allocating() {
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX);
        assert!(HashMap::<u64, u64>::decode_partial(&mut buf.as_slice()).is_err());
    }
}
