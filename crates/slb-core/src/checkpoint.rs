//! Worker checkpoints: the durable snapshot a worker takes at every window
//! finalization so that a crash mid-window loses at most the open window.
//!
//! A checkpoint captures everything the worker's deterministic result depends
//! on at a window boundary: how many windows it has closed, its tuple and
//! per-phase counters, the per-source sequence cursor (which prefix of every
//! source's stream it has consumed), the distinct-key set, and the in-flight
//! partial aggregates of still-open windows. Partials cross the snapshot
//! boundary through their [`WirePartial`](crate::WirePartial) encoding, each
//! wrapped in a length-prefixed blob so the checkpoint itself decodes without
//! knowing the aggregate type.
//!
//! Timing state (latency samples, phase spans) is deliberately *not*
//! checkpointed: it does not feed the deterministic windowed counts, and
//! snapshotting every latency sample at every window boundary would make
//! checkpointing O(run²). See `docs/FAULTS.md` for the recovery argument.
//!
//! The encoding follows the [`crate::wire`] conventions: little-endian fixed
//! width integers, `u32`-counted collections, self-delimiting, and total —
//! malformed bytes produce a [`PartialDecodeError`], never a panic.

use crate::wire::{read_u32, read_u64, write_u32, write_u64, PartialDecodeError};

/// The state of one still-open window inside a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenWindowState {
    /// The window's id.
    pub window: u64,
    /// How many of the expected per-source `CloseWindow` markers have
    /// arrived for this window.
    pub closes_seen: u64,
    /// The in-flight partial aggregate, as its `WirePartial` encoding, or
    /// `None` when the window has seen close markers but no tuples yet.
    pub partial: Option<Vec<u8>>,
}

/// A consistent snapshot of a worker's deterministic state, taken at a
/// window-finalization boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerCheckpoint {
    /// Index of the worker that took the snapshot.
    pub worker: u64,
    /// Number of windows this worker has finalized and shipped downstream.
    pub windows_closed: u64,
    /// Total tuples processed so far.
    pub processed: u64,
    /// Tuples processed per scenario phase.
    pub phase_counts: Vec<u64>,
    /// Per-source cursor: the sequence number of the next message expected
    /// from each source. Sources replay from exactly these positions.
    pub next_seq: Vec<u64>,
    /// The distinct keys observed so far, sorted ascending (canonical form).
    pub state_keys: Vec<u64>,
    /// Still-open windows, sorted ascending by window id (canonical form).
    pub open: Vec<OpenWindowState>,
}

impl WorkerCheckpoint {
    /// Appends the checkpoint's self-delimiting encoding to `out`.
    ///
    /// # Panics
    /// Panics if `state_keys` or `open` are not sorted strictly ascending —
    /// the canonical form the worker stage produces.
    pub fn encode(&self, out: &mut Vec<u8>) {
        assert!(
            self.state_keys.windows(2).all(|w| w[0] < w[1]),
            "checkpoint state keys must be sorted and distinct"
        );
        assert!(
            self.open.windows(2).all(|w| w[0].window < w[1].window),
            "checkpoint open windows must be sorted and distinct"
        );
        write_u64(out, self.worker);
        write_u64(out, self.windows_closed);
        write_u64(out, self.processed);
        write_u32(out, self.phase_counts.len() as u32);
        for &c in &self.phase_counts {
            write_u64(out, c);
        }
        write_u32(out, self.next_seq.len() as u32);
        for &s in &self.next_seq {
            write_u64(out, s);
        }
        write_u32(out, self.state_keys.len() as u32);
        for &k in &self.state_keys {
            write_u64(out, k);
        }
        write_u32(out, self.open.len() as u32);
        for w in &self.open {
            write_u64(out, w.window);
            write_u64(out, w.closes_seen);
            match &w.partial {
                None => out.push(0),
                Some(blob) => {
                    out.push(1);
                    write_u32(out, blob.len() as u32);
                    out.extend_from_slice(blob);
                }
            }
        }
    }

    /// Decodes one checkpoint from the front of `input`, advancing it past
    /// the consumed bytes. Total: malformed input errors, never panics.
    pub fn decode(input: &mut &[u8]) -> Result<Self, PartialDecodeError> {
        let worker = read_u64(input)?;
        let windows_closed = read_u64(input)?;
        let processed = read_u64(input)?;
        let phase_counts = read_u64_list(input, "phase counts")?;
        let next_seq = read_u64_list(input, "sequence cursors")?;
        let state_keys = read_u64_list(input, "state keys")?;
        if !state_keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(PartialDecodeError("state keys not sorted and distinct"));
        }
        let windows = read_u32(input)? as usize;
        // Each open-window entry is at least 17 bytes (window + closes +
        // flag); guards allocation from a corrupt length prefix.
        if input.len() < windows.saturating_mul(17) {
            return Err(PartialDecodeError("open windows shorter than their count"));
        }
        let mut open = Vec::with_capacity(windows);
        let mut last_window = None;
        for _ in 0..windows {
            let window = read_u64(input)?;
            if last_window.is_some_and(|w| w >= window) {
                return Err(PartialDecodeError("open windows not sorted and distinct"));
            }
            last_window = Some(window);
            let closes_seen = read_u64(input)?;
            let partial = match take_u8(input)? {
                0 => None,
                1 => {
                    let len = read_u32(input)? as usize;
                    if input.len() < len {
                        return Err(PartialDecodeError("partial blob shorter than its length"));
                    }
                    let (blob, rest) = input.split_at(len);
                    *input = rest;
                    Some(blob.to_vec())
                }
                _ => return Err(PartialDecodeError("bad partial-presence flag")),
            };
            open.push(OpenWindowState {
                window,
                closes_seen,
                partial,
            });
        }
        Ok(Self {
            worker,
            windows_closed,
            processed,
            phase_counts,
            next_seq,
            state_keys,
            open,
        })
    }
}

fn take_u8(input: &mut &[u8]) -> Result<u8, PartialDecodeError> {
    let (&byte, rest) = input
        .split_first()
        .ok_or(PartialDecodeError("truncated u8"))?;
    *input = rest;
    Ok(byte)
}

fn read_u64_list(input: &mut &[u8], what: &'static str) -> Result<Vec<u64>, PartialDecodeError> {
    let len = read_u32(input)? as usize;
    if input.len() < len.saturating_mul(8) {
        let _ = what;
        return Err(PartialDecodeError("list shorter than its length"));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_u64(input)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkerCheckpoint {
        WorkerCheckpoint {
            worker: 3,
            windows_closed: 7,
            processed: 12_345,
            phase_counts: vec![5_000, 7_345],
            next_seq: vec![40, 41, 39],
            state_keys: vec![1, 5, 9, 200],
            open: vec![
                OpenWindowState {
                    window: 7,
                    closes_seen: 1,
                    partial: Some(vec![0xde, 0xad, 0xbe, 0xef]),
                },
                OpenWindowState {
                    window: 8,
                    closes_seen: 0,
                    partial: None,
                },
            ],
        }
    }

    #[test]
    fn roundtrips_and_is_self_delimiting() {
        let cp = sample();
        let mut buf = Vec::new();
        cp.encode(&mut buf);
        buf.extend_from_slice(b"trailing");
        let mut input = buf.as_slice();
        let back = WorkerCheckpoint::decode(&mut input).expect("own encoding decodes");
        assert_eq!(back, cp);
        assert_eq!(input, b"trailing");
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let cp = WorkerCheckpoint::default();
        let mut buf = Vec::new();
        cp.encode(&mut buf);
        assert_eq!(
            WorkerCheckpoint::decode(&mut buf.as_slice()),
            Ok(cp),
            "default checkpoint must round-trip"
        );
    }

    #[test]
    fn every_strict_prefix_errors() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert!(
                WorkerCheckpoint::decode(&mut input).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn unsorted_state_keys_error() {
        let mut cp = sample();
        cp.state_keys = vec![9, 1];
        let mut buf = Vec::new();
        write_u64(&mut buf, cp.worker);
        write_u64(&mut buf, cp.windows_closed);
        write_u64(&mut buf, cp.processed);
        write_u32(&mut buf, 0);
        write_u32(&mut buf, 0);
        write_u32(&mut buf, 2);
        write_u64(&mut buf, 9);
        write_u64(&mut buf, 1);
        write_u32(&mut buf, 0);
        assert!(WorkerCheckpoint::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn bad_presence_flag_errors() {
        let mut buf = Vec::new();
        let cp = WorkerCheckpoint {
            open: vec![OpenWindowState {
                window: 0,
                closes_seen: 0,
                partial: None,
            }],
            ..WorkerCheckpoint::default()
        };
        cp.encode(&mut buf);
        *buf.last_mut().unwrap() = 7;
        assert_eq!(
            WorkerCheckpoint::decode(&mut buf.as_slice()),
            Err(PartialDecodeError("bad partial-presence flag"))
        );
    }

    #[test]
    fn oversized_length_prefixes_error_without_allocating() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0);
        write_u64(&mut buf, 0);
        write_u64(&mut buf, 0);
        write_u32(&mut buf, u32::MAX);
        assert!(WorkerCheckpoint::decode(&mut buf.as_slice()).is_err());
    }
}
