//! Durable on-disk checkpoint storage for worker recovery.
//!
//! The in-memory `CheckpointStore` in `slb-engine` stands in for a durable
//! medium when faults are *simulated* inside one process. This module is
//! the real medium for process-level fault tolerance: a respawned
//! `slb-node worker` has nothing but its checkpoint directory, so the
//! bytes it reads back must survive a crash at **any** instruction of the
//! writer — including mid-`write` and mid-`rename`.
//!
//! Two mechanisms provide that:
//!
//! * **Atomic replace.** A save writes the framed checkpoint to a
//!   temporary file, `sync_all`s it, renames the current checkpoint to the
//!   `.prev` generation, and renames the temporary file into place.
//!   Renames within a directory are atomic on POSIX, so at every instant
//!   the directory holds at least one intact generation.
//! * **Self-validating framing.** Each file carries a magic, a
//!   monotonically increasing generation counter, the payload length, and
//!   a CRC-32 of the payload. [`decode_checkpoint_file`] is **total**:
//!   truncated, bit-flipped, or arbitrary bytes produce a
//!   [`CheckpointFileError`], never a panic — and the store's
//!   [`DurableCheckpointStore::load`] treats a corrupt current file as
//!   recoverable by falling back to the previous generation.
//!
//! The payload is opaque here (the store neither knows nor cares that the
//! engine puts an encoded [`crate::WorkerCheckpoint`] in it); totality of
//! the *payload* decode is the checkpoint codec's own property.
//!
//! ## On-disk format
//!
//! ```text
//! file := magic:"SLBCKPT1" generation:u64le payload_len:u32le crc32:u32le payload
//! ```
//!
//! `crc32` is the IEEE CRC-32 (the zlib/PNG polynomial, reflected,
//! init/xorout `0xFFFF_FFFF`) of the payload bytes alone — the header
//! fields are covered implicitly because a corrupt `payload_len` changes
//! which bytes the CRC is computed over.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File magic: identifies a checkpoint file and pins format version 1.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"SLBCKPT1";

/// Fixed header length: magic + generation + payload length + CRC.
const HEADER_LEN: usize = 8 + 8 + 4 + 4;

/// Why a checkpoint file failed to load. `Corrupt` is *expected* after a
/// crash mid-save (a torn write to the temporary file that a later crash
/// left in place never reaches the current name, but defense in depth is
/// the point of the CRC); the store recovers by falling back one
/// generation.
#[derive(Debug)]
pub enum CheckpointFileError {
    /// The file could not be read (not found, permissions, I/O error).
    Io(std::io::Error),
    /// The bytes are not an intact checkpoint file: bad magic, truncated
    /// header or payload, length/CRC mismatch, or trailing garbage.
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointFileError::Io(e) => write!(f, "checkpoint file unreadable: {e}"),
            CheckpointFileError::Corrupt(what) => write!(f, "checkpoint file corrupt: {what}"),
        }
    }
}

impl std::error::Error for CheckpointFileError {}

impl From<std::io::Error> for CheckpointFileError {
    fn from(e: std::io::Error) -> Self {
        CheckpointFileError::Io(e)
    }
}

/// IEEE CRC-32 lookup table (reflected polynomial `0xEDB8_8320`), built at
/// compile time so the hot save path pays one table lookup per byte.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (zlib/PNG variant) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Frames `payload` as one checkpoint file image for `generation`.
pub fn encode_checkpoint_file(generation: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one checkpoint file image into `(generation, payload)`.
///
/// Total: any byte sequence that is not an intact file — wrong magic,
/// truncation anywhere, a payload length disagreeing with the file size,
/// a CRC mismatch from a bit flip — returns
/// [`CheckpointFileError::Corrupt`]; no input panics.
pub fn decode_checkpoint_file(bytes: &[u8]) -> Result<(u64, Vec<u8>), CheckpointFileError> {
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointFileError::Corrupt("shorter than the header"));
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CheckpointFileError::Corrupt("bad magic"));
    }
    let generation = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() < payload_len {
        return Err(CheckpointFileError::Corrupt("payload truncated"));
    }
    if payload.len() > payload_len {
        return Err(CheckpointFileError::Corrupt("trailing bytes after payload"));
    }
    if crc32(payload) != crc {
        return Err(CheckpointFileError::Corrupt("payload CRC mismatch"));
    }
    Ok((generation, payload.to_vec()))
}

/// A per-worker durable checkpoint slot backed by files in a directory:
/// `worker-{w}.ckpt` (current generation), `worker-{w}.ckpt.prev` (the one
/// before it), and a transient `worker-{w}.ckpt.tmp` that exists only
/// mid-save. See the module docs for the crash-safety argument.
#[derive(Debug)]
pub struct DurableCheckpointStore {
    current: PathBuf,
    prev: PathBuf,
    tmp: PathBuf,
    generation: u64,
}

impl DurableCheckpointStore {
    /// Opens (creating the directory if needed) worker `worker`'s slot
    /// under `dir`. If intact generations already exist — this process is
    /// a respawn — the next save continues the generation counter past
    /// the newest loadable one.
    pub fn open(dir: &Path, worker: usize) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let base = dir.join(format!("worker-{worker}.ckpt"));
        let mut store = Self {
            prev: base.with_extension("ckpt.prev"),
            tmp: base.with_extension("ckpt.tmp"),
            current: base,
            generation: 0,
        };
        if let Some((generation, _)) = store.load() {
            store.generation = generation;
        }
        Ok(store)
    }

    /// Atomically replaces the current checkpoint with `payload` under the
    /// next generation number, keeping the previous generation on disk.
    /// Returns the generation written.
    pub fn save(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let generation = self.generation + 1;
        let image = encode_checkpoint_file(generation, payload);
        let mut file = fs::File::create(&self.tmp)?;
        file.write_all(&image)?;
        file.sync_all()?;
        drop(file);
        // Demote the current generation before promoting the new one: a
        // crash between the two renames leaves `.prev` intact and no
        // current file, which `load` handles by falling back.
        match fs::rename(&self.current, &self.prev) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        fs::rename(&self.tmp, &self.current)?;
        self.generation = generation;
        Ok(generation)
    }

    /// Loads the newest intact checkpoint: the current file if it decodes,
    /// else the previous generation if that does. Total — I/O errors,
    /// missing files, and corruption all fold into `None` (a worker with
    /// no loadable checkpoint starts from empty state and replays from
    /// sequence zero, which is always correct).
    pub fn load(&self) -> Option<(u64, Vec<u8>)> {
        self.load_path(&self.current)
            .or_else(|| self.load_path(&self.prev))
    }

    /// Like [`load`](Self::load), but reporting *why* each generation was
    /// skipped: one result per generation file, newest first. Lets callers
    /// (and the proptests) distinguish "no checkpoint yet" from "current
    /// corrupt, recovered from previous".
    pub fn load_generations(&self) -> Vec<Result<(u64, Vec<u8>), CheckpointFileError>> {
        [&self.current, &self.prev]
            .into_iter()
            .map(|path| {
                let bytes = fs::read(path)?;
                decode_checkpoint_file(&bytes)
            })
            .collect()
    }

    /// The generation the next save will write minus one: zero before any
    /// save, continuing across respawns.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Path of the current-generation file (tests corrupt it in place).
    pub fn current_path(&self) -> &Path {
        &self.current
    }

    /// Path of the previous-generation file.
    pub fn prev_path(&self) -> &Path {
        &self.prev
    }

    /// Path of the transient mid-save file (a crashed save may leave it).
    pub fn tmp_path(&self) -> &Path {
        &self.tmp
    }

    fn load_path(&self, path: &Path) -> Option<(u64, Vec<u8>)> {
        let bytes = fs::read(path).ok()?;
        decode_checkpoint_file(&bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(name: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("slb-durable-{name}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn save_then_load_round_trips_and_generations_advance() {
        let dir = scratch_dir("roundtrip");
        let mut store = DurableCheckpointStore::open(&dir, 3).unwrap();
        assert_eq!(store.load(), None);
        assert_eq!(store.save(b"alpha").unwrap(), 1);
        assert_eq!(store.load(), Some((1, b"alpha".to_vec())));
        assert_eq!(store.save(b"beta").unwrap(), 2);
        assert_eq!(store.load(), Some((2, b"beta".to_vec())));
        // The demoted generation is still on disk.
        let generations = store.load_generations();
        assert!(matches!(&generations[1], Ok((1, p)) if p == b"alpha"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_the_generation_counter() {
        let dir = scratch_dir("reopen");
        let mut store = DurableCheckpointStore::open(&dir, 0).unwrap();
        store.save(b"one").unwrap();
        store.save(b"two").unwrap();
        drop(store);
        let mut respawned = DurableCheckpointStore::open(&dir, 0).unwrap();
        assert_eq!(respawned.load(), Some((2, b"two".to_vec())));
        assert_eq!(respawned.save(b"three").unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_current_falls_back_to_previous_generation() {
        let dir = scratch_dir("fallback");
        let mut store = DurableCheckpointStore::open(&dir, 1).unwrap();
        store.save(b"good-old").unwrap();
        store.save(b"good-new").unwrap();
        // Flip a payload bit in the current file.
        let mut bytes = fs::read(store.current_path()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(store.current_path(), &bytes).unwrap();
        assert_eq!(store.load(), Some((1, b"good-old".to_vec())));
        let generations = store.load_generations();
        assert!(matches!(
            &generations[0],
            Err(CheckpointFileError::Corrupt("payload CRC mismatch"))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_tmp_file_is_ignored() {
        let dir = scratch_dir("tmp");
        let mut store = DurableCheckpointStore::open(&dir, 2).unwrap();
        store.save(b"committed").unwrap();
        // Simulate a crash mid-save: a torn tmp file never renamed.
        fs::write(store.tmp_path(), b"garbage from a dying writer").unwrap();
        assert_eq!(store.load(), Some((1, b"committed".to_vec())));
        drop(store);
        let reopened = DurableCheckpointStore::open(&dir, 2).unwrap();
        assert_eq!(reopened.load(), Some((1, b"committed".to_vec())));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_rejects_everything_that_is_not_an_intact_file() {
        let image = encode_checkpoint_file(7, b"payload");
        assert!(matches!(
            decode_checkpoint_file(&image),
            Ok((7, ref p)) if p == b"payload"
        ));
        for cut in 0..image.len() {
            assert!(decode_checkpoint_file(&image[..cut]).is_err(), "cut {cut}");
        }
        let mut bad_magic = image.clone();
        bad_magic[0] ^= 1;
        assert!(decode_checkpoint_file(&bad_magic).is_err());
        let mut trailing = image.clone();
        trailing.push(0);
        assert!(decode_checkpoint_file(&trailing).is_err());
    }
}
