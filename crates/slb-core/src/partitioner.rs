//! The `Partitioner` trait and the classic grouping schemes.
//!
//! A partitioner is the per-source routing component: it sees each outgoing
//! message's key and decides which downstream worker receives it, using only
//! local information (its own hash functions, load vector, and head
//! tracker). This module defines the trait plus the two classic baselines:
//!
//! * [`KeyGrouping`] — hash the key once; all messages with the same key go
//!   to the same worker (Storm's "fields grouping").
//! * [`ShuffleGrouping`] — round-robin across workers, ignoring the key
//!   (ideal balance, maximal state replication for stateful operators).
//!
//! The power-of-choices schemes (PKG, D-Choices, W-Choices, Round-Robin
//! head) live in sibling modules; [`crate::build_partitioner`] constructs any
//! of them from a [`crate::PartitionConfig`].

use std::hash::Hash;

use slb_hash::{HashFamily, KeyHash};

use crate::config::PartitionConfig;
use crate::dchoices::ChoicesDecision;
use crate::head::HeadSnapshot;
use crate::load::LoadVector;

/// A stream partitioner: maps each observed key to a destination worker.
///
/// Implementations are stateful (they learn the load distribution and, for
/// the head-aware schemes, the hot keys) and deterministic given their
/// configuration seed and input sequence.
pub trait Partitioner<K: KeyHash + Eq + Hash + Clone> {
    /// Routes a message with the given key, updating internal state.
    fn route(&mut self, key: &K) -> usize;

    /// Routes a batch of messages, appending one worker index per key into
    /// `out` (cleared first), in key order.
    ///
    /// Semantically identical to calling [`Self::route`] once per key — the
    /// worker sequence and all internal state updates are bit-for-bit the
    /// same — but dispatched once per batch instead of once per tuple, so a
    /// boxed partitioner pays one virtual call per batch and implementations
    /// can keep their hot state in registers across the loop.
    fn route_batch(&mut self, keys: &[K], out: &mut Vec<usize>) {
        out.clear();
        out.reserve(keys.len());
        for key in keys {
            out.push(self.route(key));
        }
    }

    /// Regenerates the partitioner from `config` at a phase boundary —
    /// typically because the downstream worker count changed (scale-out /
    /// scale-in) or the workload entered a new regime.
    ///
    /// Semantics are **full regeneration**: hash families, load vectors,
    /// heavy-hitter summaries, cursors, and caches are rebuilt exactly as if
    /// the partitioner had been constructed fresh from `config`; subsequent
    /// routing is bit-for-bit identical to a newly built instance. This is
    /// what a real redeployment does on resize, and it is safe at window
    /// boundaries: per-window partial aggregates complete entirely within
    /// one routing regime, so no window ever mixes two worker sets (see
    /// `slb-workloads::scenario` for the alignment guarantee).
    fn rescale(&mut self, config: &PartitionConfig);

    /// Number of downstream workers.
    fn workers(&self) -> usize;

    /// Human-readable name of the scheme (for experiment output).
    fn name(&self) -> &'static str;

    /// The scheme's local estimate of per-worker load (messages sent by this
    /// source to each worker). Used by experiments to audit behaviour; the
    /// authoritative global load is tracked by the simulator.
    fn local_loads(&self) -> &LoadVector;

    /// The maximum number of candidate workers this scheme would currently
    /// use for the given key (1 for key grouping, 2 for PKG tail keys, `d`
    /// or `n` for head keys). Used by the memory-overhead accounting.
    fn current_choices(&mut self, key: &K) -> usize;

    /// Clones the partitioner behind the trait object, preserving all
    /// learned state (load vectors, heavy-hitter summaries, cursors).
    ///
    /// Recovery replays a window from a snapshot of the *routing state* the
    /// source held at the window boundary; the clone must therefore route
    /// every subsequent key bit-for-bit identically to the original.
    fn clone_box(&self) -> Box<dyn Partitioner<K>>;

    /// A snapshot of the scheme's current head estimate, for schemes whose
    /// head routing depends on a solvable `d` — i.e. D-Choices under
    /// [`crate::SolverMode::External`]. Everything else returns `None`
    /// (default), which tells the elasticity controller there is nothing to
    /// retune for this scheme.
    fn head_snapshot(&self) -> Option<HeadSnapshot<K>> {
        None
    }

    /// Installs an externally computed solver decision (the elasticity
    /// controller's retune step). A no-op for schemes without a tunable `d`;
    /// D-Choices under [`crate::SolverMode::External`] adopts the decision
    /// for all subsequent head routing.
    fn apply_choices(&mut self, _decision: ChoicesDecision) {}
}

impl<K: KeyHash + Eq + Hash + Clone + 'static> Clone for Box<dyn Partitioner<K>> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Key grouping: a single hash function decides the worker for each key.
#[derive(Debug, Clone)]
pub struct KeyGrouping {
    family: HashFamily,
    loads: LoadVector,
}

impl KeyGrouping {
    /// Creates a key-grouping partitioner from the configuration.
    pub fn new(config: &PartitionConfig) -> Self {
        Self {
            family: HashFamily::new(config.seed, 1, config.workers),
            loads: LoadVector::new(config.workers),
        }
    }
}

impl KeyGrouping {
    /// The single-hash decision for one key, shared by `route` and
    /// `route_batch`.
    #[inline]
    fn route_one<K: KeyHash + ?Sized>(&mut self, key: &K) -> usize {
        let worker = self.family.choice(key, 0);
        self.loads.record(worker);
        worker
    }
}

impl<K: KeyHash + Eq + Hash + Clone + 'static> Partitioner<K> for KeyGrouping {
    fn route(&mut self, key: &K) -> usize {
        self.route_one(key)
    }

    fn route_batch(&mut self, keys: &[K], out: &mut Vec<usize>) {
        out.clear();
        out.reserve(keys.len());
        for key in keys {
            out.push(self.route_one(key));
        }
    }

    fn rescale(&mut self, config: &PartitionConfig) {
        *self = KeyGrouping::new(config);
    }

    fn workers(&self) -> usize {
        self.family.workers()
    }

    fn name(&self) -> &'static str {
        "KG"
    }

    fn local_loads(&self) -> &LoadVector {
        &self.loads
    }

    fn current_choices(&mut self, _key: &K) -> usize {
        1
    }

    fn clone_box(&self) -> Box<dyn Partitioner<K>> {
        Box::new(self.clone())
    }
}

/// Shuffle grouping: round-robin over the workers, ignoring keys.
#[derive(Debug, Clone)]
pub struct ShuffleGrouping {
    workers: usize,
    next: usize,
    loads: LoadVector,
}

impl ShuffleGrouping {
    /// Creates a shuffle-grouping partitioner from the configuration.
    ///
    /// The starting offset is derived from the seed so that multiple sources
    /// do not send their first messages to the same worker in lock-step.
    pub fn new(config: &PartitionConfig) -> Self {
        Self {
            workers: config.workers,
            next: (config.seed as usize) % config.workers,
            loads: LoadVector::new(config.workers),
        }
    }
}

impl<K: KeyHash + Eq + Hash + Clone + 'static> Partitioner<K> for ShuffleGrouping {
    fn route(&mut self, _key: &K) -> usize {
        let worker = self.next;
        // Compare-and-reset instead of `(next + 1) % workers`: the branch is
        // almost always not-taken and predicts perfectly, where the modulo
        // costs a hardware divide on every tuple.
        self.next += 1;
        if self.next == self.workers {
            self.next = 0;
        }
        self.loads.record(worker);
        worker
    }

    fn route_batch(&mut self, keys: &[K], out: &mut Vec<usize>) {
        out.clear();
        out.reserve(keys.len());
        let mut next = self.next;
        for _ in keys {
            out.push(next);
            self.loads.record(next);
            next += 1;
            if next == self.workers {
                next = 0;
            }
        }
        self.next = next;
    }

    fn rescale(&mut self, config: &PartitionConfig) {
        *self = ShuffleGrouping::new(config);
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn name(&self) -> &'static str {
        "SG"
    }

    fn local_loads(&self) -> &LoadVector {
        &self.loads
    }

    fn current_choices(&mut self, _key: &K) -> usize {
        self.workers
    }

    fn clone_box(&self) -> Box<dyn Partitioner<K>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize) -> PartitionConfig {
        PartitionConfig::new(n).with_seed(7)
    }

    #[test]
    fn key_grouping_is_sticky_per_key() {
        let mut kg = KeyGrouping::new(&config(10));
        let first = kg.route(&"alpha");
        for _ in 0..100 {
            assert_eq!(kg.route(&"alpha"), first);
        }
        assert!(first < 10);
        assert_eq!(Partitioner::<&str>::name(&kg), "KG");
    }

    #[test]
    fn key_grouping_spreads_distinct_keys() {
        let mut kg = KeyGrouping::new(&config(8));
        let mut used = std::collections::HashSet::new();
        for i in 0..200u64 {
            used.insert(kg.route(&i));
        }
        assert!(used.len() >= 6, "only {} workers used", used.len());
    }

    #[test]
    fn key_grouping_concentrates_skew_on_one_worker() {
        // The defining weakness of KG: a hot key loads a single worker.
        let mut kg = KeyGrouping::new(&config(5));
        for _ in 0..1_000 {
            kg.route(&"hot");
        }
        let loads = Partitioner::<&str>::local_loads(&kg);
        assert_eq!(*loads.counts().iter().max().unwrap(), 1_000);
        assert!(loads.imbalance() > 0.7);
    }

    #[test]
    fn shuffle_grouping_balances_perfectly() {
        let mut sg = ShuffleGrouping::new(&config(4));
        for _ in 0..400 {
            sg.route(&"hot-key-does-not-matter");
        }
        let loads = Partitioner::<&str>::local_loads(&sg);
        assert_eq!(loads.counts(), &[100, 100, 100, 100]);
        assert!(loads.imbalance().abs() < 1e-12);
    }

    #[test]
    fn shuffle_grouping_round_robin_order() {
        let cfg = PartitionConfig::new(3).with_seed(0);
        let mut sg = ShuffleGrouping::new(&cfg);
        let sequence: Vec<usize> = (0..6).map(|_| sg.route(&0u64)).collect();
        assert_eq!(sequence, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn shuffle_grouping_seed_offsets_start() {
        let cfg = PartitionConfig::new(4).with_seed(2);
        let mut sg = ShuffleGrouping::new(&cfg);
        assert_eq!(sg.route(&0u64), 2);
    }

    #[test]
    fn choices_accounting() {
        let mut kg = KeyGrouping::new(&config(10));
        let mut sg = ShuffleGrouping::new(&config(10));
        assert_eq!(Partitioner::<u64>::current_choices(&mut kg, &1), 1);
        assert_eq!(Partitioner::<u64>::current_choices(&mut sg, &1), 10);
    }

    #[test]
    fn key_grouping_deterministic_across_instances() {
        let mut a = KeyGrouping::new(&config(16));
        let mut b = KeyGrouping::new(&config(16));
        for i in 0..100u64 {
            assert_eq!(a.route(&i), b.route(&i));
        }
    }
}
