//! The head-aware partitioners: D-Choices, W-Choices, and Round-Robin head.
//!
//! All three schemes share the same structure (Algorithm 1 in the paper):
//! every message first updates the source-local SpaceSaving summary; keys
//! estimated to be in the head are routed with extra choices, everything
//! else falls back to the standard two-choice (PKG) process.
//!
//! * **D-Choices** — head keys get `d` hash-derived candidates, where `d` is
//!   the output of the `FINDOPTIMALCHOICES` solver (`crate::dchoices`),
//!   re-evaluated when head membership changes or periodically. When the
//!   solver decides no `d < n` suffices, the scheme behaves like W-Choices.
//! * **W-Choices** — head keys may go to *any* worker: the source picks the
//!   globally least-loaded worker according to its local load vector.
//! * **Round-Robin head (RR)** — head keys are spread round-robin over all
//!   workers, ignoring load (same memory cost as W-Choices, load-oblivious).

use std::hash::Hash;

use slb_hash::{HashFamily, KeyHash};

use crate::config::{PartitionConfig, SolverMode};
use crate::dchoices::{find_optimal_choices, ChoicesDecision};
use crate::head::{HeadSnapshot, HeadTracker};
use crate::load::LoadVector;
use crate::partitioner::Partitioner;

/// How a head-aware scheme treats keys that belong to the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeadPolicy {
    /// Greedy-d over `d` hash candidates, `d` chosen by the solver.
    DChoices,
    /// Least-loaded worker among all `n`.
    WChoices,
    /// Round-robin over all `n` workers.
    RoundRobin,
}

/// Shared implementation of the three head-aware schemes.
#[derive(Debug, Clone)]
pub struct HeadAwarePartitioner<K: Eq + Hash + Clone> {
    policy: HeadPolicy,
    family: HashFamily,
    loads: LoadVector,
    tracker: HeadTracker<K>,
    epsilon: f64,
    solver_interval: u64,
    /// How `d` is chosen: the internal solver (`Online`), a pinned constant
    /// (`Fixed`), or an external controller via `apply_choices` (`External`).
    solver_mode: SolverMode,
    /// Cached solver decision and the tracker generation / message count it
    /// was computed at.
    cached_decision: ChoicesDecision,
    cached_at_generation: u64,
    cached_at_total: u64,
    /// Round-robin cursor for the RR policy.
    rr_next: usize,
    messages: u64,
    scratch: Vec<usize>,
    /// Memoized `d` hash candidates per head key (D-Choices only). Head
    /// membership is bounded by the sketch capacity, so the map stays small;
    /// entries are pure functions of `(key, d)` and the whole map is dropped
    /// whenever the tracker generation or the solver's `d` changes.
    candidate_cache: std::collections::HashMap<K, Vec<usize>>,
    cache_generation: u64,
    cache_d: usize,
    cache_capacity: usize,
}

impl<K: KeyHash + Eq + Hash + Clone> HeadAwarePartitioner<K> {
    fn new(policy: HeadPolicy, config: &PartitionConfig) -> Self {
        let theta = config.theta();
        Self {
            policy,
            // The family must be able to serve up to n choices for D-Choices.
            family: HashFamily::new(config.seed, config.workers.max(2), config.workers),
            loads: LoadVector::new(config.workers),
            tracker: HeadTracker::new(config.sketch_capacity, theta),
            epsilon: config.epsilon,
            solver_interval: config.solver_interval,
            solver_mode: config.solver,
            // `Fixed(d)` pins the decision at build time; the other modes
            // start from the fresh default `UseD(2)` (the PKG process).
            cached_decision: match config.solver {
                SolverMode::Fixed(d) => ChoicesDecision::UseD(d),
                SolverMode::Online | SolverMode::External => ChoicesDecision::UseD(2),
            },
            cached_at_generation: 0,
            cached_at_total: 0,
            rr_next: (config.seed as usize) % config.workers,
            messages: 0,
            scratch: Vec::with_capacity(config.workers),
            candidate_cache: std::collections::HashMap::new(),
            cache_generation: 0,
            cache_d: 0,
            cache_capacity: config.sketch_capacity,
        }
    }

    /// Creates a D-Choices partitioner.
    pub fn d_choices(config: &PartitionConfig) -> Self {
        Self::new(HeadPolicy::DChoices, config)
    }

    /// Creates a W-Choices partitioner.
    pub fn w_choices(config: &PartitionConfig) -> Self {
        Self::new(HeadPolicy::WChoices, config)
    }

    /// Creates a Round-Robin-head partitioner.
    pub fn round_robin(config: &PartitionConfig) -> Self {
        Self::new(HeadPolicy::RoundRobin, config)
    }

    /// The head tracker (exposed for experiments and audits).
    pub fn head(&self) -> &HeadTracker<K> {
        &self.tracker
    }

    /// The current number of choices used for head keys (`d` for D-Choices,
    /// `n` for the other policies). Re-runs the solver if its cache is stale.
    pub fn head_choices(&mut self) -> usize {
        match self.policy {
            HeadPolicy::DChoices => {
                self.refresh_solver_if_stale();
                self.cached_decision.effective_d(self.loads.workers())
            }
            HeadPolicy::WChoices | HeadPolicy::RoundRobin => self.loads.workers(),
        }
    }

    /// The most recent solver decision (D-Choices only; the other policies
    /// always report `SwitchToW` semantics).
    pub fn solver_decision(&self) -> ChoicesDecision {
        match self.policy {
            HeadPolicy::DChoices => self.cached_decision,
            _ => ChoicesDecision::SwitchToW,
        }
    }

    fn refresh_solver_if_stale(&mut self) {
        // Only the online mode ever re-solves internally: a pinned `d` never
        // moves, and under external control only `apply_choices` may move it.
        if self.solver_mode != SolverMode::Online {
            return;
        }
        let generation = self.tracker.generation();
        let total = self.tracker.total();
        let stale = generation != self.cached_at_generation
            || total.saturating_sub(self.cached_at_total) >= self.solver_interval;
        if !stale {
            return;
        }
        let snapshot = self.tracker.snapshot();
        self.cached_decision = find_optimal_choices(
            &snapshot.frequencies,
            snapshot.tail_mass(),
            self.loads.workers(),
            self.epsilon,
        );
        self.cached_at_generation = generation;
        self.cached_at_total = total;
    }

    fn route_head(&mut self, key: &K) -> usize {
        match self.policy {
            HeadPolicy::WChoices => self.loads.min_load_all(),
            HeadPolicy::RoundRobin => {
                let w = self.rr_next;
                self.rr_next += 1;
                if self.rr_next == self.loads.workers() {
                    self.rr_next = 0;
                }
                w
            }
            HeadPolicy::DChoices => {
                self.refresh_solver_if_stale();
                match self.cached_decision {
                    ChoicesDecision::SwitchToW => self.loads.min_load_all(),
                    ChoicesDecision::UseD(d) => {
                        let d = d.clamp(2, self.family.len());
                        self.least_loaded_head_candidate(key, d)
                    }
                }
            }
        }
    }

    /// Least-loaded worker among the key's `d` hash candidates, served from
    /// the head-key candidate cache when possible.
    ///
    /// The candidates are a pure function of `(key, d)`, so a cache hit is
    /// always exact and entries can never go *wrong* — invalidation is
    /// purely a size/liveness policy. The whole map is dropped when `d`
    /// moves (every entry really is stale then) and, more coarsely, on any
    /// tracker generation bump: that discards entries for keys still in the
    /// head, costing those keys one re-hash + re-insert, but it keeps keys
    /// that left the head from lingering without per-entry bookkeeping.
    /// Size is additionally bounded by the sketch capacity — the same bound
    /// the head itself has.
    fn least_loaded_head_candidate(&mut self, key: &K, d: usize) -> usize {
        let generation = self.tracker.generation();
        if self.cache_generation != generation || self.cache_d != d {
            self.candidate_cache.clear();
            self.cache_generation = generation;
            self.cache_d = d;
        }
        if let Some(candidates) = self.candidate_cache.get(key) {
            return self.loads.min_load_among(candidates);
        }
        self.family.choices_into(key, d, &mut self.scratch);
        if self.candidate_cache.len() < self.cache_capacity {
            self.candidate_cache
                .insert(key.clone(), self.scratch.clone());
        }
        self.loads.min_load_among(&self.scratch)
    }

    fn route_tail(&mut self, key: &K) -> usize {
        self.family.choices_into(key, 2, &mut self.scratch);
        self.loads.min_load_among(&self.scratch)
    }

    /// The full per-tuple decision, shared by `route` and `route_batch`.
    #[inline]
    fn route_one(&mut self, key: &K) -> usize {
        self.messages += 1;
        let in_head = self.tracker.observe(key);
        let worker = if in_head {
            self.route_head(key)
        } else {
            self.route_tail(key)
        };
        self.loads.record(worker);
        worker
    }

    fn scheme_name(&self) -> &'static str {
        match self.policy {
            HeadPolicy::DChoices => "D-C",
            HeadPolicy::WChoices => "W-C",
            HeadPolicy::RoundRobin => "RR",
        }
    }
}

impl<K: KeyHash + Eq + Hash + Clone + 'static> Partitioner<K> for HeadAwarePartitioner<K> {
    fn route(&mut self, key: &K) -> usize {
        self.route_one(key)
    }

    fn route_batch(&mut self, keys: &[K], out: &mut Vec<usize>) {
        out.clear();
        out.reserve(keys.len());
        for key in keys {
            out.push(self.route_one(key));
        }
    }

    fn rescale(&mut self, config: &PartitionConfig) {
        // Full regeneration, policy preserved: the head must be re-learned
        // under the new worker count (θ = f(n) changes with n) and every
        // per-worker structure resized.
        *self = Self::new(self.policy, config);
    }

    fn workers(&self) -> usize {
        self.loads.workers()
    }

    fn name(&self) -> &'static str {
        self.scheme_name()
    }

    fn local_loads(&self) -> &LoadVector {
        &self.loads
    }

    fn current_choices(&mut self, key: &K) -> usize {
        if self.tracker.is_head(key) {
            self.head_choices()
        } else {
            2
        }
    }

    fn clone_box(&self) -> Box<dyn Partitioner<K>> {
        Box::new(self.clone())
    }

    fn head_snapshot(&self) -> Option<HeadSnapshot<K>> {
        // Only D-Choices under external control has a head the controller
        // can retune: W-C/RR ignore `d` for head routing, and in the other
        // modes the internal solver (or the pin) is the authority.
        match (self.policy, self.solver_mode) {
            (HeadPolicy::DChoices, SolverMode::External) => Some(self.tracker.snapshot()),
            _ => None,
        }
    }

    fn apply_choices(&mut self, decision: ChoicesDecision) {
        if self.policy != HeadPolicy::DChoices || self.solver_mode != SolverMode::External {
            return;
        }
        self.cached_decision = decision;
        // Mark the cache fresh at the current tracker state; the candidate
        // cache re-keys itself on the next head route if `d` moved.
        self.cached_at_generation = self.tracker.generation();
        self.cached_at_total = self.tracker.total();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::imbalance;
    use crate::pkg::PartialKeyGrouping;

    /// A deterministic skewed stream: one very hot key plus a uniform tail.
    fn skewed_stream(messages: usize, hot_share: f64, tail_keys: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(messages);
        let mut state = 0x1234_5678_9abc_def0u64;
        for i in 0..messages {
            let hot = (i as f64 / messages as f64).fract() < hot_share
                && (i % 1000) < (hot_share * 1000.0) as usize;
            if hot {
                out.push(0);
            } else {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                out.push(1 + state % tail_keys);
            }
        }
        out
    }

    fn config(n: usize, seed: u64) -> PartitionConfig {
        PartitionConfig::new(n)
            .with_seed(seed)
            .with_solver_interval(100)
    }

    #[test]
    fn names_are_reported() {
        let cfg = config(10, 0);
        let dc = HeadAwarePartitioner::<u64>::d_choices(&cfg);
        let wc = HeadAwarePartitioner::<u64>::w_choices(&cfg);
        let rr = HeadAwarePartitioner::<u64>::round_robin(&cfg);
        assert_eq!(Partitioner::<u64>::name(&dc), "D-C");
        assert_eq!(Partitioner::<u64>::name(&wc), "W-C");
        assert_eq!(Partitioner::<u64>::name(&rr), "RR");
    }

    #[test]
    fn w_choices_beats_pkg_on_a_very_hot_key_at_scale() {
        // A key with ~40% of the stream on 50 workers violates PKG's 2/n
        // assumption massively; W-Choices must balance far better.
        let n = 50;
        let stream = skewed_stream(60_000, 0.4, 5_000);
        let mut wc = HeadAwarePartitioner::<u64>::w_choices(&config(n, 1));
        let mut pkg = PartialKeyGrouping::new(&config(n, 1));
        for k in &stream {
            wc.route(k);
            pkg.route(k);
        }
        let wc_imb = imbalance(Partitioner::<u64>::local_loads(&wc).counts());
        let pkg_imb = imbalance(Partitioner::<u64>::local_loads(&pkg).counts());
        assert!(
            wc_imb < pkg_imb / 4.0,
            "W-C imbalance {wc_imb} not clearly better than PKG {pkg_imb}"
        );
    }

    #[test]
    fn d_choices_beats_pkg_and_uses_fewer_than_all_workers() {
        let n = 50;
        let stream = skewed_stream(60_000, 0.3, 5_000);
        let mut dc = HeadAwarePartitioner::<u64>::d_choices(&config(n, 2));
        let mut pkg = PartialKeyGrouping::new(&config(n, 2));
        for k in &stream {
            dc.route(k);
            pkg.route(k);
        }
        let dc_imb = imbalance(Partitioner::<u64>::local_loads(&dc).counts());
        let pkg_imb = imbalance(Partitioner::<u64>::local_loads(&pkg).counts());
        assert!(dc_imb < pkg_imb, "D-C {dc_imb} vs PKG {pkg_imb}");
        let d = dc.head_choices();
        assert!(d >= 2, "head must have at least two choices");
        // With a 30% hot key, d must exceed 2 (0.3 > 2/50) on 50 workers.
        assert!(
            d > 2,
            "d = {d} should exceed 2 for a 30% hot key on 50 workers"
        );
    }

    #[test]
    fn tail_keys_still_use_at_most_two_workers_under_d_choices() {
        let n = 20;
        let stream = skewed_stream(40_000, 0.3, 200);
        let mut dc = HeadAwarePartitioner::<u64>::d_choices(&config(n, 3));
        let mut destinations: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for k in &stream {
            let w = dc.route(k);
            destinations.entry(*k).or_default().insert(w);
        }
        // The hot key 0 is allowed more than two workers. Tail keys must stay
        // within two workers almost everywhere; a key may briefly be
        // classified as head right after the tracker warm-up (the estimates
        // are still coarse then), so allow a small number of exceptions.
        let head_snapshot = dc.head().snapshot();
        let tail_keys: Vec<_> = destinations
            .keys()
            .filter(|k| !head_snapshot.keys.contains(k))
            .collect();
        let overspread = tail_keys
            .iter()
            .filter(|k| destinations[**k].len() > 2)
            .count();
        assert!(
            overspread * 20 <= tail_keys.len(),
            "{overspread} of {} tail keys used more than two workers",
            tail_keys.len()
        );
        for key in &tail_keys {
            assert!(
                destinations[*key].len() <= 4,
                "tail key {key} reached {} workers",
                destinations[*key].len()
            );
        }
        assert!(
            destinations[&0].len() > 2,
            "hot key should use more than two workers"
        );
    }

    #[test]
    fn round_robin_spreads_head_evenly_but_ignores_load() {
        let n = 10;
        let cfg = config(n, 0);
        let mut rr = HeadAwarePartitioner::<u64>::round_robin(&cfg);
        // Warm up the tracker so key 0 is in the head, then observe where the
        // hot key goes.
        for _ in 0..1_000 {
            rr.route(&0);
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            seen.insert(rr.route(&0));
        }
        assert_eq!(
            seen.len(),
            n,
            "RR must cycle through every worker for the head"
        );
    }

    #[test]
    fn w_choices_uses_every_worker_for_the_head() {
        let n = 8;
        let mut wc = HeadAwarePartitioner::<u64>::w_choices(&config(n, 5));
        for _ in 0..5_000 {
            wc.route(&42);
        }
        let loads = Partitioner::<u64>::local_loads(&wc);
        for w in 0..n {
            assert!(
                loads.count(w) > 0,
                "worker {w} never used for a 100%-hot key"
            );
        }
        assert!(imbalance(loads.counts()) < 0.01);
    }

    #[test]
    fn head_choices_matches_policy() {
        let cfg = config(30, 9);
        let mut dc = HeadAwarePartitioner::<u64>::d_choices(&cfg);
        let mut wc = HeadAwarePartitioner::<u64>::w_choices(&cfg);
        let mut rr = HeadAwarePartitioner::<u64>::round_robin(&cfg);
        assert_eq!(wc.head_choices(), 30);
        assert_eq!(rr.head_choices(), 30);
        assert!(dc.head_choices() >= 2);
    }

    #[test]
    fn current_choices_distinguishes_head_from_tail() {
        let cfg = config(40, 4);
        let mut dc = HeadAwarePartitioner::<u64>::d_choices(&cfg);
        // Make key 7 hot (60% of stream).
        let mut state = 3u64;
        for i in 0..20_000u64 {
            let k = if i % 10 < 6 {
                7
            } else {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                100 + state % 1_000
            };
            dc.route(&k);
        }
        assert!(
            dc.current_choices(&7) > 2,
            "hot key should have extra choices"
        );
        assert_eq!(dc.current_choices(&123_456_789), 2, "unknown key is tail");
    }

    #[test]
    fn deterministic_given_seed_and_stream() {
        let stream = skewed_stream(20_000, 0.25, 300);
        let mut a = HeadAwarePartitioner::<u64>::d_choices(&config(25, 77));
        let mut b = HeadAwarePartitioner::<u64>::d_choices(&config(25, 77));
        for k in &stream {
            assert_eq!(a.route(k), b.route(k));
        }
    }

    #[test]
    fn candidate_cache_entries_match_fresh_hash_evaluation() {
        // After a skewed run the cache must hold only exact candidate sets:
        // every entry equal to re-evaluating the family at the cached d, and
        // never more entries than the sketch capacity bound.
        let stream = skewed_stream(40_000, 0.35, 500);
        let mut dc = HeadAwarePartitioner::<u64>::d_choices(&config(40, 11));
        for k in &stream {
            dc.route(k);
        }
        assert!(
            !dc.candidate_cache.is_empty(),
            "a 35%-hot stream must produce head-key cache entries"
        );
        assert!(dc.candidate_cache.len() <= dc.cache_capacity);
        for (key, cached) in &dc.candidate_cache {
            assert_eq!(cached, &dc.family.choices(key, dc.cache_d), "key {key}");
        }
    }

    #[test]
    fn fixed_mode_pins_d_regardless_of_skew() {
        let cfg = config(50, 4).with_solver(SolverMode::Fixed(3));
        let mut dc = HeadAwarePartitioner::<u64>::d_choices(&cfg);
        for k in &skewed_stream(40_000, 0.4, 500) {
            dc.route(k);
        }
        assert_eq!(
            dc.head_choices(),
            3,
            "a 40% hot key must not move a pinned d"
        );
        assert_eq!(dc.solver_decision(), ChoicesDecision::UseD(3));
    }

    #[test]
    fn external_mode_moves_only_via_apply_choices() {
        let cfg = config(50, 4).with_solver(SolverMode::External);
        let mut dc = HeadAwarePartitioner::<u64>::d_choices(&cfg);
        for k in &skewed_stream(40_000, 0.4, 500) {
            dc.route(k);
        }
        assert_eq!(dc.head_choices(), 2, "no internal solve under External");
        let snapshot = Partitioner::<u64>::head_snapshot(&dc).expect("external D-C has a head");
        assert!(
            snapshot.keys.contains(&0),
            "hot key must be in the head snapshot"
        );
        dc.apply_choices(ChoicesDecision::UseD(7));
        assert_eq!(dc.head_choices(), 7);
        // Routing keeps working after the retune and the cache re-keys.
        for k in &skewed_stream(5_000, 0.4, 500) {
            dc.route(k);
        }
        assert_eq!(dc.head_choices(), 7, "still externally pinned");
    }

    #[test]
    fn head_snapshot_is_none_outside_external_d_choices() {
        let stream = skewed_stream(20_000, 0.4, 300);
        let online = {
            let mut p = HeadAwarePartitioner::<u64>::d_choices(&config(10, 1));
            for k in &stream {
                p.route(k);
            }
            Partitioner::<u64>::head_snapshot(&p).is_none()
        };
        assert!(online, "Online D-C exposes no snapshot to a controller");
        let cfg = config(10, 1).with_solver(SolverMode::External);
        let mut wc = HeadAwarePartitioner::<u64>::w_choices(&cfg);
        for k in &stream {
            wc.route(k);
        }
        assert!(Partitioner::<u64>::head_snapshot(&wc).is_none());
        // And apply_choices is a no-op there.
        let before = wc.head_choices();
        wc.apply_choices(ChoicesDecision::UseD(9));
        assert_eq!(wc.head_choices(), before);
    }

    #[test]
    fn external_and_online_route_identically_before_any_retune() {
        // Until the first apply_choices, External behaves exactly like the
        // fresh default (UseD(2)) — the PKG process for every key.
        let stream = skewed_stream(10_000, 0.3, 200);
        let mut ext = HeadAwarePartitioner::<u64>::d_choices(
            &config(20, 9).with_solver(SolverMode::External),
        );
        let mut pinned = HeadAwarePartitioner::<u64>::d_choices(
            &config(20, 9).with_solver(SolverMode::Fixed(2)),
        );
        for k in &stream {
            assert_eq!(ext.route(k), pinned.route(k));
        }
    }

    #[test]
    fn cache_is_dropped_when_d_changes() {
        let stream = skewed_stream(30_000, 0.3, 400);
        let mut dc = HeadAwarePartitioner::<u64>::d_choices(&config(50, 3));
        for k in &stream {
            dc.route(k);
        }
        assert!(
            dc.candidate_cache.contains_key(&0),
            "hot key must be cached after a 30%-hot run"
        );
        // Force a different d: the cache must be rebuilt at the new d on the
        // next head route.
        let old_d = dc.cache_d;
        dc.cached_decision = ChoicesDecision::UseD(old_d + 1);
        dc.cached_at_generation = dc.tracker.generation();
        dc.cached_at_total = dc.tracker.total();
        dc.route(&0);
        assert_eq!(dc.cache_d, (old_d + 1).clamp(2, dc.family.len()));
        for (key, cached) in &dc.candidate_cache {
            assert_eq!(cached, &dc.family.choices(key, dc.cache_d), "key {key}");
        }
    }
}
