//! Windowed aggregation state: the operator downstream of key splitting.
//!
//! Key splitting (PKG, D-Choices, W-Choices) is only sound because the
//! paper's topology has a *second* stage: workers hold partial per-key state
//! for the keys routed to them, and a downstream aggregation operator merges
//! those partials into the final per-key result at the end of every window
//! (Section III of Nasir et al., ICDE 2016 — the classic two-phase
//! aggregation of a Storm word-count). This module defines the algebra that
//! the engine's aggregator stage needs from such state:
//!
//! * [`WindowAggregate`] — a factory of mergeable per-window partials with
//!   **associative and commutative** merge semantics and an [`empty`]
//!   identity, so that partials can be combined in whatever order the
//!   workers' windows happen to close.
//! * [`CountAggregate`] — exact per-key counts (the paper's word-count
//!   aggregator); merges are exact, which is what makes the differential
//!   test's bit-identical invariant possible.
//! * [`SumAggregate`] — a scalar per-window sum of tuple weights (the
//!   degenerate aggregate whose partial is one integer).
//! * [`TopKAggregate`] — per-window heavy hitters via SpaceSaving summaries,
//!   merged with the mergeable-summary path in `slb-sketch`
//!   ([`slb_sketch::merge::merged_space_saving`]).
//!
//! Partials can additionally be **sharded by key hash** ([`shard`]) so that
//! more than one aggregator thread can merge disjoint key slices of the same
//! window in parallel; merging all shards back together reproduces the
//! unsharded aggregate.
//!
//! [`empty`]: WindowAggregate::empty
//! [`shard`]: WindowAggregate::shard

use std::collections::HashMap;
use std::hash::Hash;

use slb_hash::{bucket_of, KeyHash};
use slb_sketch::merge::merged_space_saving;
use slb_sketch::space_saving::Counter;
use slb_sketch::{FrequencyEstimator, SpaceSaving};

/// Seed of the hash that assigns keys to aggregator shards. Distinct from
/// the routing digest seed so that shard assignment is independent of the
/// grouping scheme's worker choices.
pub const SHARD_SEED: u64 = 0x5ba9_9e6a_7e5e_ed01;

/// The aggregator shard that owns `key` when the key space is split across
/// `shards` disjoint slices.
///
/// # Panics
/// Panics (in debug builds) if `shards == 0`.
#[inline]
pub fn shard_of<K: KeyHash + ?Sized>(key: &K, shards: usize) -> usize {
    bucket_of(key.key_hash(SHARD_SEED), shards)
}

/// A windowed aggregation: a factory of per-window partial states that
/// workers fill tuple by tuple and the aggregator stage merges into the
/// final per-window result.
///
/// # Laws
///
/// Implementations must make `merge` associative and commutative with
/// [`empty`](Self::empty) as the identity, over partials built by any
/// sequence of [`observe`](Self::observe) calls:
///
/// * `merge(a, merge(b, c)) == merge(merge(a, b), c)` (associativity),
/// * `merge(a, b) == merge(b, a)` (commutativity),
/// * `merge(a, empty()) == a` (identity),
///
/// where `==` means "same aggregate content". For the exact aggregates
/// ([`CountAggregate`], [`SumAggregate`]) this is literal equality; for
/// [`TopKAggregate`] it is exact while the summaries stay below capacity and
/// weakens to the usual SpaceSaving upper-bound guarantees beyond it. The
/// `aggregate_props` property suite in this crate pins these laws down over
/// random partial splits.
///
/// Additionally, merging all partials returned by [`shard`](Self::shard)
/// must reproduce the input partial's aggregate content, and sharding must
/// depend only on the key (via [`shard_of`]) — never on observation order —
/// so that a sharded aggregator stage stays deterministic.
pub trait WindowAggregate<K>: Clone + Send + 'static {
    /// Mergeable per-window partial state.
    type Partial: Send + 'static;

    /// Short human-readable name ("count", "sum", "top-k").
    fn name(&self) -> &'static str;

    /// The identity partial: the state of a window that saw no tuples.
    fn empty(&self) -> Self::Partial;

    /// Folds one tuple with the given `weight` (the engine uses weight 1
    /// per tuple; weighted streams pass their multiplicity) into `partial`.
    fn observe(&self, partial: &mut Self::Partial, key: &K, weight: u64);

    /// Merges `from` into `into`.
    fn merge(&self, into: &mut Self::Partial, from: Self::Partial);

    /// Splits `partial` into exactly `shards` partials with disjoint key
    /// ownership (slice `s` holds the keys with `shard_of(key, shards) ==
    /// s`), such that merging all slices reproduces `partial`. Aggregates
    /// without per-key structure put everything into shard 0.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    fn shard(&self, partial: Self::Partial, shards: usize) -> Vec<Self::Partial>;
}

/// Exact per-key occurrence counts — the paper's streaming word count.
///
/// The partial is a plain hash map from key to count, so `merge` is exact
/// integer addition per key: the merged window is *bit-identical* to what a
/// single worker counting the whole window would produce, for any split of
/// the window across workers. This is the aggregate the differential
/// correctness suite runs, because it turns the key-splitting soundness
/// argument into an exact equality check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountAggregate;

impl<K> WindowAggregate<K> for CountAggregate
where
    K: KeyHash + Eq + Hash + Clone + Send + 'static,
{
    type Partial = HashMap<K, u64>;

    fn name(&self) -> &'static str {
        "count"
    }

    fn empty(&self) -> Self::Partial {
        HashMap::new()
    }

    #[inline]
    fn observe(&self, partial: &mut Self::Partial, key: &K, weight: u64) {
        *partial.entry(key.clone()).or_insert(0) += weight;
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        for (key, count) in from {
            *into.entry(key).or_insert(0) += count;
        }
    }

    fn shard(&self, partial: Self::Partial, shards: usize) -> Vec<Self::Partial> {
        assert!(shards > 0, "need at least one shard");
        if shards == 1 {
            return vec![partial];
        }
        let mut out: Vec<Self::Partial> = (0..shards).map(|_| HashMap::new()).collect();
        for (key, count) in partial {
            let s = shard_of(&key, shards);
            out[s].insert(key, count);
        }
        out
    }
}

/// Scalar sum of tuple weights per window (with weight 1 everywhere this is
/// the window's tuple count). The partial is a single integer, so it also
/// exercises the degenerate "no per-key structure" corner of the trait: all
/// sharded mass lands on shard 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumAggregate;

impl<K> WindowAggregate<K> for SumAggregate
where
    K: Send + 'static,
{
    type Partial = u64;

    fn name(&self) -> &'static str {
        "sum"
    }

    fn empty(&self) -> Self::Partial {
        0
    }

    #[inline]
    fn observe(&self, partial: &mut Self::Partial, _key: &K, weight: u64) {
        *partial += weight;
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        *into += from;
    }

    fn shard(&self, partial: Self::Partial, shards: usize) -> Vec<Self::Partial> {
        assert!(shards > 0, "need at least one shard");
        let mut out = vec![0; shards];
        out[0] = partial;
        out
    }
}

/// Per-window heavy hitters: each partial is a SpaceSaving summary of the
/// window's sub-stream, merged with the Berinde counter-summary merge and
/// rebuilt into a live summary ([`merged_space_saving`]).
///
/// While every partial stays below `capacity` distinct keys the summaries
/// are exact and the merge laws hold with equality; beyond capacity the
/// merged estimates keep the SpaceSaving guarantees (upper bounds, additive
/// totals, additive error bounds) but equality weakens to them — see the
/// module docs of `slb_sketch::merge`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKAggregate {
    /// Number of counters each summary keeps (`≥ 1/φ` to find every key
    /// with relative in-window frequency φ).
    pub capacity: usize,
}

impl TopKAggregate {
    /// A top-k aggregate with summaries of `capacity` counters.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TopKAggregate capacity must be positive");
        Self { capacity }
    }
}

impl<K> WindowAggregate<K> for TopKAggregate
where
    K: KeyHash + Eq + Hash + Clone + Send + 'static,
{
    type Partial = SpaceSaving<K>;

    fn name(&self) -> &'static str {
        "top-k"
    }

    fn empty(&self) -> Self::Partial {
        SpaceSaving::new(self.capacity)
    }

    #[inline]
    fn observe(&self, partial: &mut Self::Partial, key: &K, weight: u64) {
        partial.observe_many(key, weight);
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        *into = merged_space_saving(into, &from, self.capacity);
    }

    fn shard(&self, partial: Self::Partial, shards: usize) -> Vec<Self::Partial> {
        assert!(shards > 0, "need at least one shard");
        if shards == 1 {
            return vec![partial];
        }
        let mut slices: Vec<Vec<Counter<K>>> = (0..shards).map(|_| Vec::new()).collect();
        for c in partial.counters() {
            slices[shard_of(&c.key, shards)].push(c);
        }
        // Apportion the stream length by monitored mass; for a summary built
        // purely by observation (every worker partial) the counter counts sum
        // exactly to the total, so the split is exact and shard totals add
        // back up to the original. Any unmonitored remainder goes to shard 0.
        let sums: Vec<u64> = slices
            .iter()
            .map(|s| s.iter().map(|c| c.count).sum())
            .collect();
        let monitored: u64 = sums.iter().sum();
        let remainder = partial.total().saturating_sub(monitored);
        slices
            .into_iter()
            .zip(sums)
            .enumerate()
            .map(|(s, (counters, sum))| {
                let total = if s == 0 { sum + remainder } else { sum };
                SpaceSaving::from_counters(self.capacity, total, counters)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_window(keys: &[u64]) -> HashMap<u64, u64> {
        let agg = CountAggregate;
        let mut p = WindowAggregate::<u64>::empty(&agg);
        for k in keys {
            agg.observe(&mut p, k, 1);
        }
        p
    }

    #[test]
    fn count_aggregate_counts_and_merges_exactly() {
        let agg = CountAggregate;
        let mut a = count_window(&[1, 2, 1, 3]);
        let b = count_window(&[1, 3, 3]);
        agg.merge(&mut a, b);
        assert_eq!(a[&1], 3);
        assert_eq!(a[&2], 1);
        assert_eq!(a[&3], 3);
    }

    #[test]
    fn count_shards_partition_keys_and_merge_back() {
        let agg = CountAggregate;
        let keys: Vec<u64> = (0..500).map(|i| i % 97).collect();
        let whole = count_window(&keys);
        for shards in [1usize, 2, 3, 7] {
            let slices = agg.shard(whole.clone(), shards);
            assert_eq!(slices.len(), shards);
            for (s, slice) in slices.iter().enumerate() {
                for key in slice.keys() {
                    assert_eq!(shard_of(key, shards), s, "key {key} in wrong shard");
                }
            }
            let mut back = WindowAggregate::<u64>::empty(&agg);
            for slice in slices {
                agg.merge(&mut back, slice);
            }
            assert_eq!(back, whole, "shard+merge must reproduce the partial");
        }
    }

    #[test]
    fn sum_aggregate_is_weight_arithmetic() {
        let agg = SumAggregate;
        let mut p = WindowAggregate::<u64>::empty(&agg);
        agg.observe(&mut p, &7u64, 1);
        agg.observe(&mut p, &9u64, 4);
        let mut q = WindowAggregate::<u64>::empty(&agg);
        agg.observe(&mut q, &7u64, 2);
        WindowAggregate::<u64>::merge(&agg, &mut p, q);
        assert_eq!(p, 7);
        let slices = WindowAggregate::<u64>::shard(&agg, p, 3);
        assert_eq!(slices, vec![7, 0, 0]);
    }

    #[test]
    fn top_k_merge_is_exact_below_capacity() {
        let agg = TopKAggregate::new(64);
        let mut a = agg.empty();
        let mut b = agg.empty();
        for k in [1u64, 1, 2, 5] {
            agg.observe(&mut a, &k, 1);
        }
        for k in [1u64, 5, 5] {
            agg.observe(&mut b, &k, 1);
        }
        agg.merge(&mut a, b);
        assert_eq!(a.total(), 7);
        assert_eq!(a.estimate(&1), 3);
        assert_eq!(a.estimate(&5), 3);
        assert_eq!(a.estimate(&2), 1);
    }

    #[test]
    fn top_k_shards_preserve_totals_and_estimates() {
        let agg = TopKAggregate::new(128);
        let mut p = agg.empty();
        for i in 0..1000u64 {
            agg.observe(&mut p, &(i % 50), 1);
        }
        let total = p.total();
        let slices = WindowAggregate::<u64>::shard(&agg, p.clone(), 4);
        assert_eq!(slices.iter().map(|s| s.total()).sum::<u64>(), total);
        let mut back = agg.empty();
        for s in slices {
            agg.merge(&mut back, s);
        }
        assert_eq!(back.total(), total);
        for key in 0..50u64 {
            assert_eq!(back.estimate(&key), p.estimate(&key), "key {key}");
        }
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 5, 16] {
            for key in 0..200u64 {
                let s = shard_of(&key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(&key, shards), "must be deterministic");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let agg = CountAggregate;
        let _ = WindowAggregate::<u64>::shard(&agg, HashMap::new(), 0);
    }
}
