//! # slb-core — stream grouping schemes for skewed workloads
//!
//! This crate implements the core contribution of *"When Two Choices Are not
//! Enough: Balancing at Scale in Distributed Stream Processing"* (Nasir et
//! al., ICDE 2016): load-balanced stream partitioning that remains effective
//! on large deployments and under extreme key skew.
//!
//! ## The schemes
//!
//! | Scheme | Head keys | Tail keys | Memory per key |
//! |--------|-----------|-----------|----------------|
//! | [`KeyGrouping`] (KG) | 1 worker | 1 worker | 1 |
//! | [`ShuffleGrouping`] (SG) | all workers | all workers | n |
//! | [`PartialKeyGrouping`] (PKG) | 2 workers | 2 workers | ≤ 2 |
//! | D-Choices ([`HeadAwarePartitioner::d_choices`]) | `d` workers (solver) | 2 workers | ≤ d / ≤ 2 |
//! | W-Choices ([`HeadAwarePartitioner::w_choices`]) | all workers | 2 workers | ≤ n / ≤ 2 |
//! | Round-Robin head ([`HeadAwarePartitioner::round_robin`]) | all workers (load-oblivious) | 2 workers | ≤ n / ≤ 2 |
//!
//! The head of the key distribution is detected online with a SpaceSaving
//! summary ([`head::HeadTracker`]), and the number of choices `d` used by
//! D-Choices is computed by the solver in [`dchoices`] from the head
//! frequencies, the number of workers and the imbalance tolerance ε.
//!
//! ## Quick example
//!
//! ```rust
//! use slb_core::{build_partitioner, PartitionConfig, PartitionerKind};
//!
//! let config = PartitionConfig::new(50).with_seed(7);
//! let mut router = build_partitioner::<u64>(PartitionerKind::DChoices, &config);
//! let worker = router.route(&12345u64);
//! assert!(worker < 50);
//! ```

pub mod aggregate;
pub mod checkpoint;
pub mod config;
pub mod controller;
pub mod dchoices;
pub mod durable;
pub mod head;
pub mod head_schemes;
pub mod load;
pub mod memory;
pub mod partitioner;
pub mod pkg;
pub mod wire;

pub use aggregate::{
    shard_of, CountAggregate, SumAggregate, TopKAggregate, WindowAggregate, SHARD_SEED,
};
pub use checkpoint::{OpenWindowState, WorkerCheckpoint};
pub use config::{HeadThreshold, PartitionConfig, SolverMode};
pub use controller::{
    decode_decision, encode_decision, ControllerAction, ControllerConfig, ControllerEvent,
    ControllerMetrics, ElasticityController,
};
pub use dchoices::{
    constraints_hold, d_fraction, expected_worker_set_size, find_optimal_choices, ChoicesDecision,
};
pub use durable::{
    crc32, decode_checkpoint_file, encode_checkpoint_file, CheckpointFileError,
    DurableCheckpointStore, CHECKPOINT_MAGIC,
};
pub use head::{HeadSnapshot, HeadTracker};
pub use head_schemes::HeadAwarePartitioner;
pub use load::{imbalance, imbalance_fractions, LoadVector, PerWindowLoads, PhaseLoadMatrix};
pub use memory::{estimated_replicas, relative_overhead_pct, MemoryScheme};
pub use partitioner::{KeyGrouping, Partitioner, ShuffleGrouping};
pub use pkg::PartialKeyGrouping;
pub use wire::{PartialDecodeError, WirePartial};

use std::hash::Hash;

use serde::{Deserialize, Serialize};
use slb_hash::KeyHash;

/// The grouping schemes evaluated in the paper, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionerKind {
    /// Key grouping (KG).
    KeyGrouping,
    /// Shuffle grouping (SG).
    ShuffleGrouping,
    /// Partial key grouping (PKG).
    Pkg,
    /// D-Choices (D-C).
    DChoices,
    /// W-Choices (W-C).
    WChoices,
    /// Round-Robin head (RR).
    RoundRobin,
}

impl PartitionerKind {
    /// All schemes, in the order the paper's figures list them.
    pub const ALL: [PartitionerKind; 6] = [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::RoundRobin,
        PartitionerKind::ShuffleGrouping,
    ];

    /// The paper's abbreviation for the scheme.
    pub fn symbol(&self) -> &'static str {
        match self {
            PartitionerKind::KeyGrouping => "KG",
            PartitionerKind::ShuffleGrouping => "SG",
            PartitionerKind::Pkg => "PKG",
            PartitionerKind::DChoices => "D-C",
            PartitionerKind::WChoices => "W-C",
            PartitionerKind::RoundRobin => "RR",
        }
    }
}

impl std::str::FromStr for PartitionerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "KG" | "KEY" | "KEYGROUPING" => Ok(PartitionerKind::KeyGrouping),
            "SG" | "SHUFFLE" | "SHUFFLEGROUPING" => Ok(PartitionerKind::ShuffleGrouping),
            "PKG" => Ok(PartitionerKind::Pkg),
            "D-C" | "DC" | "DCHOICES" => Ok(PartitionerKind::DChoices),
            "W-C" | "WC" | "WCHOICES" => Ok(PartitionerKind::WChoices),
            "RR" | "ROUNDROBIN" => Ok(PartitionerKind::RoundRobin),
            other => Err(format!("unknown partitioner kind: {other}")),
        }
    }
}

/// Builds a boxed partitioner of the requested kind for keys of type `K`.
pub fn build_partitioner<K>(
    kind: PartitionerKind,
    config: &PartitionConfig,
) -> Box<dyn Partitioner<K>>
where
    K: KeyHash + Eq + Hash + Clone + 'static,
{
    match kind {
        PartitionerKind::KeyGrouping => Box::new(KeyGrouping::new(config)),
        PartitionerKind::ShuffleGrouping => Box::new(ShuffleGrouping::new(config)),
        PartitionerKind::Pkg => Box::new(PartialKeyGrouping::new(config)),
        PartitionerKind::DChoices => Box::new(HeadAwarePartitioner::d_choices(config)),
        PartitionerKind::WChoices => Box::new(HeadAwarePartitioner::w_choices(config)),
        PartitionerKind::RoundRobin => Box::new(HeadAwarePartitioner::round_robin(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_every_kind_and_route() {
        let cfg = PartitionConfig::new(12).with_seed(5);
        for kind in PartitionerKind::ALL {
            let mut p = build_partitioner::<u64>(kind, &cfg);
            for key in 0..500u64 {
                let w = p.route(&(key % 50));
                assert!(w < 12, "{:?} routed out of range", kind);
            }
            assert_eq!(p.workers(), 12);
            assert_eq!(p.local_loads().total(), 500);
        }
    }

    #[test]
    fn symbols_round_trip_through_from_str() {
        for kind in PartitionerKind::ALL {
            let parsed: PartitionerKind = kind.symbol().parse().expect("symbol parses");
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<PartitionerKind>().is_err());
    }

    #[test]
    fn kinds_report_paper_symbols() {
        assert_eq!(PartitionerKind::DChoices.symbol(), "D-C");
        assert_eq!(PartitionerKind::WChoices.symbol(), "W-C");
        assert_eq!(PartitionerKind::Pkg.symbol(), "PKG");
    }

    #[test]
    fn boxed_partitioner_names_match_kind_symbols() {
        let cfg = PartitionConfig::new(4);
        for kind in PartitionerKind::ALL {
            let p = build_partitioner::<u64>(kind, &cfg);
            assert_eq!(p.name(), kind.symbol());
        }
    }

    #[test]
    fn string_keys_are_supported() {
        let cfg = PartitionConfig::new(6).with_seed(1);
        let mut p = build_partitioner::<String>(PartitionerKind::WChoices, &cfg);
        for i in 0..100 {
            let key = format!("page/{}", i % 10);
            assert!(p.route(&key) < 6);
        }
    }
}
