//! Memory-overhead accounting (Section IV-B of the paper).
//!
//! When a key's messages are split across several workers, every one of
//! those workers must keep partial state for the key, so the memory cost of
//! a grouping scheme is the number of `(key, worker)` state replicas it
//! creates. Taking the state per key as one unit, the paper estimates:
//!
//! * key grouping:      `Σ_k min(f_k, 1)`            (one replica per key)
//! * PKG:               `Σ_k min(f_k, 2)`
//! * D-Choices:         `Σ_{k∈H} min(f_k, d) + Σ_{k∉H} min(f_k, 2)`
//! * W-Choices / RR:    `Σ_{k∈H} min(f_k, n) + Σ_{k∉H} min(f_k, 2)`
//! * shuffle grouping:  `Σ_k min(f_k, n)`
//!
//! where `f_k` is the number of occurrences of key `k` (a key observed only
//! once can occupy at most one worker no matter what the scheme allows).
//! These estimates are what Figures 5 and 6 plot, as relative overheads with
//! respect to PKG and SG. The simulator additionally *measures* the replicas
//! actually created during a run; both views are provided here.

use serde::{Deserialize, Serialize};

/// Which grouping scheme to estimate memory for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryScheme {
    /// Key grouping: one worker per key.
    KeyGrouping,
    /// Partial key grouping: at most two workers per key.
    Pkg,
    /// D-Choices with the given number of choices for head keys.
    DChoices {
        /// Number of candidate workers for head keys.
        d: usize,
    },
    /// W-Choices or Round-Robin: head keys may reach all workers.
    WChoices,
    /// Shuffle grouping: every key may reach all workers.
    Shuffle,
}

/// Estimated number of `(key, worker)` state replicas for a scheme, given
/// the per-key occurrence counts in rank order (most frequent first) and the
/// cardinality of the head.
///
/// `counts` must be sorted in non-increasing order; `head_cardinality` keys
/// from the front of the slice are treated as the head.
pub fn estimated_replicas(
    counts: &[u64],
    head_cardinality: usize,
    workers: usize,
    scheme: MemoryScheme,
) -> u64 {
    assert!(workers > 0, "worker count must be positive");
    let n = workers as u64;
    let head_cardinality = head_cardinality.min(counts.len());
    let cap_for = |rank: usize| -> u64 {
        match scheme {
            MemoryScheme::KeyGrouping => 1,
            MemoryScheme::Pkg => 2,
            MemoryScheme::Shuffle => n,
            MemoryScheme::DChoices { d } => {
                if rank < head_cardinality {
                    (d as u64).min(n)
                } else {
                    2
                }
            }
            MemoryScheme::WChoices => {
                if rank < head_cardinality {
                    n
                } else {
                    2
                }
            }
        }
    };
    counts
        .iter()
        .enumerate()
        .map(|(rank, &f)| f.min(cap_for(rank)))
        .sum()
}

/// Relative memory overhead of `scheme` with respect to `baseline`, in
/// percent: `100 · (mem_scheme − mem_baseline) / mem_baseline`.
///
/// Positive values mean `scheme` uses more memory than the baseline (the
/// Figure 5 view, baseline = PKG); negative values mean it uses less (the
/// Figure 6 view, baseline = SG).
pub fn relative_overhead_pct(
    counts: &[u64],
    head_cardinality: usize,
    workers: usize,
    scheme: MemoryScheme,
    baseline: MemoryScheme,
) -> f64 {
    let mem = estimated_replicas(counts, head_cardinality, workers, scheme) as f64;
    let base = estimated_replicas(counts, head_cardinality, workers, baseline) as f64;
    assert!(base > 0.0, "baseline memory must be positive");
    100.0 * (mem - base) / base
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank-ordered counts for a tiny synthetic workload: one very hot key,
    /// a few warm ones, and a tail of singletons.
    fn sample_counts() -> Vec<u64> {
        let mut counts = vec![1_000, 200, 150, 80, 40];
        counts.extend(std::iter::repeat(1).take(100));
        counts
    }

    #[test]
    fn key_grouping_counts_each_key_once() {
        let counts = sample_counts();
        let mem = estimated_replicas(&counts, 1, 10, MemoryScheme::KeyGrouping);
        assert_eq!(mem, counts.len() as u64);
    }

    #[test]
    fn pkg_caps_at_two_replicas_per_key() {
        let counts = sample_counts();
        let mem = estimated_replicas(&counts, 1, 10, MemoryScheme::Pkg);
        // 5 keys with count >= 2 contribute 2 each, 100 singletons contribute 1.
        assert_eq!(mem, 5 * 2 + 100);
    }

    #[test]
    fn shuffle_caps_at_n_replicas_per_key() {
        let counts = sample_counts();
        let n = 10;
        let mem = estimated_replicas(&counts, 0, n, MemoryScheme::Shuffle);
        // Keys with count >= n contribute n; smaller keys contribute their count.
        let expected: u64 = counts.iter().map(|&f| f.min(n as u64)).sum();
        assert_eq!(mem, expected);
    }

    #[test]
    fn d_choices_interpolates_between_pkg_and_w_choices() {
        let counts = sample_counts();
        let n = 50;
        let head = 3;
        let pkg = estimated_replicas(&counts, head, n, MemoryScheme::Pkg);
        let dc = estimated_replicas(&counts, head, n, MemoryScheme::DChoices { d: 10 });
        let wc = estimated_replicas(&counts, head, n, MemoryScheme::WChoices);
        let sg = estimated_replicas(&counts, head, n, MemoryScheme::Shuffle);
        assert!(pkg <= dc, "D-C must use at least as much as PKG");
        assert!(dc <= wc, "D-C must use no more than W-C");
        assert!(wc <= sg, "W-C must use no more than SG");
    }

    #[test]
    fn d_choices_with_d_two_equals_pkg() {
        let counts = sample_counts();
        assert_eq!(
            estimated_replicas(&counts, 3, 20, MemoryScheme::DChoices { d: 2 }),
            estimated_replicas(&counts, 3, 20, MemoryScheme::Pkg)
        );
    }

    #[test]
    fn w_choices_with_empty_head_equals_pkg() {
        let counts = sample_counts();
        assert_eq!(
            estimated_replicas(&counts, 0, 20, MemoryScheme::WChoices),
            estimated_replicas(&counts, 0, 20, MemoryScheme::Pkg)
        );
    }

    /// Rank-ordered counts of a Zipf(z)-distributed workload with the given
    /// number of keys and messages — the key-count shape Figures 5 and 6 use.
    fn zipf_counts(keys: usize, z: f64, messages: u64) -> Vec<u64> {
        let weights: Vec<f64> = (1..=keys).map(|i| (i as f64).powf(-z)).collect();
        let norm: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| ((w / norm) * messages as f64).round() as u64)
            .collect()
    }

    #[test]
    fn relative_overhead_signs_match_figures_5_and_6() {
        // W-C vs PKG is a (positive) overhead; W-C vs SG is a (negative)
        // saving. On the paper's workload shape (Zipf over 10^4 keys, 10^7
        // messages, head = keys above θ = 1/(5n)) the paper reports at most
        // ~30% extra memory over PKG and a large saving relative to SG.
        let n = 50usize;
        for z in [0.8, 1.2, 1.6, 2.0] {
            let counts = zipf_counts(10_000, z, 10_000_000);
            let total: u64 = counts.iter().sum();
            let theta = 1.0 / (5.0 * n as f64);
            let head = counts
                .iter()
                .filter(|&&c| c as f64 / total as f64 >= theta)
                .count();
            let vs_pkg =
                relative_overhead_pct(&counts, head, n, MemoryScheme::WChoices, MemoryScheme::Pkg);
            let vs_sg = relative_overhead_pct(
                &counts,
                head,
                n,
                MemoryScheme::WChoices,
                MemoryScheme::Shuffle,
            );
            assert!(vs_pkg >= 0.0, "z={z}");
            assert!(vs_sg <= 0.0, "z={z}");
            assert!(vs_pkg < 35.0, "z={z}: overhead vs PKG too large: {vs_pkg}");
            assert!(vs_sg < -50.0, "z={z}: saving vs SG too small: {vs_sg}");
        }
    }

    #[test]
    fn singleton_keys_never_cost_more_than_one_replica() {
        let counts = vec![1u64; 500];
        for scheme in [
            MemoryScheme::KeyGrouping,
            MemoryScheme::Pkg,
            MemoryScheme::DChoices { d: 16 },
            MemoryScheme::WChoices,
            MemoryScheme::Shuffle,
        ] {
            assert_eq!(estimated_replicas(&counts, 10, 32, scheme), 500);
        }
    }

    #[test]
    fn head_cardinality_larger_than_key_count_is_clamped() {
        let counts = vec![10u64, 5];
        let mem = estimated_replicas(&counts, 99, 4, MemoryScheme::WChoices);
        assert_eq!(mem, 4 + 4);
    }
}
