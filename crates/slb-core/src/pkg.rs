//! Partial Key Grouping (PKG): the power of both choices.
//!
//! PKG (Nasir et al., ICDE 2015) hashes every key with two independent
//! functions and sends the message to the less loaded of the two candidate
//! workers, according to the source's local load vector. Keys therefore
//! split across at most two workers, which bounds the state-replication and
//! aggregation overhead while adapting dynamically to skew — as long as no
//! single key exceeds the combined capacity of two workers (`p1 ≤ 2/n`),
//! which is exactly the assumption that breaks at large scale and motivates
//! D-Choices / W-Choices.

use std::hash::Hash;

use slb_hash::{HashFamily, KeyHash};

use crate::config::PartitionConfig;
use crate::load::LoadVector;
use crate::partitioner::Partitioner;

/// The Greedy-2 (PKG) partitioner.
#[derive(Debug, Clone)]
pub struct PartialKeyGrouping {
    family: HashFamily,
    loads: LoadVector,
}

impl PartialKeyGrouping {
    /// Creates a PKG partitioner from the configuration.
    pub fn new(config: &PartitionConfig) -> Self {
        Self {
            family: HashFamily::new(config.seed, 2, config.workers),
            loads: LoadVector::new(config.workers),
        }
    }

    /// The two candidate workers for `key` (may coincide on a hash
    /// collision, in which case the key effectively has one choice).
    pub fn candidates<K: KeyHash + ?Sized>(&self, key: &K) -> (usize, usize) {
        (self.family.choice(key, 0), self.family.choice(key, 1))
    }

    /// The Greedy-2 decision for one key, shared by `route` and
    /// `route_batch`: one digest, two derived candidates, less loaded wins
    /// (ties go to the first candidate, as in `min_load_among`).
    #[inline]
    fn route_one<K: KeyHash + ?Sized>(&mut self, key: &K) -> usize {
        let digest = key.digest();
        let a = self.family.choice_from_digest(digest, 0);
        let b = self.family.choice_from_digest(digest, 1);
        let worker = if self.loads.count(b) < self.loads.count(a) {
            b
        } else {
            a
        };
        self.loads.record(worker);
        worker
    }
}

impl<K: KeyHash + Eq + Hash + Clone + 'static> Partitioner<K> for PartialKeyGrouping {
    fn route(&mut self, key: &K) -> usize {
        self.route_one(key)
    }

    fn route_batch(&mut self, keys: &[K], out: &mut Vec<usize>) {
        out.clear();
        out.reserve(keys.len());
        for key in keys {
            out.push(self.route_one(key));
        }
    }

    fn rescale(&mut self, config: &PartitionConfig) {
        *self = PartialKeyGrouping::new(config);
    }

    fn workers(&self) -> usize {
        self.family.workers()
    }

    fn name(&self) -> &'static str {
        "PKG"
    }

    fn local_loads(&self) -> &LoadVector {
        &self.loads
    }

    fn current_choices(&mut self, _key: &K) -> usize {
        2
    }

    fn clone_box(&self) -> Box<dyn Partitioner<K>> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::imbalance;

    fn config(n: usize, seed: u64) -> PartitionConfig {
        PartitionConfig::new(n).with_seed(seed)
    }

    #[test]
    fn every_key_uses_at_most_two_workers() {
        let mut pkg = PartialKeyGrouping::new(&config(20, 3));
        let mut destinations: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        let mut state = 5u64;
        for _ in 0..50_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 100;
            let w = pkg.route(&key);
            destinations.entry(key).or_default().insert(w);
        }
        for (key, workers) in destinations {
            assert!(
                workers.len() <= 2,
                "key {key} reached {} workers",
                workers.len()
            );
        }
    }

    #[test]
    fn route_picks_the_less_loaded_candidate() {
        let mut pkg = PartialKeyGrouping::new(&config(10, 1));
        let (a, b) = pkg.candidates(&"skewed");
        if a == b {
            return; // hash collision: nothing to distinguish
        }
        // Pre-load candidate `a` by routing unrelated traffic to it directly.
        for _ in 0..100 {
            pkg.loads.record(a);
        }
        let w = pkg.route(&"skewed");
        assert_eq!(w, b, "must pick the less loaded of the two candidates");
    }

    #[test]
    fn balances_moderate_skew_much_better_than_key_grouping() {
        use crate::partitioner::KeyGrouping;
        let n = 10;
        let mut pkg = PartialKeyGrouping::new(&config(n, 9));
        let mut kg = KeyGrouping::new(&config(n, 9));
        // Zipf-ish stream: key i appears proportionally to 1/(i+1).
        let mut keys = Vec::new();
        for i in 0u64..50 {
            for _ in 0..(500 / (i + 1)) {
                keys.push(i);
            }
        }
        // Interleave deterministically.
        for round in 0..20 {
            for (j, &k) in keys.iter().enumerate() {
                if (j + round) % 20 == 0 {
                    pkg.route(&k);
                    kg.route(&k);
                }
            }
        }
        let pkg_imb = imbalance(Partitioner::<u64>::local_loads(&pkg).counts());
        let kg_imb = imbalance(Partitioner::<u64>::local_loads(&kg).counts());
        assert!(
            pkg_imb < kg_imb,
            "PKG imbalance {pkg_imb} should beat KG imbalance {kg_imb}"
        );
    }

    #[test]
    fn single_hot_key_splits_across_exactly_its_two_candidates() {
        let mut pkg = PartialKeyGrouping::new(&config(8, 4));
        let (a, b) = pkg.candidates(&"viral");
        for _ in 0..1_000 {
            let w = pkg.route(&"viral");
            assert!(w == a || w == b);
        }
        let loads = Partitioner::<&str>::local_loads(&pkg);
        if a != b {
            // The greedy process keeps the two candidates nearly even.
            let diff = loads.count(a).abs_diff(loads.count(b));
            assert!(diff <= 1, "hot key spread unevenly: {diff}");
        }
    }

    #[test]
    fn deterministic_given_seed_and_stream() {
        let mut a = PartialKeyGrouping::new(&config(16, 11));
        let mut b = PartialKeyGrouping::new(&config(16, 11));
        for i in 0..10_000u64 {
            assert_eq!(a.route(&(i % 37)), b.route(&(i % 37)));
        }
    }

    #[test]
    fn name_and_choices() {
        let mut pkg = PartialKeyGrouping::new(&config(5, 0));
        assert_eq!(Partitioner::<u64>::name(&pkg), "PKG");
        assert_eq!(Partitioner::<u64>::current_choices(&mut pkg, &1), 2);
        assert_eq!(Partitioner::<u64>::workers(&pkg), 5);
    }
}
