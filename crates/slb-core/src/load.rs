//! Per-source load estimation and the imbalance metric.
//!
//! Every source keeps a local vector of the number of messages it has sent
//! to each worker. As shown in the PKG paper and reiterated here (Section
//! IV-B, "Overhead on Sources"), this purely local estimate is an accurate
//! proxy for the true global load because all sources make decisions the
//! same way; no coordination is required. The Greedy-d process consults this
//! vector to pick the least loaded candidate.
//!
//! The module also defines the paper's imbalance metric
//! `I(t) = max_w L_w(t) − avg_w L_w(t)` over *fractional* loads.

use serde::{Deserialize, Serialize};

/// A per-worker message counter maintained by a single source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadVector {
    counts: Vec<u64>,
    total: u64,
}

impl LoadVector {
    /// Creates a zeroed load vector for `workers` workers.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "load vector needs at least one worker");
        Self {
            counts: vec![0; workers],
            total: 0,
        }
    }

    /// Number of workers tracked.
    #[inline]
    pub fn workers(&self) -> usize {
        self.counts.len()
    }

    /// Total messages recorded.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Messages recorded for `worker`.
    #[inline]
    pub fn count(&self, worker: usize) -> u64 {
        self.counts[worker]
    }

    /// The raw per-worker counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Records one message routed to `worker`.
    #[inline]
    pub fn record(&mut self, worker: usize) {
        self.counts[worker] += 1;
        self.total += 1;
    }

    /// Returns the least loaded worker among `candidates`, breaking ties in
    /// favour of the candidate listed first (deterministic, as required for
    /// reproducible experiments).
    ///
    /// # Panics
    /// Panics if `candidates` is empty or contains an out-of-range index.
    #[inline]
    pub fn min_load_among(&self, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "need at least one candidate worker");
        let mut best = candidates[0];
        let mut best_load = self.counts[best];
        for &c in &candidates[1..] {
            let load = self.counts[c];
            if load < best_load {
                best = c;
                best_load = load;
            }
        }
        best
    }

    /// Returns the least loaded worker overall (used by W-Choices for head
    /// keys), breaking ties in favour of the lowest index.
    #[inline]
    pub fn min_load_all(&self) -> usize {
        let mut best = 0;
        let mut best_load = self.counts[0];
        for (w, &load) in self.counts.iter().enumerate().skip(1) {
            if load < best_load {
                best = w;
                best_load = load;
            }
        }
        best
    }

    /// Fractional load of each worker (`counts / total`); all zeros if no
    /// message has been recorded yet.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// The imbalance `I(t)` of this load vector.
    pub fn imbalance(&self) -> f64 {
        imbalance(&self.counts)
    }

    /// Merges another load vector into this one (summing counts); used to
    /// compute the true global load from per-source local vectors.
    ///
    /// # Panics
    /// Panics if the worker counts differ.
    pub fn merge(&mut self, other: &LoadVector) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "mismatched worker counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// The paper's load imbalance metric over raw message counts:
/// `I = max_w(L_w) − avg_w(L_w)` where `L_w` is the *fraction* of messages
/// handled by worker `w`. Returns 0 for an empty load.
pub fn imbalance(counts: &[u64]) -> f64 {
    assert!(!counts.is_empty(), "imbalance of zero workers is undefined");
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = *counts.iter().max().expect("non-empty") as f64 / total as f64;
    let avg = 1.0 / counts.len() as f64;
    max - avg
}

/// Imbalance over already-normalized fractional loads.
pub fn imbalance_fractions(loads: &[f64]) -> f64 {
    assert!(!loads.is_empty(), "imbalance of zero workers is undefined");
    let max = loads.iter().cloned().fold(f64::MIN, f64::max);
    let avg = loads.iter().sum::<f64>() / loads.len() as f64;
    max - avg
}

/// Incremental per-window load accounting for a single source.
///
/// `StageMetrics` only assembles per-window imbalance at end-of-run; the
/// elasticity controller needs the imbalance of the *window that just
/// closed*, inside the source hot loop, without allocating. This is a
/// fixed-capacity counter buffer sized once to the spawned worker universe:
/// `record` is a single index increment, and `finish_window` computes the
/// closing window's imbalance over the active prefix and resets the buffer
/// in place.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerWindowLoads {
    counts: Vec<u64>,
    total: u64,
    max_count: u64,
}

impl PerWindowLoads {
    /// Creates a zeroed buffer for a universe of `workers` workers.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "per-window loads need at least one worker");
        Self {
            counts: vec![0; workers],
            total: 0,
            max_count: 0,
        }
    }

    /// Records one message routed to `worker` in the current window.
    #[inline]
    pub fn record(&mut self, worker: usize) {
        let c = self.counts[worker] + 1;
        self.counts[worker] = c;
        self.total += 1;
        if c > self.max_count {
            self.max_count = c;
        }
    }

    /// Messages recorded in the current window so far.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The largest per-worker count in the current window so far.
    #[inline]
    pub fn max_count(&self) -> u64 {
        self.max_count
    }

    /// The raw per-worker counts of the current window (full universe).
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Closes the current window: returns its imbalance evaluated over the
    /// first `active` workers and resets the buffer for the next window.
    /// Zero-allocation: the buffer is `fill(0)` in place.
    ///
    /// # Panics
    /// Panics if `active` is zero or exceeds the worker universe.
    pub fn finish_window(&mut self, active: usize) -> f64 {
        assert!(
            active > 0 && active <= self.counts.len(),
            "active worker count {active} out of range"
        );
        debug_assert!(
            self.counts[active..].iter().all(|&c| c == 0),
            "window routed messages beyond its {active} active workers"
        );
        let imb = imbalance(&self.counts[..active]);
        self.counts.fill(0);
        self.total = 0;
        self.max_count = 0;
        imb
    }
}

/// Per-phase per-worker load accounting for multi-phase (scenario) runs.
///
/// A scenario changes the active worker set and the workload at phase
/// boundaries, so run-total loads are no longer the unit of analysis: the
/// paper's imbalance metric must be evaluated *per phase over that phase's
/// active workers*. This matrix accumulates counts per `(phase, worker)` and
/// answers both the per-phase and the run-total questions; engine and
/// simulator share it so their per-phase metrics are computed identically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseLoadMatrix {
    /// `counts[phase][worker]`, each row sized to the full worker universe.
    counts: Vec<Vec<u64>>,
}

impl PhaseLoadMatrix {
    /// Creates a zeroed matrix for `phases` phases over a universe of
    /// `workers` workers (the *maximum* worker count across phases; phases
    /// that use fewer simply never record the higher indices).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(phases: usize, workers: usize) -> Self {
        assert!(phases > 0, "phase matrix needs at least one phase");
        assert!(workers > 0, "phase matrix needs at least one worker");
        Self {
            counts: vec![vec![0; workers]; phases],
        }
    }

    /// Number of phases tracked.
    #[inline]
    pub fn phases(&self) -> usize {
        self.counts.len()
    }

    /// Size of the worker universe.
    #[inline]
    pub fn workers(&self) -> usize {
        self.counts[0].len()
    }

    /// Records `n` messages routed to `worker` during `phase`.
    #[inline]
    pub fn add(&mut self, phase: usize, worker: usize, n: u64) {
        self.counts[phase][worker] += n;
    }

    /// The per-worker counts of one phase (full worker universe).
    #[inline]
    pub fn phase_counts(&self, phase: usize) -> &[u64] {
        &self.counts[phase]
    }

    /// Total messages recorded during `phase`.
    pub fn phase_total(&self, phase: usize) -> u64 {
        self.counts[phase].iter().sum()
    }

    /// The imbalance of `phase` evaluated over its first `active` workers —
    /// the phase's active worker set. Counts recorded beyond `active` would
    /// indicate a routing bug; they are asserted against in debug builds.
    ///
    /// # Panics
    /// Panics if `active` is zero or exceeds the worker universe.
    pub fn phase_imbalance(&self, phase: usize, active: usize) -> f64 {
        assert!(
            active > 0 && active <= self.workers(),
            "active worker count {active} out of range"
        );
        debug_assert!(
            self.counts[phase][active..].iter().all(|&c| c == 0),
            "phase {phase} routed messages beyond its {active} active workers"
        );
        imbalance(&self.counts[phase][..active])
    }

    /// Per-worker totals across all phases (the run-total load vector).
    pub fn worker_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.workers()];
        for row in &self.counts {
            for (t, &c) in totals.iter_mut().zip(row) {
                *t += c;
            }
        }
        totals
    }

    /// Total messages across all phases and workers.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut lv = LoadVector::new(3);
        lv.record(0);
        lv.record(0);
        lv.record(2);
        assert_eq!(lv.count(0), 2);
        assert_eq!(lv.count(1), 0);
        assert_eq!(lv.count(2), 1);
        assert_eq!(lv.total(), 3);
        assert_eq!(lv.counts(), &[2, 0, 1]);
    }

    #[test]
    fn min_load_among_prefers_first_on_ties() {
        let mut lv = LoadVector::new(4);
        lv.record(1);
        // Workers 0, 2, 3 all have zero load; candidate order decides.
        assert_eq!(lv.min_load_among(&[2, 3, 0]), 2);
        assert_eq!(lv.min_load_among(&[0, 2]), 0);
        // A strictly lighter candidate wins regardless of order.
        assert_eq!(lv.min_load_among(&[1, 3]), 3);
    }

    #[test]
    fn min_load_all_scans_every_worker() {
        let mut lv = LoadVector::new(5);
        for w in [0, 0, 1, 1, 2, 3] {
            lv.record(w);
        }
        assert_eq!(lv.min_load_all(), 4);
        lv.record(4);
        lv.record(4);
        assert_eq!(
            lv.min_load_all(),
            2,
            "ties broken toward lowest index among (2,3)"
        );
    }

    #[test]
    fn imbalance_of_perfect_balance_is_zero() {
        assert!(imbalance(&[10, 10, 10, 10]).abs() < 1e-12);
        assert!(
            imbalance(&[0, 0, 0]).abs() < 1e-12,
            "empty load has no imbalance"
        );
    }

    #[test]
    fn imbalance_of_fully_skewed_load() {
        // One worker takes everything: I = 1 - 1/n.
        let i = imbalance(&[100, 0, 0, 0]);
        assert!((i - 0.75).abs() < 1e-12);
    }

    #[test]
    fn imbalance_matches_hand_computed_value() {
        // Loads 50, 30, 20 → fractions 0.5, 0.3, 0.2 → max 0.5, avg 1/3.
        let i = imbalance(&[50, 30, 20]);
        assert!((i - (0.5 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn imbalance_fractions_agrees_with_counts() {
        let counts = [7u64, 3, 5, 1];
        let total: u64 = counts.iter().sum();
        let fractions: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        assert!((imbalance(&counts) - imbalance_fractions(&fractions)).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut lv = LoadVector::new(4);
        for w in [0, 1, 1, 2, 3, 3, 3] {
            lv.record(w);
        }
        let sum: f64 = lv.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = LoadVector::new(3);
        a.record(0);
        a.record(1);
        let mut b = LoadVector::new(3);
        b.record(1);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 2, 1]);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "mismatched worker counts")]
    fn merge_of_mismatched_sizes_panics() {
        let mut a = LoadVector::new(2);
        let b = LoadVector::new(3);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn min_load_among_empty_candidates_panics() {
        let lv = LoadVector::new(2);
        let _ = lv.min_load_among(&[]);
    }

    #[test]
    fn phase_matrix_accumulates_and_totals() {
        let mut m = PhaseLoadMatrix::new(2, 4);
        m.add(0, 0, 5);
        m.add(0, 1, 5);
        m.add(1, 2, 7);
        m.add(1, 0, 3);
        assert_eq!(m.phases(), 2);
        assert_eq!(m.workers(), 4);
        assert_eq!(m.phase_counts(0), &[5, 5, 0, 0]);
        assert_eq!(m.phase_total(0), 10);
        assert_eq!(m.phase_total(1), 10);
        assert_eq!(m.worker_totals(), vec![8, 5, 7, 0]);
        assert_eq!(m.total(), 20);
    }

    #[test]
    fn phase_imbalance_uses_only_the_active_set() {
        let mut m = PhaseLoadMatrix::new(1, 8);
        // Phase uses 2 active workers, perfectly balanced; the 6 inactive
        // workers must not drag the average down.
        m.add(0, 0, 50);
        m.add(0, 1, 50);
        assert!(m.phase_imbalance(0, 2).abs() < 1e-12);
        // Over the full universe the same counts look very imbalanced.
        assert!(imbalance(m.phase_counts(0)) > 0.3);
    }

    #[test]
    fn phase_imbalance_matches_plain_imbalance_on_active_prefix() {
        let mut m = PhaseLoadMatrix::new(1, 5);
        for (w, n) in [(0, 50), (1, 30), (2, 20)] {
            m.add(0, w, n);
        }
        assert!((m.phase_imbalance(0, 3) - imbalance(&[50, 30, 20])).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phase_imbalance_rejects_oversized_active_set() {
        let m = PhaseLoadMatrix::new(1, 3);
        let _ = m.phase_imbalance(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn zero_phase_matrix_panics() {
        let _ = PhaseLoadMatrix::new(0, 2);
    }

    #[test]
    fn per_window_loads_match_plain_imbalance_and_reset() {
        let mut w = PerWindowLoads::new(4);
        for slot in [0, 0, 0, 1, 2] {
            w.record(slot);
        }
        assert_eq!(w.total(), 5);
        assert_eq!(w.max_count(), 3);
        let imb = w.finish_window(3);
        assert!((imb - imbalance(&[3, 1, 1])).abs() < 1e-15);
        // Fully reset: the next window starts from zero.
        assert_eq!(w.total(), 0);
        assert_eq!(w.max_count(), 0);
        assert!((w.finish_window(4) - 0.0).abs() < 1e-15, "empty window");
    }

    #[test]
    fn per_window_loads_evaluate_over_active_prefix_only() {
        let mut w = PerWindowLoads::new(8);
        w.record(0);
        w.record(1);
        assert!(w.finish_window(2).abs() < 1e-12, "balanced over 2 active");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn per_window_loads_reject_oversized_active_set() {
        let mut w = PerWindowLoads::new(2);
        let _ = w.finish_window(3);
    }
}
