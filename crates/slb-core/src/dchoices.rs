//! The D-Choices solver: how many choices do the head keys need?
//!
//! Section IV-A of the paper formulates the choice of `d` as a minimization
//! problem: use the smallest `d` such that the expected imbalance stays below
//! the tolerance `ε`. Solving the constraint analytically is hard, so the
//! paper derives a family of necessary conditions (Eqn. 3), one per prefix of
//! the head, using a lower bound on the cumulative load of the workers
//! responsible for that prefix:
//!
//! ```text
//!   Σ_{i≤h} p_i  +  (b_h/n)^d · Σ_{h<i≤|H|} p_i  +  (b_h/n)^2 · Σ_{i>|H|} p_i
//!       ≤  b_h · (1/n + ε)                         for every prefix length h,
//!   where b_h = n − n·((n−1)/n)^{h·d}
//! ```
//!
//! `FIND­OPTIMAL­CHOICES` starts from the trivial lower bound `d = ⌈p₁·n⌉`
//! (a key with frequency `p₁` needs at least `p₁·n` workers) and increases
//! `d` until every prefix constraint is satisfied, or `d` reaches `n`, at
//! which point the caller should switch to W-Choices.

use serde::{Deserialize, Serialize};

/// Outcome of the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChoicesDecision {
    /// Use a Greedy-d process with this many choices for the head keys.
    UseD(usize),
    /// No `d < n` satisfies the constraints: switch to W-Choices (all
    /// workers are candidates for head keys).
    SwitchToW,
}

impl ChoicesDecision {
    /// The number of candidate workers implied by the decision, given `n`.
    pub fn effective_d(&self, workers: usize) -> usize {
        match self {
            ChoicesDecision::UseD(d) => *d,
            ChoicesDecision::SwitchToW => workers,
        }
    }
}

/// Expected number of distinct workers covered when assigning `h` head keys
/// with `d` choices each over `n` workers (Appendix A of the paper):
/// `b_h = n − n·((n−1)/n)^{h·d}`.
///
/// This is the expected number of occupied bins after throwing `h·d` balls
/// uniformly at random (with replacement) into `n` bins.
pub fn expected_worker_set_size(workers: usize, h: usize, d: usize) -> f64 {
    assert!(workers > 0, "worker count must be positive");
    let n = workers as f64;
    let exponent = (h * d) as f64;
    n - n * ((n - 1.0) / n).powf(exponent)
}

/// Checks the prefix constraint of Eqn. 3 for a single prefix length `h`
/// (1-based: `h = 1` is the hottest key alone).
///
/// * `head` — estimated relative frequencies of the head keys, sorted
///   descending.
/// * `tail_mass` — total relative frequency of all non-head keys.
fn prefix_constraint_holds(
    head: &[f64],
    tail_mass: f64,
    workers: usize,
    d: usize,
    epsilon: f64,
    h: usize,
) -> bool {
    let n = workers as f64;
    let bh = expected_worker_set_size(workers, h, d);
    let ratio = (bh / n).clamp(0.0, 1.0);
    let prefix_mass: f64 = head[..h].iter().sum();
    let rest_of_head: f64 = head[h..].iter().sum();
    let lhs = prefix_mass + ratio.powi(d as i32) * rest_of_head + ratio.powi(2) * tail_mass;
    let rhs = bh * (1.0 / n + epsilon);
    lhs <= rhs
}

/// Returns true if Greedy-d with `d` choices for the head satisfies every
/// prefix constraint of Eqn. 3.
pub fn constraints_hold(
    head: &[f64],
    tail_mass: f64,
    workers: usize,
    d: usize,
    epsilon: f64,
) -> bool {
    (1..=head.len()).all(|h| prefix_constraint_holds(head, tail_mass, workers, d, epsilon, h))
}

/// `FINDOPTIMALCHOICES`: the smallest `d ≥ 2` satisfying Eqn. 3, or the
/// decision to switch to W-Choices when no `d < n` works.
///
/// * `head` — estimated relative frequencies of the head keys, sorted in
///   descending order (the solver sorts defensively if they are not).
/// * `tail_mass` — total relative frequency of the non-head keys.
/// * `workers` — the number of downstream workers `n`.
/// * `epsilon` — the imbalance tolerance ε.
///
/// With an empty head the answer is always `UseD(2)` (plain PKG).
pub fn find_optimal_choices(
    head: &[f64],
    tail_mass: f64,
    workers: usize,
    epsilon: f64,
) -> ChoicesDecision {
    assert!(workers > 0, "worker count must be positive");
    assert!(epsilon > 0.0, "epsilon must be positive");
    if head.is_empty() {
        return ChoicesDecision::UseD(2);
    }
    let mut head_sorted: Vec<f64> = head.to_vec();
    head_sorted.sort_by(|a, b| b.partial_cmp(a).expect("frequencies are finite"));

    let p1 = head_sorted[0];
    // Lower bound: a key with frequency p1 needs at least p1·n workers, and
    // never fewer than the 2 choices the tail already has.
    let mut d = ((p1 * workers as f64).ceil() as usize).max(2);
    while d < workers {
        if constraints_hold(&head_sorted, tail_mass, workers, d, epsilon) {
            return ChoicesDecision::UseD(d);
        }
        d += 1;
    }
    // d == n is not sensible for a hashed Greedy-d process (collisions leave
    // workers uncovered); the paper switches to W-Choices instead.
    if constraints_hold(&head_sorted, tail_mass, workers, workers, epsilon) {
        ChoicesDecision::SwitchToW
    } else {
        // Even d = n cannot satisfy the bound (extremely skewed head, e.g.
        // p1 close to 1): W-Choices is still the best available answer.
        ChoicesDecision::SwitchToW
    }
}

/// Convenience: the fraction of workers `d/n` chosen by the solver, as
/// plotted in Figure 4. `SwitchToW` counts as `d = n`.
pub fn d_fraction(head: &[f64], tail_mass: f64, workers: usize, epsilon: f64) -> f64 {
    let decision = find_optimal_choices(head, tail_mass, workers, epsilon);
    decision.effective_d(workers) as f64 / workers as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the head/tail split of a Zipf distribution the same way the
    /// analysis section of the paper does: head = keys with p ≥ θ.
    fn zipf_head_tail(keys: usize, z: f64, theta: f64) -> (Vec<f64>, f64) {
        let probs: Vec<f64> = {
            let mut p: Vec<f64> = (1..=keys).map(|i| (i as f64).powf(-z)).collect();
            let s: f64 = p.iter().sum();
            p.iter_mut().for_each(|x| *x /= s);
            p
        };
        let head: Vec<f64> = probs.iter().copied().filter(|&p| p >= theta).collect();
        let tail_mass: f64 = probs.iter().copied().filter(|&p| p < theta).sum();
        (head, tail_mass)
    }

    #[test]
    fn bh_matches_closed_form_edge_cases() {
        // One key, one choice: exactly one worker covered in expectation is
        // n·(1 - (1-1/n)) = 1.
        assert!((expected_worker_set_size(10, 1, 1) - 1.0).abs() < 1e-9);
        // Many placements cover nearly all workers.
        let b = expected_worker_set_size(10, 100, 10);
        assert!(b > 9.999);
        // b_h is increasing in both h and d.
        assert!(expected_worker_set_size(50, 2, 3) > expected_worker_set_size(50, 1, 3));
        assert!(expected_worker_set_size(50, 2, 4) > expected_worker_set_size(50, 2, 3));
    }

    #[test]
    fn bh_matches_monte_carlo_estimate() {
        // Appendix A check: simulate throwing h·d balls into n bins and
        // compare the expected number of occupied bins with the formula.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for &(n, h, d) in &[(10usize, 2usize, 3usize), (50, 4, 5), (100, 3, 7)] {
            let trials = 3_000;
            let mut total_occupied = 0usize;
            for _ in 0..trials {
                let mut occupied = vec![false; n];
                for _ in 0..h * d {
                    occupied[rng.gen_range(0..n)] = true;
                }
                total_occupied += occupied.iter().filter(|&&o| o).count();
            }
            let empirical = total_occupied as f64 / trials as f64;
            let formula = expected_worker_set_size(n, h, d);
            assert!(
                (empirical - formula).abs() < 0.15,
                "n={n} h={h} d={d}: empirical {empirical} vs formula {formula}"
            );
        }
    }

    #[test]
    fn empty_head_defaults_to_two_choices() {
        assert_eq!(
            find_optimal_choices(&[], 1.0, 50, 1e-4),
            ChoicesDecision::UseD(2)
        );
    }

    #[test]
    fn mild_skew_needs_exactly_two_choices() {
        // z = 0.5 on 10^4 keys: p1 ≈ 0.5% — PKG's assumptions hold even at
        // n = 50, so the solver should not add choices.
        let (head, tail) = zipf_head_tail(10_000, 0.5, 1.0 / (5.0 * 50.0));
        let d = find_optimal_choices(&head, tail, 50, 1e-4);
        assert_eq!(d, ChoicesDecision::UseD(2));
    }

    #[test]
    fn d_grows_with_skew() {
        let n = 50;
        let theta = 1.0 / (5.0 * n as f64);
        let mut last_d = 0usize;
        for z in [1.0, 1.4, 1.8, 2.0] {
            let (head, tail) = zipf_head_tail(10_000, z, theta);
            let d = find_optimal_choices(&head, tail, n, 1e-4).effective_d(n);
            assert!(
                d >= last_d,
                "d must not decrease as skew grows (z={z}: {d} < {last_d})"
            );
            last_d = d;
        }
        assert!(
            last_d > 2,
            "extreme skew must require more than two choices"
        );
    }

    #[test]
    fn d_at_least_p1_times_n() {
        // The trivial lower bound d ≥ p1·n must hold in the output.
        let n = 100;
        let (head, tail) = zipf_head_tail(10_000, 2.0, 1.0 / (5.0 * n as f64));
        let p1 = head[0];
        let d = find_optimal_choices(&head, tail, n, 1e-4).effective_d(n);
        assert!(d as f64 >= (p1 * n as f64).floor());
    }

    #[test]
    fn returned_d_is_minimal() {
        // The solver's d satisfies the constraints while d-1 does not
        // (unless d is the floor of 2).
        let n = 50;
        let theta = 1.0 / (5.0 * n as f64);
        for z in [1.2, 1.6, 2.0] {
            let (head, tail) = zipf_head_tail(10_000, z, theta);
            match find_optimal_choices(&head, tail, n, 1e-4) {
                ChoicesDecision::UseD(d) => {
                    assert!(constraints_hold(&head, tail, n, d, 1e-4));
                    if d > 2 {
                        assert!(
                            !constraints_hold(&head, tail, n, d - 1, 1e-4),
                            "z={z}: d={d} is not minimal"
                        );
                    }
                }
                ChoicesDecision::SwitchToW => {
                    // Acceptable for extreme skews; nothing further to check.
                }
            }
        }
    }

    #[test]
    fn single_dominant_key_switches_to_w_choices_on_large_clusters() {
        // One key holding 60% of the stream (the z = 2 situation described in
        // the introduction): on 100 workers no small d suffices, and the
        // solver must either pick a large d or switch to W-Choices.
        let head = vec![0.6];
        let decision = find_optimal_choices(&head, 0.4, 100, 1e-4);
        match decision {
            ChoicesDecision::UseD(d) => assert!(d >= 60, "d = {d} too small for p1 = 0.6"),
            ChoicesDecision::SwitchToW => {}
        }
    }

    #[test]
    fn d_fraction_is_between_zero_and_one() {
        for n in [5usize, 10, 50, 100] {
            let theta = 1.0 / (5.0 * n as f64);
            for z in [0.4, 1.0, 1.6, 2.0] {
                let (head, tail) = zipf_head_tail(10_000, z, theta);
                let f = d_fraction(&head, tail, n, 1e-4);
                assert!(f > 0.0 && f <= 1.0, "n={n} z={z}: fraction {f}");
            }
        }
    }

    #[test]
    fn unsorted_head_is_handled() {
        let head = vec![0.05, 0.3, 0.1];
        let sorted = vec![0.3, 0.1, 0.05];
        assert_eq!(
            find_optimal_choices(&head, 0.55, 20, 1e-4),
            find_optimal_choices(&sorted, 0.55, 20, 1e-4)
        );
    }

    #[test]
    fn tighter_epsilon_needs_no_fewer_choices() {
        let (head, tail) = zipf_head_tail(10_000, 1.5, 1.0 / 250.0);
        let loose = find_optimal_choices(&head, tail, 50, 1e-2).effective_d(50);
        let tight = find_optimal_choices(&head, tail, 50, 1e-5).effective_d(50);
        assert!(tight >= loose);
    }
}
