//! The closed-loop elasticity controller (ROADMAP item 3).
//!
//! Nasir et al. pick the number of choices `d` *offline* from the analytical
//! bound; this module closes the loop at runtime. Each source runs one
//! [`ElasticityController`] stepped at every window boundary with two purely
//! local signals:
//!
//! 1. the per-window per-worker counts of the window that just closed
//!    (via [`crate::PerWindowLoads`], zero-allocation in the hot loop), and
//! 2. the head-frequency estimates of its own partitioner's SpaceSaving
//!    tracker (via [`crate::Partitioner::head_snapshot`]).
//!
//! From these it makes two kinds of decisions, in a fixed order:
//!
//! * **Worker activation/deactivation** — scale out when the hottest worker
//!   absorbed more than `worker_capacity` tuples in the closing window;
//!   scale in when the whole window would fit comfortably (at
//!   `scale_in_occupancy`) on `step` fewer workers. Both require the
//!   condition to hold for `patience` consecutive windows and respect a
//!   `cooldown` after any action — the hysteresis that keeps the controller
//!   from flapping. Scale-out *suppresses* scale-in (not merely outranks
//!   it), which makes the action sequence on a constant signal monotone:
//!   the controller can never oscillate between the two (proven by
//!   `controller_props`).
//! * **Online `d` re-solving** — when the worker count did *not* change,
//!   re-run [`find_optimal_choices`] on the current head snapshot and, if
//!   the optimum moved, retune the partitioner via `apply_choices`. When
//!   the worker count *did* change, the partitioner is rebuilt by `rescale`
//!   and the head must be re-learned first, so the retune step is skipped
//!   for that window.
//!
//! Determinism: both signals are pure functions of the source's own stream
//! prefix, so the whole decision sequence is too — rerun-, batch-size-, and
//! backend-invariant, replayable analytically by the simulator and replayed
//! bit-identically by the engine's recovery path.

use serde::{Deserialize, Serialize};

use crate::dchoices::{find_optimal_choices, ChoicesDecision};

/// Tuning knobs for the elasticity controller. Validated by [`Self::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// The controller never deactivates below this many workers.
    pub min_workers: usize,
    /// The controller never activates beyond this many workers (the spawned
    /// worker universe must cover it).
    pub max_workers: usize,
    /// Tuples one worker is expected to absorb per window per source: the
    /// scale-out trigger is a per-window worker count above this.
    pub worker_capacity: u64,
    /// Scale in only if the whole window fits at this occupancy on `step`
    /// fewer workers (0 < occupancy ≤ 1). Lower is more conservative.
    pub scale_in_occupancy: f64,
    /// Consecutive windows a condition must hold before acting.
    pub patience: u32,
    /// Windows after any scale action during which no further scale action
    /// fires (the head re-learns and the signal settles first).
    pub cooldown: u32,
    /// Workers added or removed per scale action.
    pub step: usize,
    /// Imbalance tolerance ε handed to the D-Choices solver when retuning.
    pub epsilon: f64,
}

impl ControllerConfig {
    /// A controller for worker counts in `[min_workers, max_workers]` with a
    /// per-window per-worker capacity, and conservative defaults for the
    /// hysteresis knobs: 50% scale-in occupancy, patience 2, cooldown 2,
    /// step 1, ε = 10⁻⁴.
    pub fn new(min_workers: usize, max_workers: usize, worker_capacity: u64) -> Self {
        let cfg = Self {
            min_workers,
            max_workers,
            worker_capacity,
            scale_in_occupancy: 0.5,
            patience: 2,
            cooldown: 2,
            step: 1,
            epsilon: 1e-4,
        };
        cfg.validate();
        cfg
    }

    /// Sets the scale-in occupancy bound.
    pub fn with_scale_in_occupancy(mut self, occupancy: f64) -> Self {
        self.scale_in_occupancy = occupancy;
        self.validate();
        self
    }

    /// Sets the patience (consecutive windows before acting).
    pub fn with_patience(mut self, patience: u32) -> Self {
        self.patience = patience;
        self.validate();
        self
    }

    /// Sets the cooldown (quiet windows after an action).
    pub fn with_cooldown(mut self, cooldown: u32) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Sets the scale step (workers per action).
    pub fn with_step(mut self, step: usize) -> Self {
        self.step = step;
        self.validate();
        self
    }

    /// Sets the solver tolerance ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self.validate();
        self
    }

    /// Panics if any knob is out of range.
    pub fn validate(&self) {
        assert!(self.min_workers >= 1, "min_workers must be at least 1");
        assert!(
            self.max_workers >= self.min_workers,
            "max_workers {} below min_workers {}",
            self.max_workers,
            self.min_workers
        );
        assert!(self.worker_capacity > 0, "worker_capacity must be positive");
        assert!(
            self.scale_in_occupancy > 0.0 && self.scale_in_occupancy <= 1.0,
            "scale_in_occupancy must be in (0, 1], got {}",
            self.scale_in_occupancy
        );
        assert!(self.patience >= 1, "patience must be at least 1");
        assert!(self.step >= 1, "step must be at least 1");
        assert!(self.epsilon > 0.0, "epsilon must be positive");
    }

    /// Clamps a phase-advisory worker count into the controller's bounds.
    pub fn clamp_workers(&self, workers: usize) -> usize {
        workers.clamp(self.min_workers, self.max_workers)
    }
}

/// What a controller decision did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControllerAction {
    /// Activated `step` more workers (rescale followed).
    ScaleOut,
    /// Deactivated `step` workers (rescale followed).
    ScaleIn,
    /// Re-solved `d` and the optimum moved (`apply_choices` followed).
    Retune,
}

/// One logged controller decision. Only *changes* are logged — windows where
/// the controller held steady produce no event, so logs stay small and the
/// cross-backend equality check (`controller_differential`) is sharp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerEvent {
    /// Source that made the decision (each source decides independently).
    pub source: u32,
    /// 1-based count of windows this source's controller had observed when
    /// it acted (its own deterministic clock).
    pub window: u64,
    /// What changed.
    pub action: ControllerAction,
    /// Active workers *after* the action.
    pub workers: u32,
    /// Head choices after the action: `d` for `UseD(d)`, `0` for the
    /// W-Choices fallback (see [`encode_decision`]).
    pub d: u32,
}

/// Encodes a solver decision as a single u32 for event logs and the wire:
/// `SwitchToW` ↦ 0, `UseD(d)` ↦ `d` (always ≥ 2, so the encoding is
/// unambiguous).
pub fn encode_decision(decision: ChoicesDecision) -> u32 {
    match decision {
        ChoicesDecision::SwitchToW => 0,
        ChoicesDecision::UseD(d) => d as u32,
    }
}

/// Inverse of [`encode_decision`].
pub fn decode_decision(d: u32) -> ChoicesDecision {
    if d == 0 {
        ChoicesDecision::SwitchToW
    } else {
        ChoicesDecision::UseD(d as usize)
    }
}

/// Controller decisions merged across sources, attached to `EngineResult`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerMetrics {
    /// Whether a controller ran at all (distinguishes "ran, no events" from
    /// "not enabled").
    pub enabled: bool,
    /// All decisions, canonically sorted by `(source, window)`.
    pub events: Vec<ControllerEvent>,
}

impl ControllerMetrics {
    /// Merges per-source event logs into the canonical order.
    pub fn merged(mut events: Vec<ControllerEvent>) -> Self {
        events.sort_by_key(|e| (e.source, e.window));
        Self {
            enabled: true,
            events,
        }
    }

    /// Events of one source, in window order.
    pub fn for_source(&self, source: u32) -> Vec<ControllerEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.source == source)
            .collect()
    }
}

/// The per-source controller state machine. See the module docs for the
/// policy; [`Self::observe_window`] and [`Self::retune`] are the two steps,
/// called in that order at each window boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticityController {
    cfg: ControllerConfig,
    source: u32,
    active: usize,
    decision: ChoicesDecision,
    window: u64,
    out_streak: u32,
    in_streak: u32,
    cooldown_left: u32,
    events: Vec<ControllerEvent>,
}

impl ElasticityController {
    /// Creates a controller for `source`, starting from the (clamped)
    /// advisory worker count. The initial `d` matches a freshly built
    /// partitioner's default (`UseD(2)`).
    pub fn new(cfg: ControllerConfig, source: u32, initial_workers: usize) -> Self {
        cfg.validate();
        let active = cfg.clamp_workers(initial_workers);
        Self {
            cfg,
            source,
            active,
            decision: ChoicesDecision::UseD(2),
            window: 0,
            out_streak: 0,
            in_streak: 0,
            cooldown_left: 0,
            events: Vec::new(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Active workers as decided by the controller.
    pub fn active_workers(&self) -> usize {
        self.active
    }

    /// The controller's current view of the solver decision.
    pub fn current_decision(&self) -> ChoicesDecision {
        self.decision
    }

    /// Windows observed so far.
    pub fn windows_observed(&self) -> u64 {
        self.window
    }

    /// The decision log so far (only changes are logged).
    pub fn events(&self) -> &[ControllerEvent] {
        &self.events
    }

    /// Drains the decision log (used at end of run).
    pub fn take_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut self.events)
    }

    /// Step 1 at a window boundary: the activation policy. `window_total`
    /// and `window_max` are the closing window's total tuples and hottest
    /// worker's tuples for *this source*. Returns `Some(new_active)` when
    /// the worker count changed — the caller must `rescale` its partitioner
    /// to the new count and skip [`Self::retune`] for this boundary.
    pub fn observe_window(&mut self, window_total: u64, window_max: u64) -> Option<usize> {
        self.window += 1;
        let scale_out_wanted = window_max > self.cfg.worker_capacity;
        // Scale-out pressure *suppresses* scale-in entirely (it does not
        // merely win ties): on a constant signal the controller therefore
        // only ever moves in one direction — the non-oscillation guarantee.
        if scale_out_wanted {
            self.in_streak = 0;
            self.out_streak += 1;
            if self.ready(self.out_streak) && self.active < self.cfg.max_workers {
                let new = (self.active + self.cfg.step).min(self.cfg.max_workers);
                return Some(self.scale_to(new, ControllerAction::ScaleOut));
            }
        } else {
            self.out_streak = 0;
            let target = self
                .active
                .saturating_sub(self.cfg.step)
                .max(self.cfg.min_workers);
            let fits = target < self.active
                && window_total as f64
                    <= self.cfg.scale_in_occupancy
                        * self.cfg.worker_capacity as f64
                        * target as f64;
            if fits {
                self.in_streak += 1;
                if self.ready(self.in_streak) {
                    return Some(self.scale_to(target, ControllerAction::ScaleIn));
                }
            } else {
                self.in_streak = 0;
            }
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
        }
        None
    }

    fn ready(&self, streak: u32) -> bool {
        streak >= self.cfg.patience && self.cooldown_left == 0
    }

    fn scale_to(&mut self, new_active: usize, action: ControllerAction) -> usize {
        self.active = new_active;
        // The partitioner is rebuilt at the new count: its solver state
        // resets to the fresh default and the head must re-learn.
        self.decision = ChoicesDecision::UseD(2);
        self.out_streak = 0;
        self.in_streak = 0;
        self.cooldown_left = self.cfg.cooldown;
        self.push_event(action);
        new_active
    }

    /// Step 2 at a window boundary (only when step 1 made no change):
    /// re-solve `d` from the partitioner's head snapshot. Returns the new
    /// decision when the optimum moved — the caller must hand it to
    /// `Partitioner::apply_choices`.
    pub fn retune(&mut self, head_frequencies: &[f64], tail_mass: f64) -> Option<ChoicesDecision> {
        let solved =
            find_optimal_choices(head_frequencies, tail_mass, self.active, self.cfg.epsilon);
        if solved == self.decision {
            return None;
        }
        self.decision = solved;
        self.push_event(ControllerAction::Retune);
        Some(solved)
    }

    /// Phase boundaries rebuild the partitioner (the engine always rescales
    /// there); the controller's `d` view must follow the fresh default.
    pub fn note_partitioner_rebuilt(&mut self) {
        self.decision = ChoicesDecision::UseD(2);
    }

    fn push_event(&mut self, action: ControllerAction) {
        self.events.push(ControllerEvent {
            source: self.source,
            window: self.window,
            action,
            workers: self.active as u32,
            d: encode_decision(self.decision),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ControllerConfig {
        ControllerConfig::new(2, 8, 100)
    }

    #[test]
    fn config_validates_bounds() {
        let c = cfg();
        assert_eq!(c.min_workers, 2);
        assert_eq!(c.max_workers, 8);
        assert_eq!(c.clamp_workers(1), 2);
        assert_eq!(c.clamp_workers(100), 8);
        assert_eq!(c.clamp_workers(5), 5);
    }

    #[test]
    #[should_panic(expected = "below min_workers")]
    fn inverted_bounds_panic() {
        let _ = ControllerConfig::new(5, 3, 100);
    }

    #[test]
    #[should_panic(expected = "scale_in_occupancy")]
    fn occupancy_above_one_panics() {
        let _ = cfg().with_scale_in_occupancy(1.5);
    }

    #[test]
    fn scale_out_needs_patience_and_respects_max() {
        let mut c = ElasticityController::new(cfg().with_cooldown(0), 0, 4);
        // One hot window is not enough at patience 2.
        assert_eq!(c.observe_window(400, 150), None);
        // Second consecutive hot window triggers.
        assert_eq!(c.observe_window(400, 150), Some(5));
        // Keep the pressure on: climbs to max and stops there.
        for _ in 0..20 {
            c.observe_window(400, 150);
        }
        assert_eq!(c.active_workers(), 8);
        assert_eq!(c.observe_window(400, 150), None, "at max: no action");
    }

    #[test]
    fn scale_in_needs_room_and_respects_min() {
        let mut c = ElasticityController::new(cfg().with_cooldown(0), 0, 4);
        // Total 50 fits at 50% occupancy on 3 workers (0.5·100·3 = 150).
        assert_eq!(c.observe_window(50, 20), None);
        assert_eq!(c.observe_window(50, 20), Some(3));
        for _ in 0..20 {
            c.observe_window(50, 20);
        }
        assert_eq!(c.active_workers(), 2, "clamped at min_workers");
    }

    #[test]
    fn cooldown_spaces_actions() {
        let mut c = ElasticityController::new(cfg().with_cooldown(3), 0, 2);
        assert_eq!(c.observe_window(400, 150), None);
        assert_eq!(c.observe_window(400, 150), Some(3));
        // Cooldown 3: the next three hot windows are ignored.
        assert_eq!(c.observe_window(400, 150), None);
        assert_eq!(c.observe_window(400, 150), None);
        assert_eq!(c.observe_window(400, 150), None);
        assert_eq!(c.observe_window(400, 150), Some(4));
    }

    #[test]
    fn constant_signal_never_reverses_direction() {
        // On any constant (total, max) signal the sequence of scale actions
        // is all-ScaleOut or all-ScaleIn, never mixed: scale-out pressure
        // suppresses scale-in, and absent pressure scale-out never fires.
        for (total, max) in [(400u64, 150u64), (50, 20), (300, 80), (10, 10)] {
            let mut c = ElasticityController::new(cfg(), 0, 4);
            for _ in 0..64 {
                let _ = c.observe_window(total, max);
            }
            let actions: Vec<ControllerAction> = c.events().iter().map(|e| e.action).collect();
            assert!(
                actions.windows(2).all(|w| w[0] == w[1]),
                "mixed actions on constant signal ({total},{max}): {actions:?}"
            );
        }
    }

    #[test]
    fn retune_logs_only_changes() {
        let mut c = ElasticityController::new(cfg(), 3, 5);
        // A 40% head key on 5 workers: the solver wants more than 2 choices.
        let head = [0.4];
        let first = c.retune(&head, 0.6);
        assert!(first.is_some(), "first solve moves off the fresh default");
        assert_eq!(c.retune(&head, 0.6), None, "unchanged head: no event");
        assert_eq!(c.events().len(), 1);
        let e = c.events()[0];
        assert_eq!(e.source, 3);
        assert_eq!(e.action, ControllerAction::Retune);
        assert_eq!(decode_decision(e.d), c.current_decision());
    }

    #[test]
    fn rescale_resets_decision_and_skips_stale_retune() {
        let mut c = ElasticityController::new(cfg().with_cooldown(0), 0, 4);
        let head = [0.4];
        c.retune(&head, 0.6);
        let before = c.current_decision();
        assert_ne!(before, ChoicesDecision::UseD(2));
        c.observe_window(400, 150);
        assert_eq!(c.observe_window(400, 150), Some(5));
        assert_eq!(
            c.current_decision(),
            ChoicesDecision::UseD(2),
            "fresh partitioner default after rescale"
        );
    }

    #[test]
    fn decision_codec_round_trips() {
        for d in [
            ChoicesDecision::SwitchToW,
            ChoicesDecision::UseD(2),
            ChoicesDecision::UseD(17),
        ] {
            assert_eq!(decode_decision(encode_decision(d)), d);
        }
    }

    #[test]
    fn merged_metrics_sort_canonically() {
        let e = |source, window| ControllerEvent {
            source,
            window,
            action: ControllerAction::Retune,
            workers: 4,
            d: 3,
        };
        let m = ControllerMetrics::merged(vec![e(1, 5), e(0, 9), e(1, 2), e(0, 1)]);
        let order: Vec<(u32, u64)> = m.events.iter().map(|x| (x.source, x.window)).collect();
        assert_eq!(order, vec![(0, 1), (0, 9), (1, 2), (1, 5)]);
        assert_eq!(m.for_source(1).len(), 2);
        assert!(m.enabled);
        assert!(!ControllerMetrics::default().enabled);
    }

    #[test]
    fn identical_runs_produce_identical_logs() {
        let run = || {
            let mut c = ElasticityController::new(cfg(), 0, 4);
            for i in 0..32u64 {
                let total = 80 + (i % 7) * 60;
                let max = total / 2;
                if c.observe_window(total, max).is_none() {
                    let f = 0.1 + (i % 5) as f64 * 0.08;
                    c.retune(&[f], 1.0 - f);
                }
            }
            c.take_events()
        };
        assert_eq!(run(), run());
    }
}
