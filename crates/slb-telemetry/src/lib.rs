//! Unified telemetry layer for the SLB reproduction.
//!
//! Four pieces, each dependency-free and usable from any crate in the
//! workspace:
//!
//! * [`hist`] — fixed-bucket log₂-linear histograms ([`LogHistogram`],
//!   [`AtomicHistogram`]) with a proven associative/commutative merge and
//!   a ≤ 6.25 % quantile error bound. These replace raw-sample retention
//!   as the storage behind the engine's latency summaries.
//! * [`metrics`] — relaxed atomic [`Counter`]s/[`Gauge`]s, the per-hop
//!   transport telemetry a stage updates once per batch
//!   ([`HopTelemetry`]/[`HopStats`]), and the [`MetricsSnapshot`] a node
//!   ships over the control plane for live JSONL export and cluster
//!   rollups.
//! * [`trace`] — deterministic logical trace streams ([`TraceEvent`],
//!   [`TraceBuf`]) keyed by `(stage, instance, seq)` instead of wall
//!   clock, bit-identical across backends, batch sizes, and reruns on
//!   fault-free runs.
//! * [`log`] — a tiny leveled stderr logger driven by `SLB_LOG`, with
//!   fail-fast validation of the knob.
//!
//! See `docs/OBSERVABILITY.md` for the metric catalog, the trace-event
//! schema and determinism argument, and the JSONL export format.

pub mod hist;
pub mod log;
pub mod metrics;
pub mod trace;

pub use hist::{bucket_floor, bucket_index, AtomicHistogram, LogHistogram, NUM_BUCKETS, SUB_BITS};
pub use metrics::{
    snapshot_stage, Counter, Gauge, HopStats, HopTelemetry, MaxGauge, MetricsSnapshot,
};
pub use trace::{kind as trace_kind, sort_canonical, stage as trace_stage, TraceBuf, TraceEvent};
