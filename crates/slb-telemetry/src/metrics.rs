//! The metrics registry: atomic counters and gauges, per-hop transport
//! telemetry, and the [`MetricsSnapshot`] a node ships to the
//! orchestrator (and the orchestrator merges into cluster rollups and
//! JSONL lines).
//!
//! Everything here is updated *per batch*, never per tuple: a stage
//! amortizes one relaxed atomic add (or a couple) over each 64–256-tuple
//! batch, so the hot-path allocation and synchronization profile is
//! untouched. The `perf_smoke` telemetry A/B gate pins the total overhead.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{AtomicHistogram, LogHistogram};

/// A monotonically increasing relaxed atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-water-mark gauge: keeps the maximum value ever recorded.
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Live per-hop transport telemetry for one stage instance. Shared (via
/// `Arc`) between the stage thread, which updates it once per batch, and
/// an optional exporter thread, which snapshots it periodically.
///
/// Semantics per stage kind (see docs/OBSERVABILITY.md for the catalog):
/// sources fill the send side of the tuple hop (plus ring occupancy where
/// the transport exposes it), workers fill the receive side of the tuple
/// hop and the send side of the partial hop, aggregators fill the receive
/// side of the partial hop.
#[derive(Debug, Default)]
pub struct HopTelemetry {
    /// Batches (or partial-window messages) pushed into the outgoing hop.
    pub batches_sent: Counter,
    /// Tuples carried by those batches.
    pub tuples_sent: Counter,
    /// Total wall time spent inside blocking sends — the backpressure
    /// stall signal.
    pub send_stall_us: Counter,
    /// Messages drained from the incoming hop.
    pub batches_received: Counter,
    /// Tuples carried by those messages.
    pub tuples_received: Counter,
    /// Total wall time spent blocked waiting for the incoming hop.
    pub recv_wait_us: Counter,
    /// Distribution of tuple-batch sizes crossing the hop.
    pub batch_occupancy: AtomicHistogram,
    /// Deepest drain ever observed: messages pulled out of the incoming
    /// queue by a single `recv_batch` (receive side), or the transport's
    /// reported queue occupancy at a send (send side).
    pub queue_depth_hwm: MaxGauge,
    /// Highest SPSC ring occupancy (in batches) observed at a send, on
    /// transports that expose their rings.
    pub ring_occupancy_hwm: MaxGauge,
    /// The ring/queue capacity behind `ring_occupancy_hwm` (0 when the
    /// transport exposes none).
    pub ring_capacity: Gauge,
}

impl HopTelemetry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the live values into a plain, mergeable stats struct.
    pub fn snapshot(&self) -> HopStats {
        HopStats {
            batches_sent: self.batches_sent.get(),
            tuples_sent: self.tuples_sent.get(),
            send_stall_us: self.send_stall_us.get(),
            batches_received: self.batches_received.get(),
            tuples_received: self.tuples_received.get(),
            recv_wait_us: self.recv_wait_us.get(),
            batch_occupancy: self.batch_occupancy.snapshot(),
            queue_depth_hwm: self.queue_depth_hwm.get(),
            ring_occupancy_hwm: self.ring_occupancy_hwm.get(),
            ring_capacity: self.ring_capacity.get(),
        }
    }
}

/// A point-in-time copy of [`HopTelemetry`]: plain data, mergeable across
/// instances (sums for totals, maxima for high-water marks, histogram
/// merge for occupancy).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HopStats {
    pub batches_sent: u64,
    pub tuples_sent: u64,
    pub send_stall_us: u64,
    pub batches_received: u64,
    pub tuples_received: u64,
    pub recv_wait_us: u64,
    pub batch_occupancy: LogHistogram,
    pub queue_depth_hwm: u64,
    pub ring_occupancy_hwm: u64,
    pub ring_capacity: u64,
}

impl HopStats {
    /// Folds another instance's stats into this one.
    pub fn merge(&mut self, other: &HopStats) {
        self.batches_sent += other.batches_sent;
        self.tuples_sent += other.tuples_sent;
        self.send_stall_us += other.send_stall_us;
        self.batches_received += other.batches_received;
        self.tuples_received += other.tuples_received;
        self.recv_wait_us += other.recv_wait_us;
        self.batch_occupancy.merge(&other.batch_occupancy);
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        self.ring_occupancy_hwm = self.ring_occupancy_hwm.max(other.ring_occupancy_hwm);
        self.ring_capacity = self.ring_capacity.max(other.ring_capacity);
    }
}

/// Stage codes for [`MetricsSnapshot::stage`]; 0–2 mirror
/// [`crate::trace::stage`], 3 is a cluster-wide rollup the orchestrator
/// synthesizes.
pub mod snapshot_stage {
    pub const SOURCE: u8 = 0;
    pub const WORKER: u8 = 1;
    pub const AGGREGATOR: u8 = 2;
    pub const CLUSTER: u8 = 3;
}

/// One stage instance's metrics at a point in time — the payload of the
/// `METRICS` control frame and of one JSONL line in the orchestrator's
/// merged metrics stream.
///
/// Periodic snapshots carry the live transport counters and an
/// items-so-far approximation; the *final* snapshot (`finished == true`)
/// is built from the stage's end-of-run report after it quiesces, so its
/// progress, recovery, and latency fields are exact — that is what makes
/// the orchestrator's final rollup provably match the run report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Stage code ([`snapshot_stage`]).
    pub stage: u8,
    /// Stage instance index (meaningless for `CLUSTER`).
    pub instance: u32,
    /// Per-instance snapshot ordinal.
    pub seq: u64,
    /// True for the exact end-of-stage snapshot.
    pub finished: bool,
    /// Tuples sent (source) / processed (worker) / partials merged
    /// (aggregator).
    pub items: u64,
    /// Windows closed (worker) or finalized (aggregator).
    pub windows_closed: u64,
    /// Checkpoints saved (worker).
    pub checkpoints: u64,
    /// Recovery counters, mirroring `RecoveryMetrics`.
    pub restores: u64,
    pub replayed_items: u64,
    pub duplicates_dropped: u64,
    pub replay_requests: u64,
    pub transport_errors: u64,
    /// Transport-hop counters, mirroring [`HopStats`].
    pub batches_sent: u64,
    pub tuples_sent: u64,
    pub send_stall_us: u64,
    pub batches_received: u64,
    pub tuples_received: u64,
    pub recv_wait_us: u64,
    pub queue_depth_hwm: u64,
    pub ring_occupancy_hwm: u64,
    pub ring_capacity: u64,
    /// Latency distribution (exact scalars + sparse log₂ buckets); empty
    /// on periodic snapshots, filled from the stage report on the final
    /// one.
    pub latency_count: u64,
    pub latency_sum_us: u64,
    pub latency_min_us: u64,
    pub latency_max_us: u64,
    pub latency_buckets: Vec<(u32, u64)>,
}

impl MetricsSnapshot {
    /// Human-readable stage name (used in JSON).
    pub fn stage_name(&self) -> &'static str {
        match self.stage {
            snapshot_stage::SOURCE => "source",
            snapshot_stage::WORKER => "worker",
            snapshot_stage::AGGREGATOR => "aggregator",
            snapshot_stage::CLUSTER => "cluster",
            _ => "unknown",
        }
    }

    /// Copies a [`HopStats`] into the flat transport fields.
    pub fn set_transport(&mut self, hop: &HopStats) {
        self.batches_sent = hop.batches_sent;
        self.tuples_sent = hop.tuples_sent;
        self.send_stall_us = hop.send_stall_us;
        self.batches_received = hop.batches_received;
        self.tuples_received = hop.tuples_received;
        self.recv_wait_us = hop.recv_wait_us;
        self.queue_depth_hwm = hop.queue_depth_hwm;
        self.ring_occupancy_hwm = hop.ring_occupancy_hwm;
        self.ring_capacity = hop.ring_capacity;
    }

    /// Copies a latency histogram into the latency fields.
    pub fn set_latency(&mut self, hist: &LogHistogram) {
        self.latency_count = hist.count();
        self.latency_sum_us = u64::try_from(hist.sum()).unwrap_or(u64::MAX);
        self.latency_min_us = hist.min();
        self.latency_max_us = hist.max();
        self.latency_buckets = hist.nonzero_buckets();
    }

    /// Rebuilds the latency histogram from the sparse fields.
    pub fn latency_histogram(&self) -> LogHistogram {
        LogHistogram::from_parts(
            &self.latency_buckets,
            self.latency_count,
            self.latency_sum_us as u128,
            self.latency_min_us,
            self.latency_max_us,
        )
    }

    /// Folds another snapshot into this one (for cluster rollups):
    /// counters add, high-water marks take the maximum, latency
    /// distributions merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.seq = self.seq.max(other.seq);
        self.finished = self.finished && other.finished;
        self.items += other.items;
        self.windows_closed += other.windows_closed;
        self.checkpoints += other.checkpoints;
        self.restores += other.restores;
        self.replayed_items += other.replayed_items;
        self.duplicates_dropped += other.duplicates_dropped;
        self.replay_requests += other.replay_requests;
        self.transport_errors += other.transport_errors;
        self.batches_sent += other.batches_sent;
        self.tuples_sent += other.tuples_sent;
        self.send_stall_us += other.send_stall_us;
        self.batches_received += other.batches_received;
        self.tuples_received += other.tuples_received;
        self.recv_wait_us += other.recv_wait_us;
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        self.ring_occupancy_hwm = self.ring_occupancy_hwm.max(other.ring_occupancy_hwm);
        self.ring_capacity = self.ring_capacity.max(other.ring_capacity);
        let mut latency = self.latency_histogram();
        latency.merge(&other.latency_histogram());
        self.set_latency(&latency);
    }

    /// Serializes to one JSON object (the JSONL line format; the vendored
    /// serde is a derive-only shim, so this is written by hand).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        push_json_str(&mut out, "stage", self.stage_name());
        push_json_u64(&mut out, "instance", self.instance as u64);
        push_json_u64(&mut out, "seq", self.seq);
        out.push_str("\"final\":");
        out.push_str(if self.finished { "true" } else { "false" });
        out.push(',');
        push_json_u64(&mut out, "items", self.items);
        push_json_u64(&mut out, "windows_closed", self.windows_closed);
        push_json_u64(&mut out, "checkpoints", self.checkpoints);
        push_json_u64(&mut out, "restores", self.restores);
        push_json_u64(&mut out, "replayed_items", self.replayed_items);
        push_json_u64(&mut out, "duplicates_dropped", self.duplicates_dropped);
        push_json_u64(&mut out, "replay_requests", self.replay_requests);
        push_json_u64(&mut out, "transport_errors", self.transport_errors);
        push_json_u64(&mut out, "batches_sent", self.batches_sent);
        push_json_u64(&mut out, "tuples_sent", self.tuples_sent);
        push_json_u64(&mut out, "send_stall_us", self.send_stall_us);
        push_json_u64(&mut out, "batches_received", self.batches_received);
        push_json_u64(&mut out, "tuples_received", self.tuples_received);
        push_json_u64(&mut out, "recv_wait_us", self.recv_wait_us);
        push_json_u64(&mut out, "queue_depth_hwm", self.queue_depth_hwm);
        push_json_u64(&mut out, "ring_occupancy_hwm", self.ring_occupancy_hwm);
        push_json_u64(&mut out, "ring_capacity", self.ring_capacity);
        push_json_u64(&mut out, "latency_count", self.latency_count);
        push_json_u64(&mut out, "latency_sum_us", self.latency_sum_us);
        push_json_u64(&mut out, "latency_min_us", self.latency_min_us);
        push_json_u64(&mut out, "latency_max_us", self.latency_max_us);
        if self.latency_count > 0 {
            let hist = self.latency_histogram();
            push_json_u64(&mut out, "latency_p50_us", hist.quantile(0.50));
            push_json_u64(&mut out, "latency_p95_us", hist.quantile(0.95));
            push_json_u64(&mut out, "latency_p99_us", hist.quantile(0.99));
        }
        out.push_str("\"latency_buckets\":[");
        for (i, (bucket, count)) in self.latency_buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{bucket},{count}]"));
        }
        out.push_str("]}");
        out
    }
}

fn push_json_u64(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
    out.push(',');
}

fn push_json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    out.push_str(value);
    out.push_str("\",");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_work() {
        let counter = Counter::new();
        counter.add(3);
        counter.add(4);
        assert_eq!(counter.get(), 7);
        let hwm = MaxGauge::new();
        hwm.record(5);
        hwm.record(2);
        assert_eq!(hwm.get(), 5);
        let gauge = Gauge::new();
        gauge.set(9);
        gauge.set(4);
        assert_eq!(gauge.get(), 4);
    }

    #[test]
    fn hop_snapshot_and_merge() {
        let live = HopTelemetry::new();
        live.batches_sent.add(2);
        live.tuples_sent.add(128);
        live.batch_occupancy.record_n(64, 2);
        live.queue_depth_hwm.record(7);
        let a = live.snapshot();
        let mut merged = a.clone();
        let b = HopStats {
            batches_sent: 1,
            queue_depth_hwm: 11,
            ..Default::default()
        };
        merged.merge(&b);
        assert_eq!(merged.batches_sent, 3);
        assert_eq!(merged.tuples_sent, 128);
        assert_eq!(merged.queue_depth_hwm, 11);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_merges_latency() {
        let mut hist_a = LogHistogram::new();
        hist_a.record_n(100, 10);
        let mut hist_b = LogHistogram::new();
        hist_b.record_n(5_000, 4);
        let mut a = MetricsSnapshot {
            stage: snapshot_stage::WORKER,
            instance: 0,
            finished: true,
            items: 10,
            restores: 1,
            ..Default::default()
        };
        a.set_latency(&hist_a);
        let mut b = MetricsSnapshot {
            stage: snapshot_stage::WORKER,
            instance: 1,
            finished: true,
            items: 4,
            queue_depth_hwm: 3,
            ..Default::default()
        };
        b.set_latency(&hist_b);
        a.merge(&b);
        assert_eq!(a.items, 14);
        assert_eq!(a.restores, 1);
        assert_eq!(a.latency_count, 14);
        let mut union = hist_a.clone();
        union.merge(&hist_b);
        assert_eq!(a.latency_histogram(), union);
    }

    #[test]
    fn json_line_is_wellformed_enough() {
        let mut snapshot = MetricsSnapshot {
            stage: snapshot_stage::SOURCE,
            instance: 2,
            seq: 7,
            items: 99,
            ..Default::default()
        };
        let mut hist = LogHistogram::new();
        hist.record(123);
        snapshot.set_latency(&hist);
        let json = snapshot.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"stage\":\"source\""));
        assert!(json.contains("\"items\":99,"));
        assert!(json.contains("\"final\":false"));
        assert!(json.contains("\"latency_buckets\":[["));
        assert_eq!(json.matches('{').count(), 1);
    }
}
