//! Deterministic logical trace streams.
//!
//! A trace event is keyed by `(stage, instance, seq)` — the stage kind,
//! the stage instance index, and a per-instance monotone ordinal — never
//! by wall clock. Payloads are restricted to *logical* quantities (window
//! ids, windows-closed ordinals, replay cursors), so on a fault-free run
//! the full sorted stream is a pure function of the run's configuration:
//! bit-identical across transport backends, batch sizes, queue capacities,
//! and reruns. The `trace_differential` suite pins exactly that.
//!
//! Why fault-free determinism holds even though stages race in real time:
//! every source emits its per-window close markers in window order over
//! FIFO channels, and a worker finalizes window `w` only when the *last*
//! source's close for `w` arrives — by which point every close for every
//! `w' < w` has already been delivered and (processing being serial)
//! handled. Worker finalizations are therefore strictly ordered by window
//! id, and the same argument applied to the workers' partial shipments
//! orders each aggregator shard's finalizations. Checkpoint saves ride the
//! finalization boundary, and controller/rescale decisions are made at
//! source window boundaries from deterministic inputs (the
//! `controller_differential` suite proves the decision stream itself).
//! Replay, restore, and crash events are timing-dependent by nature and
//! appear only on faulty runs, which the differential never compares.

/// Stage codes for [`TraceEvent::stage`].
pub mod stage {
    pub const SOURCE: u8 = 0;
    pub const WORKER: u8 = 1;
    pub const AGGREGATOR: u8 = 2;
}

/// Event kinds for [`TraceEvent::kind`].
pub mod kind {
    /// Source: a window's close markers were broadcast. Worker: a window
    /// was finalized and its shards shipped (`a` = windows-closed
    /// ordinal). Aggregator: a window's merge quorum completed.
    pub const WINDOW_CLOSE: u8 = 0;
    /// Worker saved a checkpoint at a finalization boundary
    /// (`a` = windows-closed ordinal covered by the checkpoint).
    pub const CHECKPOINT_SAVE: u8 = 1;
    /// Worker restored from a checkpoint after a (simulated or real)
    /// crash (`a` = windows-closed ordinal restored to). Fault runs only.
    pub const CHECKPOINT_RESTORE: u8 = 2;
    /// Worker asked source `a` to replay from cursor `b`. Fault runs only.
    pub const REPLAY_REQUEST: u8 = 3;
    /// Source served a replay for worker `a` from cursor `b`. Fault runs
    /// only.
    pub const REPLAY_SERVE: u8 = 4;
    /// Source applied a rescale: the active worker set changed to `a`
    /// workers at the boundary of `window`.
    pub const RESCALE: u8 = 5;
    /// Elasticity controller decisions at a window boundary
    /// (`a` = active workers after the step, `b` = chosen `d`).
    pub const CTRL_SCALE_OUT: u8 = 6;
    pub const CTRL_SCALE_IN: u8 = 7;
    pub const CTRL_RETUNE: u8 = 8;
}

/// One logical trace event. Plain data; the derived `Ord` sorts by
/// `(stage, instance, seq, ...)`, which is the canonical merged order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceEvent {
    /// Stage kind ([`stage`] codes).
    pub stage: u8,
    /// Stage instance index (source / worker / aggregator-shard id).
    pub instance: u32,
    /// Per-(stage, instance) monotone ordinal, starting at 0.
    pub seq: u64,
    /// Event kind ([`kind`] codes).
    pub kind: u8,
    /// The window the event refers to (`u64::MAX` when not applicable).
    pub window: u64,
    /// Kind-specific logical payload (see [`kind`]).
    pub a: u64,
    /// Kind-specific logical payload (see [`kind`]).
    pub b: u64,
}

/// A stage's local trace collector: assigns the per-instance `seq`
/// ordinals. A disabled buffer records nothing and never allocates.
#[derive(Debug)]
pub struct TraceBuf {
    stage: u8,
    instance: u32,
    next_seq: u64,
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceBuf {
    pub fn new(stage: u8, instance: u32, enabled: bool) -> Self {
        Self {
            stage,
            instance,
            next_seq: 0,
            enabled,
            events: Vec::new(),
        }
    }

    /// A buffer that drops everything (telemetry off).
    pub fn disabled() -> Self {
        Self::new(0, 0, false)
    }

    #[inline]
    pub fn push(&mut self, kind: u8, window: u64, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            stage: self.stage,
            instance: self.instance,
            seq: self.next_seq,
            kind,
            window,
            a,
            b,
        });
        self.next_seq += 1;
    }

    /// The collected events, consumed in emission (= seq) order.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// Sorts a merged multi-stage event list into the canonical
/// `(stage, instance, seq)` order. Stable total order because `seq` is
/// unique per `(stage, instance)`.
pub fn sort_canonical(events: &mut [TraceEvent]) {
    events.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_is_per_instance_monotone() {
        let mut buf = TraceBuf::new(stage::WORKER, 3, true);
        buf.push(kind::WINDOW_CLOSE, 0, 1, 0);
        buf.push(kind::CHECKPOINT_SAVE, 0, 1, 0);
        buf.push(kind::WINDOW_CLOSE, 1, 2, 0);
        let events = buf.into_events();
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(events.iter().all(|e| e.stage == stage::WORKER));
        assert!(events.iter().all(|e| e.instance == 3));
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut buf = TraceBuf::disabled();
        buf.push(kind::WINDOW_CLOSE, 0, 0, 0);
        assert!(buf.into_events().is_empty());
    }

    #[test]
    fn canonical_sort_orders_by_stage_instance_seq() {
        let ev = |stage, instance, seq| TraceEvent {
            stage,
            instance,
            seq,
            kind: kind::WINDOW_CLOSE,
            window: 0,
            a: 0,
            b: 0,
        };
        let mut events = vec![ev(1, 0, 1), ev(0, 2, 0), ev(1, 0, 0), ev(0, 1, 5)];
        sort_canonical(&mut events);
        assert_eq!(
            events
                .iter()
                .map(|e| (e.stage, e.instance, e.seq))
                .collect::<Vec<_>>(),
            vec![(0, 1, 5), (0, 2, 0), (1, 0, 0), (1, 0, 1)]
        );
    }
}
