//! A tiny leveled, target-prefixed stderr logger — no dependencies, no
//! global registration, one env knob.
//!
//! `SLB_LOG` selects the maximum level: `error`, `warn`, `info` (the
//! default), or `debug`. Anything else is a configuration mistake and
//! fails fast with a panic naming the variable and the offending value,
//! the same contract as `SLB_HEARTBEAT_TIMEOUT_MS`. Binaries call
//! [`init`] first thing in `main` so the failure happens at startup, not
//! at the first log call mid-run.
//!
//! Lines go to stderr as `[target] LEVEL message` — stdout is reserved
//! for machine-readable run reports (node_golden and node_faults parse
//! it), which is why the report printer does *not* route through here.

use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

/// Parses an `SLB_LOG` value. `None` (unset) defaults to [`Level::Info`];
/// a malformed value panics — fail fast beats silently dropping logs.
pub fn parse_level(value: Option<&str>) -> Level {
    match value {
        None => Level::Info,
        Some("error") => Level::Error,
        Some("warn") => Level::Warn,
        Some("info") => Level::Info,
        Some("debug") => Level::Debug,
        Some(other) => {
            panic!("SLB_LOG must be one of error|warn|info|debug, got {other:?}")
        }
    }
}

static LEVEL: OnceLock<Level> = OnceLock::new();

/// Resolves (and caches) the level from `SLB_LOG`. Call at the top of
/// `main` to surface a malformed value at startup.
pub fn init() -> Level {
    *LEVEL.get_or_init(|| parse_level(std::env::var("SLB_LOG").ok().as_deref()))
}

/// Whether a message at `level` would be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= init()
}

/// Emits one line at `level` with a `[target]` prefix.
pub fn log(level: Level, target: &str, message: &str) {
    if enabled(level) {
        eprintln!("[{target}] {} {message}", level.name());
    }
}

pub fn error(target: &str, message: &str) {
    log(Level::Error, target, message);
}

pub fn warn(target: &str, message: &str) {
    log(Level::Warn, target, message);
}

pub fn info(target: &str, message: &str) {
    log(Level::Info, target, message);
}

pub fn debug(target: &str, message: &str) {
    log(Level::Debug, target, message);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(parse_level(None), Level::Info);
        assert_eq!(parse_level(Some("error")), Level::Error);
        assert_eq!(parse_level(Some("warn")), Level::Warn);
        assert_eq!(parse_level(Some("info")), Level::Info);
        assert_eq!(parse_level(Some("debug")), Level::Debug);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn malformed_level_fails_fast() {
        let panic = std::panic::catch_unwind(|| parse_level(Some("verbose")))
            .expect_err("malformed SLB_LOG must panic");
        let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("SLB_LOG") && message.contains("verbose"),
            "panic must name the variable and value: {message}"
        );
    }
}
