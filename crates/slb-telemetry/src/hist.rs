//! Fixed-bucket log₂-linear histograms with an associative, commutative
//! merge.
//!
//! # Bucket layout
//!
//! Values below 2^[`SUB_BITS`] (= 16) get one bucket each and are recorded
//! *exactly*. Every larger value lands in one of 16 linear sub-buckets of
//! its power-of-two octave: for a value with floor(log₂ v) = e ≥ 4 the
//! bucket is identified by `(e, top 4 mantissa bits below the leading
//! one)`, so each octave is split into 16 equal-width slices. The full
//! `u64` range fits in [`NUM_BUCKETS`] = 976 buckets (~7.6 KiB of `u64`
//! counts) — bounded memory no matter how many values are recorded, which
//! is the whole point versus retaining raw samples.
//!
//! # Error bound
//!
//! A bucket covering `[floor, floor + width)` has
//! `width / floor ≤ 2⁻⁴ = 6.25 %`. Quantiles report the bucket *floor*
//! (clamped into the exactly-tracked `[min, max]`), so a reported quantile
//! `q̂` satisfies `q̂ ≤ q < q̂ · (1 + 2⁻⁴)`: quantiles under-report by
//! strictly less than 6.25 % relative error, and are exact for values
//! below 16 and for any value whose significand fits in 5 bits
//! (e.g. 96, 100·2ᵏ is *not* such a value but 96·2ᵏ is). `count`, `sum`
//! (hence the mean), `min`, and `max` are always exact.
//!
//! # Merge laws
//!
//! [`LogHistogram::merge`] adds bucket counts element-wise and combines
//! the exact scalars (`count`/`sum` add, `min`/`max` min/max), all of
//! which are associative and commutative with the empty histogram as the
//! identity. Therefore `merge(a, b) == record the union of a's and b's
//! recordings`, in any grouping and order — the property the
//! `histogram_props` suite pins, and what makes per-worker histograms
//! safely mergeable into cluster-wide rollups.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` slices, bounding relative quantile error at `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 4;

/// Sub-buckets per octave (16).
const SUBS: u64 = 1 << SUB_BITS;

/// Total buckets needed to cover all of `u64`: 16 exact unit buckets plus
/// 60 octaves × 16 slices (`bucket_index(u64::MAX) == 975`).
pub const NUM_BUCKETS: usize = 976;

/// The bucket a value is counted in. Total on all of `u64`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros();
        let sub = (value >> (exp - SUB_BITS)) & (SUBS - 1);
        (((exp - (SUB_BITS - 1)) as usize) << SUB_BITS) + sub as usize
    }
}

/// The smallest value that maps to bucket `index` — the quantile
/// representative. `bucket_index(bucket_floor(i)) == i` for every valid
/// index, which is what makes re-recording a histogram's floors land in
/// identical buckets (the wire round-trip relies on this idempotence).
#[inline]
pub fn bucket_floor(index: usize) -> u64 {
    if index < SUBS as usize {
        index as u64
    } else {
        let exp = (index >> SUB_BITS) as u32 + (SUB_BITS - 1);
        let sub = (index as u64) & (SUBS - 1);
        (SUBS + sub) << (exp - SUB_BITS)
    }
}

/// A plain (single-threaded) log₂-linear histogram. See the module docs
/// for the bucket layout, error bound, and merge laws.
///
/// The bucket array is allocated lazily on the first recording, so an
/// empty histogram is a few machine words.
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl PartialEq for LogHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && (self.count == 0 || (self.min == other.min && self.max == other.max))
            && {
                let n = self.counts.len().max(other.counts.len());
                (0..n).all(|i| {
                    self.counts.get(i).copied().unwrap_or(0)
                        == other.counts.get(i).copied().unwrap_or(0)
                })
            }
    }
}

impl Eq for LogHistogram {}

impl LogHistogram {
    /// An empty histogram (no bucket storage until the first record).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a histogram from its wire parts: sparse `(bucket, count)`
    /// pairs plus the exact scalars. Pairs with out-of-range indices or
    /// zero counts are ignored; `count`/`sum`/`min`/`max` are trusted as
    /// the exact scalars the peer tracked.
    pub fn from_parts(buckets: &[(u32, u64)], count: u64, sum: u128, min: u64, max: u64) -> Self {
        let mut hist = Self::new();
        for &(index, n) in buckets {
            if (index as usize) < NUM_BUCKETS && n > 0 {
                hist.ensure_counts();
                hist.counts[index as usize] += n;
            }
        }
        hist.count = count;
        hist.sum = sum;
        hist.min = min;
        hist.max = max;
        hist
    }

    #[inline]
    fn ensure_counts(&mut self) {
        if self.counts.is_empty() {
            self.counts = vec![0; NUM_BUCKETS];
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value` in O(1).
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.ensure_counts();
        self.counts[bucket_index(value)] += n;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum += value as u128 * n as u128;
    }

    /// Element-wise merge: afterwards `self` summarizes the union of both
    /// histograms' recordings. Associative and commutative; the empty
    /// histogram is the identity.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        self.ensure_counts();
        if !other.counts.is_empty() {
            for (into, &from) in self.counts.iter_mut().zip(&other.counts) {
                *into += from;
            }
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Values recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded values.
    #[inline]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum recorded value (0 when empty).
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact mean of all recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile, matching `LatencySummary`'s convention
    /// (`rank = round((count − 1) · p)`, 0-based): the floor of the bucket
    /// holding that rank, clamped into the exact `[min, max]`. Monotone in
    /// `p`, and under-reports by < 2⁻⁴ relative error (module docs).
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * p).round() as u64;
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen > rank {
                return bucket_floor(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs, ascending by
    /// index — the sparse wire/JSON representation.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect()
    }
}

/// A thread-shared histogram: the same buckets as [`LogHistogram`] behind
/// relaxed atomics, so a stage thread can record per-batch while an
/// exporter thread snapshots concurrently. Snapshots are *not* a
/// consistent cut across fields (count/sum/min/max race by a batch or
/// two); the final end-of-run snapshot is taken after the stage quiesces
/// and is exact.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> Self {
        Self {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records `n` occurrences of `value`. Lock-free; relaxed ordering
    /// (monitoring data, amortized to one call per batch).
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Copies the current contents into a plain histogram.
    pub fn snapshot(&self) -> LogHistogram {
        let count = self.count.load(Ordering::Relaxed);
        let mut hist = LogHistogram::new();
        if count == 0 {
            return hist;
        }
        hist.ensure_counts();
        for (into, from) in hist.counts.iter_mut().zip(&self.counts) {
            *into = from.load(Ordering::Relaxed);
        }
        hist.count = count;
        hist.sum = self.sum.load(Ordering::Relaxed) as u128;
        hist.min = self.min.load(Ordering::Relaxed);
        hist.max = self.max.load(Ordering::Relaxed);
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_u64_and_floor_is_idempotent() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for index in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(index)), index, "index {index}");
        }
    }

    #[test]
    fn buckets_are_monotone_in_value() {
        let mut last = 0;
        for value in [0u64, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let index = bucket_index(value);
            assert!(index >= last, "bucket order broke at {value}");
            assert!(bucket_floor(index) <= value);
            last = index;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut hist = LogHistogram::new();
        for v in 0..16u64 {
            hist.record(v);
        }
        assert_eq!(hist.quantile(0.0), 0);
        assert_eq!(hist.quantile(1.0), 15);
        assert_eq!(hist.count(), 16);
        assert_eq!(hist.sum(), 120);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut hist = LogHistogram::new();
        for v in 1..=100_000u64 {
            hist.record(v);
        }
        for (p, exact) in [(0.5, 50_000u64), (0.95, 95_000), (0.99, 99_000)] {
            let got = hist.quantile(p) as f64;
            let exact = exact as f64;
            assert!(got <= exact, "quantile must under-report, got {got}");
            assert!(
                exact < got * (1.0 + 1.0 / 16.0) + 1.0,
                "p{p}: {got} vs exact {exact} exceeds the 6.25% bound"
            );
        }
    }

    #[test]
    fn merge_equals_union() {
        let values_a = [3u64, 17, 17, 1 << 30, 999];
        let values_b = [0u64, 5, 123_456, u64::MAX];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut union = LogHistogram::new();
        for &v in &values_a {
            a.record(v);
            union.record(v);
        }
        for &v in &values_b {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
        // Identity: merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let atomic = AtomicHistogram::new();
        let mut plain = LogHistogram::new();
        for v in [1u64, 40, 40, 7_000, 1 << 40] {
            atomic.record(v);
            plain.record(v);
        }
        atomic.record_n(99, 3);
        plain.record_n(99, 3);
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn from_parts_round_trips_nonzero_buckets() {
        let mut hist = LogHistogram::new();
        for v in [9u64, 17, 17, 400, 1 << 50] {
            hist.record(v);
        }
        let back = LogHistogram::from_parts(
            &hist.nonzero_buckets(),
            hist.count(),
            hist.sum(),
            hist.min(),
            hist.max(),
        );
        assert_eq!(back, hist);
    }
}
