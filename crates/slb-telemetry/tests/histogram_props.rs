//! Property suite for the histogram merge laws and quantile guarantees.
//!
//! The laws that make per-worker histograms safely mergeable into
//! cluster-wide rollups, pinned over random value multisets:
//!
//! 1. **Union** — `merge(a, b)` equals recording the union of both
//!    recordings into one histogram.
//! 2. **Commutativity / associativity** — merge order and grouping never
//!    change the result (with the empty histogram as identity).
//! 3. **Quantile monotonicity** — `quantile(p)` is non-decreasing in `p`.
//! 4. **Error bound** — every quantile under-reports the exact
//!    nearest-rank value by less than 2⁻⁴ relative error, and `count`,
//!    `sum`, `min`, `max` are exact.
//!
//! ci.sh re-runs this suite at PROPTEST_CASES=256.

use proptest::prelude::*;

use slb_telemetry::{bucket_floor, bucket_index, LogHistogram, MetricsSnapshot, NUM_BUCKETS};

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut hist = LogHistogram::new();
    for &v in values {
        hist.record(v);
    }
    hist
}

proptest! {
    // 64 cases locally; ci.sh raises this via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    #[test]
    fn merge_is_union(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, hist_of(&union));
    }

    #[test]
    fn merge_commutes_and_associates(
        a in proptest::collection::vec(any::<u64>(), 0..120),
        b in proptest::collection::vec(any::<u64>(), 0..120),
        c in proptest::collection::vec(any::<u64>(), 0..120),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // Commutativity.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // Associativity.
        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Identity.
        let mut with_empty = ha.clone();
        with_empty.merge(&LogHistogram::new());
        prop_assert_eq!(&with_empty, &ha);
    }

    #[test]
    fn quantiles_are_monotone_in_p(
        values in proptest::collection::vec(any::<u64>(), 1..300),
        cuts in proptest::collection::vec(0.0f64..1.0, 2..12),
    ) {
        let hist = hist_of(&values);
        let mut ps = cuts.clone();
        ps.sort_by(|x, y| x.partial_cmp(y).expect("no NaN in 0..=1"));
        let mut last = 0u64;
        for p in ps {
            let q = hist.quantile(p);
            prop_assert!(q >= last, "quantile regressed at p={}: {} < {}", p, q, last);
            last = q;
        }
    }

    #[test]
    fn quantiles_underreport_within_the_bound(
        values in proptest::collection::vec(any::<u64>(), 1..400),
        p in 0.0f64..1.0,
    ) {
        let hist = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // The exact nearest-rank value, matching LatencySummary's
        // convention.
        let rank = (((sorted.len() - 1) as f64) * p).round() as usize;
        let exact = sorted[rank];
        let got = hist.quantile(p);
        prop_assert!(got <= exact, "quantile must never over-report: {} > {}", got, exact);
        // Under-report bounded by one bucket width: exact < got·(1+2⁻⁴),
        // with +1 absorbing the integer floor for tiny values.
        prop_assert!(
            (exact as f64) < (got as f64) * (1.0 + 1.0 / 16.0) + 1.0,
            "p{}: reported {} vs exact {} exceeds the 6.25% bound", p, got, exact
        );
        // Scalars are exact regardless of bucketing.
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(hist.min(), *sorted.first().expect("non-empty"));
        prop_assert_eq!(hist.max(), *sorted.last().expect("non-empty"));
    }

    #[test]
    fn bucket_floor_is_a_fixed_point(index in 0usize..NUM_BUCKETS) {
        // Re-recording a histogram's representative values must land in
        // identical buckets — the wire round-trip depends on it.
        prop_assert_eq!(bucket_index(bucket_floor(index)), index);
    }

    #[test]
    fn bucket_index_is_monotone_and_floor_bounds(value in any::<u64>()) {
        let index = bucket_index(value);
        prop_assert!(index < NUM_BUCKETS);
        prop_assert!(bucket_floor(index) <= value);
        if index + 1 < NUM_BUCKETS {
            prop_assert!(value < bucket_floor(index + 1));
        }
    }

    #[test]
    fn snapshot_latency_round_trips_through_sparse_buckets(
        values in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let hist = hist_of(&values);
        let mut snapshot = MetricsSnapshot::default();
        snapshot.set_latency(&hist);
        if u64::try_from(hist.sum()).is_ok() {
            prop_assert_eq!(snapshot.latency_histogram(), hist);
        }
    }
}
