//! Stream-replay simulator for the SLB library.
//!
//! The paper's load-imbalance results (Figures 1 and 3–12) come from a
//! simulator that replays a workload through the simplest possible dataflow:
//! a set of sources receives the input stream via shuffle grouping and
//! forwards every message to one of `n` workers according to the grouping
//! scheme under study. Each source makes its routing decisions using only
//! its local state (its own load vector and heavy-hitter summary), exactly
//! as a real deployment would; the simulator additionally observes the true
//! global per-worker load to compute the imbalance metric.
//!
//! * [`simulation`] — the replay engine and its configuration.
//! * [`scenario`] — analytic replay of multi-phase `slb_workloads::Scenario`
//!   specs (drift, heterogeneity, scale-out), agreeing tuple-for-tuple with
//!   the threaded engine's routing.
//! * [`metrics`] — result types: final imbalance, imbalance time series,
//!   per-worker head/tail load split, replica (memory) counts.
//! * [`experiments`] — parameterized drivers that regenerate each figure of
//!   the paper's evaluation; the `slb-bench` binaries print their output.

pub mod experiments;
pub mod metrics;
pub mod scenario;
pub mod simulation;

pub use metrics::{HeadTailLoad, SimulationResult, TimeSeriesPoint};
pub use scenario::{
    compare_scenario_schemes, simulate_scenario, simulate_scenario_controlled, ControlledSimResult,
    ScenarioPhaseOutcome, ScenarioSimResult,
};
pub use simulation::{SimulationConfig, Simulator};
