//! The stream-replay engine.
//!
//! A simulation replays a workload through `s` independent sources, each
//! holding its own instance of the grouping scheme under study (so that all
//! state — load vectors and heavy-hitter summaries — is strictly local, as
//! in a real deployment). Messages are dealt to sources round-robin, which
//! models the shuffle-grouped edge from the upstream operator to the sources
//! in the paper's experimental DAG.
//!
//! While replaying, the simulator records:
//! * the true global per-worker load (for the imbalance metric),
//! * an imbalance sample every `checkpoint_interval` messages,
//! * optionally, the set of `(key, worker)` pairs used (replication cost)
//!   and the per-worker load split between head and tail keys.

use std::collections::{HashMap, HashSet};

use slb_core::{build_partitioner, imbalance, PartitionConfig, Partitioner, PartitionerKind};
use slb_sketch::{ExactCounter, FrequencyEstimator};
use slb_workloads::{KeyId, KeyStream};

use crate::metrics::{HeadTailLoad, SimulationResult, TimeSeriesPoint};

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Grouping scheme under study.
    pub kind: PartitionerKind,
    /// Number of downstream workers `n`.
    pub workers: usize,
    /// Number of sources `s` (the paper uses 5).
    pub sources: usize,
    /// Base configuration for the per-source partitioners (seed, ε, θ, …).
    pub partition: PartitionConfig,
    /// How often (in messages) to sample the imbalance for the time series.
    pub checkpoint_interval: u64,
    /// Whether to track `(key, worker)` pairs and the head/tail load split.
    /// Costs memory proportional to the number of distinct pairs.
    pub track_key_placement: bool,
}

impl SimulationConfig {
    /// A configuration with the paper's defaults: 5 sources, θ = 1/(5n),
    /// ε = 10⁻⁴, checkpoints every 10⁵ messages, placement tracking off.
    pub fn new(kind: PartitionerKind, workers: usize) -> Self {
        Self {
            kind,
            workers,
            sources: 5,
            partition: PartitionConfig::new(workers),
            checkpoint_interval: 100_000,
            track_key_placement: false,
        }
    }

    /// Sets the number of sources.
    pub fn with_sources(mut self, sources: usize) -> Self {
        assert!(sources > 0, "need at least one source");
        self.sources = sources;
        self
    }

    /// Replaces the per-source partition configuration.
    pub fn with_partition(mut self, partition: PartitionConfig) -> Self {
        assert_eq!(partition.workers, self.workers, "worker counts must agree");
        self.partition = partition;
        self
    }

    /// Sets the time-series sampling interval.
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        self.checkpoint_interval = interval;
        self
    }

    /// Enables `(key, worker)` placement tracking.
    pub fn with_placement_tracking(mut self, on: bool) -> Self {
        self.track_key_placement = on;
        self
    }
}

/// The replay engine. Build one per (workload, scheme) pair and call
/// [`Simulator::run`].
pub struct Simulator {
    config: SimulationConfig,
    partitioners: Vec<Box<dyn Partitioner<KeyId>>>,
    global_loads: Vec<u64>,
    messages: u64,
    time_series: Vec<TimeSeriesPoint>,
    imbalance_sum: f64,
    imbalance_samples: u64,
    placements: Option<HashSet<(KeyId, usize)>>,
    key_worker_counts: Option<HashMap<(KeyId, usize), u64>>,
    exact: ExactCounter<KeyId>,
}

impl Simulator {
    /// Creates a simulator: one partitioner instance per source, all workers
    /// initially idle.
    pub fn new(config: SimulationConfig) -> Self {
        assert!(config.sources > 0, "need at least one source");
        // Every source uses the *same* configuration (and therefore the same
        // hash functions): hash-based routing only avoids routing tables
        // because all senders agree on where a key may go. Only per-source
        // state (load vectors, sketches, round-robin cursors) differs, and
        // that state lives inside each partitioner instance.
        let partitioners = (0..config.sources)
            .map(|_| build_partitioner::<KeyId>(config.kind, &config.partition))
            .collect();
        let (placements, key_worker_counts) = if config.track_key_placement {
            (Some(HashSet::new()), Some(HashMap::new()))
        } else {
            (None, None)
        };
        Self {
            global_loads: vec![0; config.workers],
            partitioners,
            messages: 0,
            time_series: Vec::new(),
            imbalance_sum: 0.0,
            imbalance_samples: 0,
            placements,
            key_worker_counts,
            exact: ExactCounter::new(),
            config,
        }
    }

    /// Processes a single message, returning the worker it was routed to.
    pub fn process(&mut self, key: KeyId) -> usize {
        let source = (self.messages % self.config.sources as u64) as usize;
        let worker = self.partitioners[source].route(&key);
        self.global_loads[worker] += 1;
        self.messages += 1;
        if let Some(placements) = &mut self.placements {
            placements.insert((key, worker));
        }
        if let Some(counts) = &mut self.key_worker_counts {
            *counts.entry((key, worker)).or_insert(0) += 1;
        }
        if self.config.track_key_placement {
            self.exact.observe(&key);
        }
        if self.messages % self.config.checkpoint_interval == 0 {
            let imb = imbalance(&self.global_loads);
            self.time_series.push(TimeSeriesPoint {
                messages: self.messages,
                imbalance: imb,
            });
            self.imbalance_sum += imb;
            self.imbalance_samples += 1;
        }
        worker
    }

    /// Replays an entire key stream.
    pub fn run_stream<S: KeyStream + ?Sized>(&mut self, stream: &mut S) {
        while let Some(key) = stream.next_key() {
            self.process(key);
        }
    }

    /// Convenience: build, replay and summarize in one call.
    pub fn run(config: SimulationConfig, stream: &mut dyn KeyStream) -> SimulationResult {
        let mut sim = Simulator::new(config);
        sim.run_stream(stream);
        sim.finish()
    }

    /// Current imbalance of the true global load.
    pub fn current_imbalance(&self) -> f64 {
        imbalance(&self.global_loads)
    }

    /// Number of messages processed so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// The true global per-worker loads.
    pub fn global_loads(&self) -> &[u64] {
        &self.global_loads
    }

    /// Finalizes the run and produces the result summary.
    pub fn finish(self) -> SimulationResult {
        let final_imbalance = imbalance(&self.global_loads);
        let mean_imbalance = if self.imbalance_samples > 0 {
            self.imbalance_sum / self.imbalance_samples as f64
        } else {
            final_imbalance
        };
        let head_tail = self.head_tail_split();
        SimulationResult {
            scheme: self.config.kind.symbol().to_string(),
            workers: self.config.workers,
            sources: self.config.sources,
            messages: self.messages,
            imbalance: final_imbalance,
            mean_imbalance,
            time_series: self.time_series,
            observed_replicas: self.placements.as_ref().map(|p| p.len() as u64),
            head_tail,
            worker_loads: self.global_loads,
        }
    }

    /// Splits the per-worker load into head- and tail-generated shares,
    /// classifying keys by their *exact* empirical frequency against θ
    /// (only available when placement tracking is on).
    fn head_tail_split(&self) -> Option<HeadTailLoad> {
        let counts = self.key_worker_counts.as_ref()?;
        if self.messages == 0 {
            return Some(HeadTailLoad {
                head: vec![0.0; self.config.workers],
                tail: vec![0.0; self.config.workers],
            });
        }
        let theta = self.config.partition.theta();
        let total = self.messages as f64;
        let head_keys: HashSet<KeyId> = self
            .exact
            .iter()
            .filter(|(_, c)| *c as f64 / total >= theta)
            .map(|(k, _)| *k)
            .collect();
        let mut head = vec![0.0; self.config.workers];
        let mut tail = vec![0.0; self.config.workers];
        for (&(key, worker), &count) in counts {
            let share = count as f64 / total;
            if head_keys.contains(&key) {
                head[worker] += share;
            } else {
                tail[worker] += share;
            }
        }
        Some(HeadTailLoad { head, tail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_workloads::zipf::ZipfGenerator;

    fn zipf_stream(keys: usize, z: f64, seed: u64, messages: u64) -> ZipfGenerator {
        ZipfGenerator::with_limit(keys, z, seed, messages)
    }

    #[test]
    fn run_accounts_every_message_exactly_once() {
        let mut stream = zipf_stream(1_000, 1.0, 3, 20_000);
        let cfg = SimulationConfig::new(PartitionerKind::Pkg, 10).with_checkpoint_interval(1_000);
        let result = Simulator::run(cfg, &mut stream);
        assert_eq!(result.messages, 20_000);
        assert_eq!(result.worker_loads.iter().sum::<u64>(), 20_000);
        assert_eq!(result.scheme, "PKG");
        assert_eq!(result.workers, 10);
        assert_eq!(result.sources, 5);
        assert!(!result.time_series.is_empty());
    }

    #[test]
    fn shuffle_grouping_is_nearly_perfectly_balanced() {
        let mut stream = zipf_stream(100, 2.0, 5, 10_000);
        let cfg = SimulationConfig::new(PartitionerKind::ShuffleGrouping, 8);
        let result = Simulator::run(cfg, &mut stream);
        assert!(result.imbalance < 1e-3, "SG imbalance {}", result.imbalance);
    }

    #[test]
    fn key_grouping_suffers_under_skew_and_w_choices_recovers() {
        let workers = 20;
        let mut kg_stream = zipf_stream(10_000, 2.0, 7, 50_000);
        let kg = Simulator::run(
            SimulationConfig::new(PartitionerKind::KeyGrouping, workers),
            &mut kg_stream,
        );
        let mut wc_stream = zipf_stream(10_000, 2.0, 7, 50_000);
        let wc = Simulator::run(
            SimulationConfig::new(PartitionerKind::WChoices, workers),
            &mut wc_stream,
        );
        // The hottest key alone is ~60% of the stream; KG must show massive
        // imbalance while W-C stays near ideal.
        assert!(kg.imbalance > 0.3, "KG imbalance {}", kg.imbalance);
        assert!(wc.imbalance < 0.02, "W-C imbalance {}", wc.imbalance);
    }

    #[test]
    fn placement_tracking_reports_replicas_and_head_tail() {
        let mut stream = zipf_stream(500, 1.8, 9, 30_000);
        let cfg = SimulationConfig::new(PartitionerKind::WChoices, 5)
            .with_placement_tracking(true)
            .with_checkpoint_interval(5_000);
        let result = Simulator::run(cfg, &mut stream);
        let replicas = result.observed_replicas.expect("tracking enabled");
        assert!(replicas > 0);
        let ht = result.head_tail.expect("tracking enabled");
        let head_total: f64 = ht.head.iter().sum();
        let tail_total: f64 = ht.tail.iter().sum();
        assert!(
            (head_total + tail_total - 1.0).abs() < 1e-9,
            "shares must sum to 1"
        );
        // z = 1.8 over 500 keys: the head carries most of the load.
        assert!(head_total > 0.5, "head share {head_total}");
        assert_eq!(ht.head.len(), 5);
    }

    #[test]
    fn pkg_replicas_bounded_by_two_per_key() {
        let mut stream = zipf_stream(300, 1.0, 11, 20_000);
        let cfg = SimulationConfig::new(PartitionerKind::Pkg, 10).with_placement_tracking(true);
        let result = Simulator::run(cfg, &mut stream);
        let replicas = result.observed_replicas.unwrap();
        assert!(
            replicas <= 2 * 300,
            "PKG created {replicas} replicas for 300 keys"
        );
    }

    #[test]
    fn per_source_partitioners_are_isolated() {
        // With one source the simulator must behave identically to a single
        // partitioner instance; with several, each keeps its own state.
        let mut sim =
            Simulator::new(SimulationConfig::new(PartitionerKind::Pkg, 6).with_sources(3));
        for i in 0..999u64 {
            sim.process(i % 50);
        }
        assert_eq!(sim.messages(), 999);
        assert_eq!(sim.global_loads().iter().sum::<u64>(), 999);
    }

    #[test]
    fn time_series_is_monotone_in_messages() {
        let mut stream = zipf_stream(100, 1.0, 13, 5_000);
        let cfg = SimulationConfig::new(PartitionerKind::DChoices, 4).with_checkpoint_interval(500);
        let result = Simulator::run(cfg, &mut stream);
        assert_eq!(result.time_series.len(), 10);
        for w in result.time_series.windows(2) {
            assert!(w[1].messages > w[0].messages);
        }
        // Mean imbalance is the average of the sampled points.
        let mean: f64 = result.time_series.iter().map(|p| p.imbalance).sum::<f64>()
            / result.time_series.len() as f64;
        assert!((mean - result.mean_imbalance).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "worker counts must agree")]
    fn mismatched_partition_config_panics() {
        let _ =
            SimulationConfig::new(PartitionerKind::Pkg, 4).with_partition(PartitionConfig::new(8));
    }
}
