//! Analytic replay of multi-phase scenarios.
//!
//! [`simulate_scenario`] replays the *same* [`Scenario`] spec the threaded
//! engine executes — same per-source per-phase streams, same partitioner
//! regeneration rule at phase boundaries — but single-threaded and without
//! queues or service times, so it measures pure routing behaviour: per-phase
//! per-worker counts, the paper's imbalance metric evaluated over each
//! phase's active worker set, and a *work-weighted* imbalance that accounts
//! for heterogeneous worker speeds (a slow worker is overloaded sooner, so
//! its routed share is scaled by its service-time multiplier).
//!
//! Because both executors construct streams through
//! [`Scenario::phase_stream`] and regenerate partitioners with
//! [`slb_core::Partitioner::rescale`] under identical configurations, the
//! simulator's per-phase counts are *exactly* — not statistically — equal to
//! the engine's (`slb-engine/tests/scenario_differential.rs` pins this).

use serde::{Deserialize, Serialize};

use slb_core::{
    build_partitioner, imbalance_fractions, ControllerConfig, ControllerMetrics,
    ElasticityController, PartitionConfig, Partitioner, PartitionerKind, PerWindowLoads,
    PhaseLoadMatrix, SolverMode,
};
use slb_workloads::{KeyId, KeyStream, Scenario};

/// Routing outcome of one scenario phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPhaseOutcome {
    /// Phase index.
    pub phase: usize,
    /// Active workers during the phase.
    pub workers: usize,
    /// Tuples routed during the phase (all sources).
    pub tuples: u64,
    /// Per-worker routed counts over the active worker set.
    pub worker_counts: Vec<u64>,
    /// The paper's imbalance `I` over the active worker set.
    pub imbalance: f64,
    /// Imbalance of *work* rather than tuples: each worker's routed share is
    /// scaled by its service-time multiplier before comparing. Equals
    /// `imbalance` for homogeneous phases.
    pub weighted_imbalance: f64,
}

/// Routing outcome of a whole scenario under one grouping scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSimResult {
    /// Scheme symbol (KG, SG, PKG, D-C, W-C, RR).
    pub scheme: String,
    /// Scenario name.
    pub scenario: String,
    /// Total tuples routed.
    pub tuples: u64,
    /// One outcome per phase, in order.
    pub phases: Vec<ScenarioPhaseOutcome>,
}

/// Replays `scenario` under `kind` and returns the per-phase routing
/// outcomes.
///
/// # Panics
/// Panics if the scenario is invalid.
pub fn simulate_scenario(kind: PartitionerKind, scenario: &Scenario) -> ScenarioSimResult {
    if let Err(message) = scenario.validate() {
        panic!("invalid scenario: {message}");
    }
    let n_phases = scenario.phases.len();
    let mut matrix = PhaseLoadMatrix::new(n_phases, scenario.max_workers());
    // One partitioner per source, regenerated at every phase boundary with
    // the phase's worker count — the exact rule the engine's source threads
    // follow, so routing decisions match tuple for tuple.
    let mut partitioners: Vec<Option<Box<dyn Partitioner<KeyId>>>> =
        (0..scenario.sources).map(|_| None).collect();
    for (p, phase) in scenario.phases.iter().enumerate() {
        let partition = PartitionConfig::new(phase.workers).with_seed(scenario.seed);
        for (source, slot) in partitioners.iter_mut().enumerate() {
            match slot.as_mut() {
                None => *slot = Some(build_partitioner::<KeyId>(kind, &partition)),
                Some(part) => part.rescale(&partition),
            }
            let part = slot.as_mut().expect("partitioner built above");
            let mut stream = scenario.phase_stream(p, source);
            while let Some(key) = stream.next_key() {
                let worker = part.route(&key);
                matrix.add(p, worker, 1);
            }
        }
    }
    let phases = scenario
        .phases
        .iter()
        .enumerate()
        .map(|(p, phase)| {
            let active = phase.workers;
            let worker_counts = matrix.phase_counts(p)[..active].to_vec();
            let tuples = matrix.phase_total(p);
            let weighted_imbalance = weighted_imbalance(&worker_counts, |w| phase.speed_of(w));
            ScenarioPhaseOutcome {
                phase: p,
                workers: active,
                tuples,
                imbalance: matrix.phase_imbalance(p, active),
                weighted_imbalance,
                worker_counts,
            }
        })
        .collect();
    ScenarioSimResult {
        scheme: kind.symbol().to_string(),
        scenario: scenario.name.clone(),
        tuples: matrix.total(),
        phases,
    }
}

/// Routing outcome of a scenario replayed under an elasticity controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlledSimResult {
    /// Scheme symbol (KG, SG, PKG, D-C, W-C, RR).
    pub scheme: String,
    /// Scenario name.
    pub scenario: String,
    /// Total tuples routed.
    pub tuples: u64,
    /// Per-worker routed counts over the spawned worker universe
    /// (`max(scenario.max_workers(), controller.max_workers)`).
    pub worker_counts: Vec<u64>,
    /// The paper's imbalance `I` over the spawned worker universe — the
    /// same statistic `EngineResult::imbalance` reports for controlled
    /// engine runs.
    pub imbalance: f64,
    /// All controller decisions, canonically merged across sources.
    pub controller: ControllerMetrics,
}

/// Replays `scenario` under `kind` with the elasticity controller enabled —
/// the analytic mirror of the engine's controlled scenario runs.
///
/// Each source gets its own [`ElasticityController`] stepped at every
/// window boundary with the same two signals the engine feeds it: the
/// closing window's per-slot routed counts ([`PerWindowLoads`]) and the
/// partitioner's own head snapshot. Because both signals are pure functions
/// of the source's stream prefix, the decision log and the routed counts
/// are *exactly* equal to the engine's
/// (`slb-net/tests/controller_differential.rs` pins this across backends).
///
/// # Panics
/// Panics if the scenario or the controller config is invalid.
pub fn simulate_scenario_controlled(
    kind: PartitionerKind,
    scenario: &Scenario,
    controller: &ControllerConfig,
) -> ControlledSimResult {
    if let Err(message) = scenario.validate() {
        panic!("invalid scenario: {message}");
    }
    controller.validate();
    let spawned = scenario.max_workers().max(controller.max_workers);
    let mut counts = vec![0u64; spawned];
    let mut events = Vec::new();
    // Sources are independent: each carries its own controller and
    // partitioner across all phases, exactly like one engine source thread.
    for source in 0..scenario.sources {
        let mut ctrl = ElasticityController::new(
            controller.clone(),
            source as u32,
            scenario.phases[0].workers,
        );
        let mut window_loads = PerWindowLoads::new(spawned);
        let mut partitioner: Option<Box<dyn Partitioner<KeyId>>> = None;
        for (p, phase) in scenario.phases.iter().enumerate() {
            // The controller owns the active count: phase worker counts are
            // advisory only (they seeded the controller's initial count).
            let mut active = ctrl.active_workers();
            let config = |workers: usize| {
                PartitionConfig::new(workers)
                    .with_seed(scenario.seed)
                    .with_solver(SolverMode::External)
            };
            match partitioner.as_mut() {
                None => partitioner = Some(build_partitioner::<KeyId>(kind, &config(active))),
                Some(part) => {
                    part.rescale(&config(active));
                    ctrl.note_partitioner_rebuilt();
                }
            }
            let part = partitioner.as_mut().expect("partitioner built above");
            let mut stream = scenario.phase_stream(p, source);
            for _window in 0..phase.windows {
                for _ in 0..scenario.window_size {
                    let key = stream.next_key().expect("stream covers every window");
                    let slot = part.route(&key);
                    counts[slot] += 1;
                    window_loads.record(slot);
                }
                // The engine's window-boundary controller step, verbatim:
                // observe, then either rescale or retune — never both.
                let window_total = window_loads.total();
                let window_max = window_loads.max_count();
                window_loads.finish_window(active);
                if let Some(new_active) = ctrl.observe_window(window_total, window_max) {
                    active = new_active;
                    part.rescale(&config(active));
                } else if let Some(snapshot) = part.head_snapshot() {
                    if let Some(decision) = ctrl.retune(&snapshot.frequencies, snapshot.tail_mass())
                    {
                        part.apply_choices(decision);
                    }
                }
            }
            assert!(
                stream.next_key().is_none(),
                "phase stream outlived its windows"
            );
        }
        events.extend(ctrl.take_events());
    }
    ControlledSimResult {
        scheme: kind.symbol().to_string(),
        scenario: scenario.name.clone(),
        tuples: counts.iter().sum(),
        imbalance: slb_core::imbalance(&counts),
        worker_counts: counts,
        controller: ControllerMetrics::merged(events),
    }
}

/// Replays the scenario under every scheme in `schemes`, in order.
pub fn compare_scenario_schemes(
    scenario: &Scenario,
    schemes: &[PartitionerKind],
) -> Vec<ScenarioSimResult> {
    schemes
        .iter()
        .map(|&kind| simulate_scenario(kind, scenario))
        .collect()
}

/// Imbalance of per-worker *work*: routed counts scaled by each worker's
/// service-time multiplier, normalized to shares. A count-balanced phase
/// with one 2× slower worker shows positive weighted imbalance — the slow
/// worker is the bottleneck the paper's saturation argument cares about.
fn weighted_imbalance(counts: &[u64], speed_of: impl Fn(usize) -> f64) -> f64 {
    let work: Vec<f64> = counts
        .iter()
        .enumerate()
        .map(|(w, &c)| c as f64 * speed_of(w))
        .collect();
    let total: f64 = work.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let shares: Vec<f64> = work.iter().map(|w| w / total).collect();
    imbalance_fractions(&shares)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_workloads::ScenarioPhase;

    fn scenario(seed: u64) -> Scenario {
        Scenario::new("sim-unit", 3, 128, seed)
            .phase(ScenarioPhase::new(2, 500, 2.0, 4))
            .phase(
                ScenarioPhase::new(2, 500, 1.0, 8)
                    .with_worker_speed(vec![3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]),
            )
            .phase(ScenarioPhase::new(1, 300, 0.0, 2))
    }

    #[test]
    fn every_tuple_is_routed_exactly_once() {
        let s = scenario(9);
        let result = simulate_scenario(PartitionerKind::Pkg, &s);
        assert_eq!(result.tuples, s.total_tuples());
        assert_eq!(result.phases.len(), 3);
        for (p, outcome) in result.phases.iter().enumerate() {
            assert_eq!(outcome.phase, p);
            assert_eq!(outcome.workers, s.phases[p].workers);
            assert_eq!(
                outcome.tuples,
                s.phase_tuples_per_source(p) * s.sources as u64
            );
            assert_eq!(outcome.worker_counts.iter().sum::<u64>(), outcome.tuples);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let s = scenario(4);
        let a = simulate_scenario(PartitionerKind::DChoices, &s);
        let b = simulate_scenario(PartitionerKind::DChoices, &s);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_imbalance_flags_slow_workers() {
        // Perfectly count-balanced, but worker 0 is 3× slower: weighted
        // imbalance must be positive while plain imbalance is zero.
        let counts = [100u64, 100, 100, 100];
        let plain = weighted_imbalance(&counts, |_| 1.0);
        assert!(plain.abs() < 1e-12);
        let skewed = weighted_imbalance(&counts, |w| if w == 0 { 3.0 } else { 1.0 });
        assert!(skewed > 0.2, "weighted imbalance {skewed}");
    }

    #[test]
    fn heterogeneous_phase_reports_higher_weighted_imbalance_for_sg() {
        // Shuffle grouping balances counts; the 3×-slow worker in phase 1
        // must surface only in the weighted metric.
        let s = scenario(7);
        let result = simulate_scenario(PartitionerKind::ShuffleGrouping, &s);
        let hetero = &result.phases[1];
        assert!(
            hetero.imbalance < 0.01,
            "SG count imbalance {}",
            hetero.imbalance
        );
        assert!(
            hetero.weighted_imbalance > hetero.imbalance + 0.1,
            "weighted {} vs plain {}",
            hetero.weighted_imbalance,
            hetero.imbalance
        );
    }

    #[test]
    fn skewed_phase_orders_schemes_as_the_paper_predicts() {
        let s = scenario(42);
        let kg = simulate_scenario(PartitionerKind::KeyGrouping, &s);
        let wc = simulate_scenario(PartitionerKind::WChoices, &s);
        // Phase 0 is z=2.0 on 4 workers: KG must be far worse than W-C.
        assert!(kg.phases[0].imbalance > wc.phases[0].imbalance);
        // Phase 2 is uniform: every scheme is close to balanced.
        assert!(kg.phases[2].imbalance < 0.1);
        assert!(wc.phases[2].imbalance < 0.1);
    }

    #[test]
    fn compare_returns_results_in_scheme_order() {
        let s = scenario(1);
        let results =
            compare_scenario_schemes(&s, &[PartitionerKind::KeyGrouping, PartitionerKind::Pkg]);
        assert_eq!(results[0].scheme, "KG");
        assert_eq!(results[1].scheme, "PKG");
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn invalid_scenario_panics() {
        let s = Scenario::new("empty", 1, 64, 0);
        let _ = simulate_scenario(PartitionerKind::Pkg, &s);
    }

    #[test]
    fn controlled_replay_is_deterministic_and_conserves_tuples() {
        let s = Scenario::drift(2, 128, 4, 11);
        let cfg = ControllerConfig::new(2, 8, 60);
        let a = simulate_scenario_controlled(PartitionerKind::DChoices, &s, &cfg);
        let b = simulate_scenario_controlled(PartitionerKind::DChoices, &s, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.tuples, s.total_tuples());
        // The spawned universe covers the controller's reach.
        assert_eq!(a.worker_counts.len(), 8);
        assert_eq!(a.worker_counts.iter().sum::<u64>(), a.tuples);
        assert!(a.controller.enabled);
        for e in &a.controller.events {
            assert!(
                (2..=8).contains(&(e.workers as usize)),
                "decision outside bounds: {e:?}"
            );
        }
    }

    #[test]
    fn controlled_replay_scales_out_under_pressure() {
        // Capacity 30 on 128-tuple windows: even perfectly balanced load on
        // 4 workers (32 each) exceeds capacity, so the controller must
        // activate workers beyond the scenario's constant 4.
        let s = Scenario::drift(1, 128, 4, 3);
        let cfg = ControllerConfig::new(2, 8, 30);
        let r = simulate_scenario_controlled(PartitionerKind::DChoices, &s, &cfg);
        assert!(
            r.controller.events.iter().any(|e| e.workers as usize > 4),
            "no scale-out happened: {:?}",
            r.controller.events
        );
        assert!(
            r.worker_counts[4..].iter().any(|&c| c > 0),
            "activated workers received no load"
        );
    }

    #[test]
    fn controller_events_only_for_tunable_schemes() {
        // PKG has no tunable d and no head snapshot: with a capacity no
        // window can exceed, the controller stays silent end to end.
        let s = Scenario::drift(1, 64, 4, 5);
        let cfg = ControllerConfig::new(4, 4, u64::MAX);
        let r = simulate_scenario_controlled(PartitionerKind::Pkg, &s, &cfg);
        assert!(r.controller.enabled);
        assert!(r.controller.events.is_empty());
    }
}
