//! Parameterized drivers that regenerate the paper's figures.
//!
//! Each function corresponds to one figure (or a family of panels of one
//! figure) of the evaluation section and returns plain data rows; the
//! `slb-bench` experiment binaries format them as the tables/series the
//! paper reports. All drivers accept an [`ExperimentScale`] so the same code
//! serves quick smoke tests, laptop-scale reproduction runs, and paper-scale
//! runs.

use serde::{Deserialize, Serialize};

use slb_core::{
    d_fraction, estimated_replicas, find_optimal_choices, relative_overhead_pct, HeadThreshold,
    MemoryScheme, PartitionConfig, PartitionerKind,
};
use slb_workloads::datasets::{Dataset, Scale, SyntheticDataset};
use slb_workloads::zipf::{ZipfDistribution, ZipfGenerator};

use crate::metrics::SimulationResult;
use crate::simulation::{SimulationConfig, Simulator};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Tiny runs for CI / integration tests (seconds).
    Smoke,
    /// Laptop-scale runs preserving the paper's qualitative results (minutes).
    Laptop,
    /// The paper's full parameters (hours).
    Paper,
}

impl ExperimentScale {
    /// Number of messages for a synthetic (ZF) run at this scale.
    pub fn zipf_messages(&self) -> u64 {
        match self {
            ExperimentScale::Smoke => 200_000,
            ExperimentScale::Laptop => 2_000_000,
            ExperimentScale::Paper => 10_000_000,
        }
    }

    /// The dataset scale to use for real-world-like workloads.
    pub fn dataset_scale(&self) -> Scale {
        match self {
            ExperimentScale::Smoke => Scale::Smoke,
            ExperimentScale::Laptop => Scale::Laptop,
            ExperimentScale::Paper => Scale::Paper,
        }
    }

    /// Skew exponents to sweep at this scale (the paper sweeps 0.1…2.0).
    pub fn skew_sweep(&self) -> Vec<f64> {
        match self {
            ExperimentScale::Smoke => vec![0.4, 1.2, 2.0],
            _ => (1..=20).map(|i| i as f64 * 0.1).collect(),
        }
    }
}

/// One measured point: a scheme at a given setting with its imbalance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImbalanceRow {
    /// Dataset symbol (WP, TW, CT, ZF).
    pub dataset: String,
    /// Scheme symbol.
    pub scheme: String,
    /// Number of workers.
    pub workers: usize,
    /// Zipf exponent, when the workload is synthetic.
    pub skew: Option<f64>,
    /// Number of distinct keys in the workload.
    pub keys: u64,
    /// Messages replayed.
    pub messages: u64,
    /// Final imbalance `I(m)`.
    pub imbalance: f64,
    /// Average imbalance across the run's checkpoints.
    pub mean_imbalance: f64,
}

impl ImbalanceRow {
    fn from_result(dataset: &str, skew: Option<f64>, keys: u64, r: &SimulationResult) -> Self {
        Self {
            dataset: dataset.to_string(),
            scheme: r.scheme.clone(),
            workers: r.workers,
            skew,
            keys,
            messages: r.messages,
            imbalance: r.imbalance,
            mean_imbalance: r.mean_imbalance,
        }
    }
}

/// Default seed used by the experiment drivers (any fixed value works; the
/// paper averages over runs, we keep a single deterministic run per setting
/// plus explicit seeds in the harness for replication).
pub const DEFAULT_SEED: u64 = 0x5EED_0001;

fn simulate_zipf(
    kind: PartitionerKind,
    workers: usize,
    keys: usize,
    z: f64,
    messages: u64,
    seed: u64,
    threshold: HeadThreshold,
) -> SimulationResult {
    let partition = PartitionConfig::new(workers)
        .with_seed(seed)
        .with_threshold(threshold);
    let config = SimulationConfig::new(kind, workers)
        .with_partition(partition)
        .with_checkpoint_interval((messages / 20).max(1));
    let mut stream = ZipfGenerator::with_limit(keys, z, seed, messages);
    Simulator::run(config, &mut stream)
}

fn simulate_dataset(
    kind: PartitionerKind,
    workers: usize,
    dataset: &SyntheticDataset,
    threshold: HeadThreshold,
) -> SimulationResult {
    let partition = PartitionConfig::new(workers)
        .with_seed(dataset.seed())
        .with_threshold(threshold);
    let messages = dataset.stats().messages;
    let config = SimulationConfig::new(kind, workers)
        .with_partition(partition)
        .with_checkpoint_interval((messages / 40).max(1));
    let mut stream = dataset.stream();
    Simulator::run(config, stream.as_mut())
}

// ---------------------------------------------------------------------------
// Figure 1 / Figure 11: imbalance vs. number of workers on real-world data
// ---------------------------------------------------------------------------

/// Figure 1 (WP only) and Figure 11 (WP, TW, CT): imbalance as a function of
/// the number of workers for PKG, D-C and W-C.
pub fn imbalance_vs_workers(
    datasets: &[SyntheticDataset],
    schemes: &[PartitionerKind],
    worker_counts: &[usize],
) -> Vec<ImbalanceRow> {
    let mut rows = Vec::new();
    for ds in datasets {
        for &workers in worker_counts {
            for &scheme in schemes {
                let r = simulate_dataset(scheme, workers, ds, HeadThreshold::DEFAULT);
                rows.push(ImbalanceRow::from_result(
                    ds.stats().kind.symbol(),
                    None,
                    ds.stats().keys,
                    &r,
                ));
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 3: cardinality of the head vs. skew
// ---------------------------------------------------------------------------

/// One row of Figure 3: how many keys exceed the threshold θ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeadCardinalityRow {
    /// Zipf exponent.
    pub skew: f64,
    /// Number of workers the threshold refers to.
    pub workers: usize,
    /// Threshold label (e.g. "1/(5n)").
    pub threshold: String,
    /// Number of keys in the head.
    pub cardinality: usize,
}

/// Figure 3: head cardinality for θ = 1/(5n) and θ = 2/n across skews, for
/// the given worker counts (the paper shows 50 and 100), |K| = 10⁴.
pub fn head_cardinality_vs_skew(
    worker_counts: &[usize],
    keys: usize,
    skews: &[f64],
) -> Vec<HeadCardinalityRow> {
    let thresholds = [HeadThreshold::new(1.0, 5.0), HeadThreshold::new(2.0, 1.0)];
    let mut rows = Vec::new();
    for &z in skews {
        let dist = ZipfDistribution::new(keys, z);
        for &workers in worker_counts {
            for t in &thresholds {
                rows.push(HeadCardinalityRow {
                    skew: z,
                    workers,
                    threshold: t.label(),
                    cardinality: dist.head_cardinality(t.frequency(workers)),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 4: fraction of workers (d/n) required by D-Choices vs. skew
// ---------------------------------------------------------------------------

/// One row of Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DFractionRow {
    /// Zipf exponent.
    pub skew: f64,
    /// Number of workers.
    pub workers: usize,
    /// The solver's d.
    pub d: usize,
    /// d / n.
    pub fraction: f64,
}

/// Figure 4: the fraction of workers D-Choices assigns to the head, from the
/// analytic solver on the exact Zipf distribution (|K| = 10⁴, ε = 10⁻⁴ in
/// the paper).
pub fn d_fraction_vs_skew(
    worker_counts: &[usize],
    keys: usize,
    skews: &[f64],
    epsilon: f64,
) -> Vec<DFractionRow> {
    let mut rows = Vec::new();
    for &z in skews {
        let dist = ZipfDistribution::new(keys, z);
        for &workers in worker_counts {
            let theta = HeadThreshold::DEFAULT.frequency(workers);
            let head: Vec<f64> = dist
                .probabilities()
                .iter()
                .copied()
                .take_while(|&p| p >= theta)
                .collect();
            let tail_mass = 1.0 - head.iter().sum::<f64>();
            let fraction = d_fraction(&head, tail_mass, workers, epsilon);
            let d = find_optimal_choices(&head, tail_mass, workers, epsilon).effective_d(workers);
            rows.push(DFractionRow {
                skew: z,
                workers,
                d,
                fraction,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 5 and 6: estimated memory overhead vs. PKG and vs. SG
// ---------------------------------------------------------------------------

/// One row of Figures 5/6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryRow {
    /// Zipf exponent.
    pub skew: f64,
    /// Number of workers.
    pub workers: usize,
    /// Scheme symbol (D-C or W-C).
    pub scheme: String,
    /// Relative overhead versus PKG, percent (Figure 5).
    pub vs_pkg_pct: f64,
    /// Relative overhead versus SG, percent (Figure 6; negative = saving).
    pub vs_sg_pct: f64,
}

/// Figures 5 and 6: estimated memory overhead of D-C and W-C relative to PKG
/// and SG, using the analytic per-key replica model on a Zipf workload.
pub fn memory_overhead_vs_skew(
    worker_counts: &[usize],
    keys: usize,
    messages: u64,
    skews: &[f64],
    epsilon: f64,
) -> Vec<MemoryRow> {
    let mut rows = Vec::new();
    for &z in skews {
        let dist = ZipfDistribution::new(keys, z);
        let counts: Vec<u64> = dist
            .probabilities()
            .iter()
            .map(|p| (p * messages as f64).round().max(0.0) as u64)
            .collect();
        for &workers in worker_counts {
            let theta = HeadThreshold::DEFAULT.frequency(workers);
            let head_cardinality = dist.head_cardinality(theta);
            let head: Vec<f64> = dist.probabilities()[..head_cardinality].to_vec();
            let tail_mass = 1.0 - head.iter().sum::<f64>();
            let d = find_optimal_choices(&head, tail_mass, workers, epsilon).effective_d(workers);
            for (scheme, label) in [
                (MemoryScheme::DChoices { d }, "D-C"),
                (MemoryScheme::WChoices, "W-C"),
            ] {
                rows.push(MemoryRow {
                    skew: z,
                    workers,
                    scheme: label.to_string(),
                    vs_pkg_pct: relative_overhead_pct(
                        &counts,
                        head_cardinality,
                        workers,
                        scheme,
                        MemoryScheme::Pkg,
                    ),
                    vs_sg_pct: relative_overhead_pct(
                        &counts,
                        head_cardinality,
                        workers,
                        scheme,
                        MemoryScheme::Shuffle,
                    ),
                });
            }
        }
    }
    rows
}

/// Absolute estimated replica counts for every scheme (supporting data for
/// Figures 5/6 and the Section IV-B discussion).
pub fn absolute_memory(
    workers: usize,
    keys: usize,
    messages: u64,
    z: f64,
    epsilon: f64,
) -> Vec<(String, u64)> {
    let dist = ZipfDistribution::new(keys, z);
    let counts: Vec<u64> = dist
        .probabilities()
        .iter()
        .map(|p| (p * messages as f64).round() as u64)
        .collect();
    let theta = HeadThreshold::DEFAULT.frequency(workers);
    let head_cardinality = dist.head_cardinality(theta);
    let head: Vec<f64> = dist.probabilities()[..head_cardinality].to_vec();
    let tail_mass = 1.0 - head.iter().sum::<f64>();
    let d = find_optimal_choices(&head, tail_mass, workers, epsilon).effective_d(workers);
    vec![
        (
            "KG".to_string(),
            estimated_replicas(
                &counts,
                head_cardinality,
                workers,
                MemoryScheme::KeyGrouping,
            ),
        ),
        (
            "PKG".to_string(),
            estimated_replicas(&counts, head_cardinality, workers, MemoryScheme::Pkg),
        ),
        (
            "D-C".to_string(),
            estimated_replicas(
                &counts,
                head_cardinality,
                workers,
                MemoryScheme::DChoices { d },
            ),
        ),
        (
            "W-C".to_string(),
            estimated_replicas(&counts, head_cardinality, workers, MemoryScheme::WChoices),
        ),
        (
            "SG".to_string(),
            estimated_replicas(&counts, head_cardinality, workers, MemoryScheme::Shuffle),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Figure 7: threshold sweep for W-C and RR
// ---------------------------------------------------------------------------

/// One row of Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdRow {
    /// Scheme symbol (W-C or RR).
    pub scheme: String,
    /// Threshold label.
    pub threshold: String,
    /// Number of workers.
    pub workers: usize,
    /// Zipf exponent.
    pub skew: f64,
    /// Final imbalance.
    pub imbalance: f64,
}

/// Figure 7: load imbalance of W-Choices and Round-Robin as a function of
/// skew, for each threshold in the 2/n … 1/(8n) sweep.
pub fn threshold_sweep(
    worker_counts: &[usize],
    keys: usize,
    messages: u64,
    skews: &[f64],
    seed: u64,
) -> Vec<ThresholdRow> {
    let mut rows = Vec::new();
    for &workers in worker_counts {
        for threshold in HeadThreshold::figure7_sweep() {
            for &z in skews {
                for kind in [PartitionerKind::WChoices, PartitionerKind::RoundRobin] {
                    let r = simulate_zipf(kind, workers, keys, z, messages, seed, threshold);
                    rows.push(ThresholdRow {
                        scheme: r.scheme.clone(),
                        threshold: threshold.label(),
                        workers,
                        skew: z,
                        imbalance: r.imbalance,
                    });
                }
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 8: per-worker load split between head and tail
// ---------------------------------------------------------------------------

/// One row of Figure 8: a worker's load split for a scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeadTailRow {
    /// Scheme symbol.
    pub scheme: String,
    /// Worker index (1-based, as in the paper's plot).
    pub worker: usize,
    /// Percentage of the total load this worker received from head keys.
    pub head_pct: f64,
    /// Percentage of the total load this worker received from tail keys.
    pub tail_pct: f64,
}

/// Figure 8: load generated by head and tail per worker for PKG, W-C and RR,
/// with n = 5, θ = 1/(8n), z = 2.0, |K| = 10⁴ in the paper.
pub fn head_tail_load(
    workers: usize,
    keys: usize,
    messages: u64,
    z: f64,
    seed: u64,
) -> Vec<HeadTailRow> {
    let threshold = HeadThreshold::new(1.0, 8.0);
    let mut rows = Vec::new();
    for kind in [
        PartitionerKind::Pkg,
        PartitionerKind::WChoices,
        PartitionerKind::RoundRobin,
    ] {
        let partition = PartitionConfig::new(workers)
            .with_seed(seed)
            .with_threshold(threshold);
        let config = SimulationConfig::new(kind, workers)
            .with_partition(partition)
            .with_placement_tracking(true)
            .with_checkpoint_interval((messages / 20).max(1));
        let mut stream = ZipfGenerator::with_limit(keys, z, seed, messages);
        let r = Simulator::run(config, &mut stream);
        let ht = r.head_tail.expect("placement tracking was enabled");
        for w in 0..workers {
            rows.push(HeadTailRow {
                scheme: r.scheme.clone(),
                worker: w + 1,
                head_pct: ht.head[w] * 100.0,
                tail_pct: ht.tail[w] * 100.0,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 9: the solver's d vs. the empirically minimal d
// ---------------------------------------------------------------------------

/// One row of Figure 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinimalDRow {
    /// Zipf exponent.
    pub skew: f64,
    /// Number of workers.
    pub workers: usize,
    /// d computed by the D-Choices solver.
    pub solver_d: usize,
    /// Smallest d whose Greedy-d imbalance matches W-Choices (within 10%).
    pub minimal_d: usize,
    /// Imbalance of the W-Choices reference run.
    pub wchoices_imbalance: f64,
}

/// Figure 9: compares the solver's d with the empirically minimal d that
/// matches the imbalance of W-Choices. The empirical search runs Greedy-d
/// for increasing d on the same workload.
pub fn d_vs_empirical_minimum(
    worker_counts: &[usize],
    keys: usize,
    messages: u64,
    skews: &[f64],
    epsilon: f64,
    seed: u64,
) -> Vec<MinimalDRow> {
    let mut rows = Vec::new();
    for &workers in worker_counts {
        for &z in skews {
            // Reference: W-Choices imbalance on this workload.
            let wc = simulate_zipf(
                PartitionerKind::WChoices,
                workers,
                keys,
                z,
                messages,
                seed,
                HeadThreshold::DEFAULT,
            );
            // Solver's d from the exact distribution.
            let dist = ZipfDistribution::new(keys, z);
            let theta = HeadThreshold::DEFAULT.frequency(workers);
            let head_cardinality = dist.head_cardinality(theta);
            let head: Vec<f64> = dist.probabilities()[..head_cardinality].to_vec();
            let tail_mass = 1.0 - head.iter().sum::<f64>();
            let solver_d =
                find_optimal_choices(&head, tail_mass, workers, epsilon).effective_d(workers);
            // Empirical minimum: smallest d whose imbalance matches W-C's.
            // "Matching" uses the paper's tolerance semantics: each of the s
            // sources runs the algorithm independently, so an imbalance up to
            // s·ε is considered equivalent to W-C (the horizontal line drawn
            // in Figures 10–11); below that, differences are noise.
            let sources = 5.0;
            let target = wc.imbalance.max(sources * epsilon) * 1.10;
            let mut minimal_d = workers;
            for d in 2..=workers {
                let r = run_greedy_d_fixed(workers, keys, z, messages, seed, d);
                if r.imbalance <= target {
                    minimal_d = d;
                    break;
                }
            }
            rows.push(MinimalDRow {
                skew: z,
                workers,
                solver_d,
                minimal_d,
                wchoices_imbalance: wc.imbalance,
            });
        }
    }
    rows
}

/// Runs a D-Choices-style simulation where the head always uses exactly `d`
/// choices (bypassing the solver), used by the Figure 9 empirical search.
fn run_greedy_d_fixed(
    workers: usize,
    keys: usize,
    z: f64,
    messages: u64,
    seed: u64,
    d: usize,
) -> SimulationResult {
    // A fixed d is emulated by running the D-Choices scheme with the solver's
    // epsilon relaxed/tightened so that it would pick d — instead of plumbing
    // a by-pass through the public API we simulate the Greedy-d process
    // directly here, reusing the same hash family and head tracker the real
    // partitioner uses.
    use slb_core::{HeadTracker, LoadVector};
    use slb_hash::HashFamily;

    let sources = 5usize;
    let theta = HeadThreshold::DEFAULT.frequency(workers);
    let mut families = Vec::new();
    let mut loads = Vec::new();
    let mut trackers: Vec<HeadTracker<u64>> = Vec::new();
    for s in 0..sources {
        let seed_s = seed.wrapping_add((s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        families.push(HashFamily::new(seed_s, workers.max(2), workers));
        loads.push(LoadVector::new(workers));
        trackers.push(HeadTracker::new(10 * workers, theta));
    }
    let mut global = vec![0u64; workers];
    let mut stream = ZipfGenerator::with_limit(keys, z, seed, messages);
    let mut i = 0u64;
    let mut scratch = Vec::new();
    while let Some(key) = slb_workloads::KeyStream::next_key(&mut stream) {
        let s = (i % sources as u64) as usize;
        let in_head = trackers[s].observe(&key);
        let choices = if in_head { d.clamp(2, workers) } else { 2 };
        families[s].choices_into(&key, choices, &mut scratch);
        let w = loads[s].min_load_among(&scratch);
        loads[s].record(w);
        global[w] += 1;
        i += 1;
    }
    SimulationResult {
        scheme: format!("Greedy-{d}"),
        workers,
        sources,
        messages: i,
        imbalance: slb_core::imbalance(&global),
        mean_imbalance: slb_core::imbalance(&global),
        time_series: Vec::new(),
        observed_replicas: None,
        head_tail: None,
        worker_loads: global,
    }
}

// ---------------------------------------------------------------------------
// Figure 10: imbalance vs. skew grid (schemes × workers × key-space sizes)
// ---------------------------------------------------------------------------

/// Figure 10: average imbalance of PKG, D-C, W-C and RR as a function of
/// skew, for every combination of worker count and key-space size requested.
pub fn zipf_grid(
    worker_counts: &[usize],
    key_counts: &[usize],
    messages: u64,
    skews: &[f64],
    seed: u64,
) -> Vec<ImbalanceRow> {
    let schemes = [
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::RoundRobin,
    ];
    let mut rows = Vec::new();
    for &keys in key_counts {
        for &workers in worker_counts {
            for &z in skews {
                for &kind in &schemes {
                    let r = simulate_zipf(
                        kind,
                        workers,
                        keys,
                        z,
                        messages,
                        seed,
                        HeadThreshold::DEFAULT,
                    );
                    rows.push(ImbalanceRow::from_result("ZF", Some(z), keys as u64, &r));
                }
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 12: imbalance over time on the real-world datasets
// ---------------------------------------------------------------------------

/// One series of Figure 12: imbalance samples over time for one scheme on
/// one dataset at one scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeriesRow {
    /// Dataset symbol.
    pub dataset: String,
    /// Scheme symbol.
    pub scheme: String,
    /// Number of workers.
    pub workers: usize,
    /// (messages processed, imbalance) samples.
    pub series: Vec<(u64, f64)>,
}

/// Figure 12: imbalance over time for PKG, D-C and W-C on the real-world
/// datasets.
pub fn imbalance_over_time(
    datasets: &[SyntheticDataset],
    worker_counts: &[usize],
    checkpoints: usize,
) -> Vec<TimeSeriesRow> {
    let schemes = [
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
    ];
    let mut rows = Vec::new();
    for ds in datasets {
        let messages = ds.stats().messages;
        let interval = (messages / checkpoints as u64).max(1);
        for &workers in worker_counts {
            for &kind in &schemes {
                let partition = PartitionConfig::new(workers).with_seed(ds.seed());
                let config = SimulationConfig::new(kind, workers)
                    .with_partition(partition)
                    .with_checkpoint_interval(interval);
                let mut stream = ds.stream();
                let r = Simulator::run(config, stream.as_mut());
                rows.push(TimeSeriesRow {
                    dataset: ds.stats().kind.symbol().to_string(),
                    scheme: r.scheme.clone(),
                    workers,
                    series: r
                        .time_series
                        .iter()
                        .map(|p| (p.messages, p.imbalance))
                        .collect(),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE_MESSAGES: u64 = 100_000;

    #[test]
    fn figure3_head_cardinality_shapes() {
        let rows = head_cardinality_vs_skew(&[50, 100], 10_000, &[0.4, 1.2, 2.0]);
        assert_eq!(rows.len(), 2 * 2 * 3);
        // The 1/(5n) threshold always yields at least as many head keys as 2/n.
        for chunk in rows.chunks(2) {
            let (low, high) = (&chunk[0], &chunk[1]);
            assert_eq!(low.threshold, "1/(5n)");
            assert_eq!(high.threshold, "2/n");
            assert!(low.cardinality >= high.cardinality);
        }
        // At very high skew only a handful of keys are in the head.
        let extreme: Vec<_> = rows.iter().filter(|r| r.skew >= 1.9).collect();
        assert!(extreme.iter().all(|r| r.cardinality <= 70));
    }

    #[test]
    fn figure4_fraction_shrinks_with_scale() {
        let rows = d_fraction_vs_skew(&[10, 100], 10_000, &[1.6], 1e-4);
        let f10 = rows.iter().find(|r| r.workers == 10).unwrap().fraction;
        let f100 = rows.iter().find(|r| r.workers == 100).unwrap().fraction;
        assert!(
            f100 <= f10 + 1e-9,
            "d/n at n=100 ({f100}) should not exceed d/n at n=10 ({f10})"
        );
        for r in &rows {
            assert!(r.fraction > 0.0 && r.fraction <= 1.0);
            assert_eq!(r.d as f64 / r.workers as f64, r.fraction);
        }
    }

    #[test]
    fn figure5_6_memory_overheads_have_expected_signs() {
        let rows = memory_overhead_vs_skew(&[50], 10_000, 10_000_000, &[0.8, 1.6], 1e-4);
        for r in &rows {
            assert!(r.vs_pkg_pct >= -1e-9, "{r:?}");
            assert!(r.vs_sg_pct <= 1e-9, "{r:?}");
        }
        // D-C never uses more memory than W-C at the same setting.
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].scheme, "D-C");
            assert_eq!(pair[1].scheme, "W-C");
            assert!(pair[0].vs_pkg_pct <= pair[1].vs_pkg_pct + 1e-9);
        }
    }

    #[test]
    fn figure8_shares_sum_to_hundred_percent() {
        let rows = head_tail_load(5, 1_000, SMOKE_MESSAGES, 2.0, 7);
        for scheme in ["PKG", "W-C", "RR"] {
            let total: f64 = rows
                .iter()
                .filter(|r| r.scheme == scheme)
                .map(|r| r.head_pct + r.tail_pct)
                .sum();
            assert!((total - 100.0).abs() < 1e-6, "{scheme}: {total}");
        }
        // Under z = 2.0 the head dominates the load.
        let head_total: f64 = rows
            .iter()
            .filter(|r| r.scheme == "W-C")
            .map(|r| r.head_pct)
            .sum();
        assert!(head_total > 50.0);
    }

    #[test]
    fn figure1_wp_pkg_worse_than_wchoices_at_scale() {
        let wp = SyntheticDataset::wikipedia_like(Scale::Smoke, 3);
        let rows = imbalance_vs_workers(
            &[wp],
            &[PartitionerKind::Pkg, PartitionerKind::WChoices],
            &[50],
        );
        let pkg = rows.iter().find(|r| r.scheme == "PKG").unwrap();
        let wc = rows.iter().find(|r| r.scheme == "W-C").unwrap();
        assert!(
            wc.imbalance < pkg.imbalance,
            "W-C ({}) must beat PKG ({}) on WP at 50 workers",
            wc.imbalance,
            pkg.imbalance
        );
    }

    #[test]
    fn figure10_grid_produces_all_combinations() {
        let rows = zipf_grid(&[5], &[1_000], 50_000, &[0.5, 2.0], 1);
        assert_eq!(rows.len(), 2 * 4);
        for r in &rows {
            assert_eq!(r.dataset, "ZF");
            assert!(r.imbalance >= 0.0);
        }
    }

    #[test]
    fn figure12_series_are_produced_for_each_dataset_and_scheme() {
        let ct = SyntheticDataset::cashtag_like(Scale::Smoke, 5);
        let rows = imbalance_over_time(&[ct], &[5], 8);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.dataset, "CT");
            assert!(
                r.series.len() >= 7,
                "expected ~8 checkpoints, got {}",
                r.series.len()
            );
        }
    }
}
