//! Process-kill fault tests for `slb-node`: real SIGKILL, real respawn.
//!
//! These are the process-level analogue of the engine's fault-injection
//! suite. Each test runs `slb-node orchestrate --fault-tolerant` with the
//! built-in `--kill-worker W@MS` injector, which SIGKILLs a live worker
//! process mid-run, and asserts the supervisor's recovery contract:
//!
//! * **Respawn path** — the worker is respawned, restores from its durable
//!   on-disk checkpoint, rejoins over the control plane, sources replay
//!   from its cursors, and the merged windowed counts are *bit-identical*
//!   to the single-threaded exact reference (`exact-reference=MATCH`) with
//!   zero duplicate partials reaching the aggregators.
//! * **Degrade path** — with a zero respawn budget the worker is excluded,
//!   the survivors rescale it out at a window boundary, and the run
//!   terminates with a degraded report instead of hanging.
//!
//! The run is sized so the kill is guaranteed to land mid-run: with
//! `service_time_us 50` the worker stage has a busy floor of hundreds of
//! milliseconds, far past the kill delay.

use std::path::PathBuf;
use std::process::Command;

fn node_exe() -> &'static str {
    env!("CARGO_BIN_EXE_slb-node")
}

fn seed() -> String {
    std::env::var("SLB_TEST_SEED").unwrap_or_else(|_| "42".into())
}

/// Writes `spec` to a unique temp file and returns its path.
fn write_spec(name: &str, spec: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("slb-node-{name}-{}.spec", std::process::id()));
    std::fs::write(&path, spec).expect("write spec file");
    path
}

/// A unique checkpoint directory per test, removed afterwards.
fn ckpt_dir(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("slb-node-ckpt-{}-{name}", std::process::id()));
    path
}

#[test]
fn killed_worker_respawns_from_checkpoint_and_counts_match_exactly() {
    // ~820 ms of pure service time spread over 3 workers: the kill at
    // 250 ms is deep mid-run, with dozens of checkpointed windows behind
    // it and dozens of windows left to replay and process.
    let spec = format!(
        "# fault golden: SIGKILL worker 1 mid-run, respawn, replay, verify\n\
         mode engine\n\
         scheme PKG\n\
         sources 2\n\
         workers 3\n\
         keys 500\n\
         skew 1.6\n\
         messages 49152\n\
         service_time_us 50\n\
         queue_capacity 256\n\
         seed {}\n\
         batch_size 64\n\
         window_size 256\n\
         aggregators 2\n",
        seed()
    );
    let path = write_spec("fault-respawn", &spec);
    let dir = ckpt_dir("respawn");
    let output = Command::new(node_exe())
        .arg("orchestrate")
        .arg("--spec")
        .arg(&path)
        .arg("--verify")
        .arg("--fault-tolerant")
        .arg("--respawn-budget")
        .arg("1")
        .arg("--ckpt-dir")
        .arg(&dir)
        .arg("--kill-worker")
        .arg("1@250")
        .output()
        .expect("spawn slb-node orchestrate");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "supervised orchestrate failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("exact-reference=MATCH"),
        "counts diverged from the reference after a worker kill\n{stdout}\n{stderr}"
    );
    // Exactly-once across the process boundary: replayed tuples are
    // deduplicated at the worker, so at most the *tail* window — shipped
    // but not yet checkpointed when the SIGKILL landed — may reach the
    // aggregators twice, and their (worker, window) dedup drops it. With
    // the store's two on-disk generations that bounds the duplicates at
    // 2 windows × `aggregators` partials; anything above means worker-side
    // dedup failed and tuples were re-counted.
    let dropped = stdout
        .lines()
        .find_map(|l| l.strip_prefix("aggregator_recovery duplicates_dropped="))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse::<u64>().ok())
        .expect("missing aggregator recovery report");
    assert!(
        dropped <= 4,
        "more than the tail windows reached the aggregators twice \
         (duplicates_dropped={dropped})\n{stdout}"
    );
    assert!(
        stdout.contains("worker_recovery restores="),
        "missing worker recovery report\n{stdout}"
    );
    assert!(
        !stdout.contains("degraded workers="),
        "a budgeted respawn must not degrade the run\n{stdout}"
    );
}

#[test]
fn exhausted_respawn_budget_degrades_instead_of_hanging() {
    let spec = format!(
        "# fault golden: SIGKILL worker 1 with a zero respawn budget\n\
         mode engine\n\
         scheme PKG\n\
         sources 2\n\
         workers 3\n\
         keys 500\n\
         skew 1.6\n\
         messages 24576\n\
         service_time_us 50\n\
         queue_capacity 256\n\
         seed {}\n\
         batch_size 64\n\
         window_size 256\n\
         aggregators 2\n",
        seed()
    );
    let path = write_spec("fault-degrade", &spec);
    let dir = ckpt_dir("degrade");
    // No --verify: excluding a worker forfeits its unshipped tuples by
    // design, so the merged counts legitimately differ from the reference.
    let output = Command::new(node_exe())
        .arg("orchestrate")
        .arg("--spec")
        .arg(&path)
        .arg("--fault-tolerant")
        .arg("--respawn-budget")
        .arg("0")
        .arg("--ckpt-dir")
        .arg(&dir)
        .arg("--kill-worker")
        .arg("1@150")
        .output()
        .expect("spawn slb-node orchestrate");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "degraded run must terminate with a report, not an error\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("degraded workers=[1]"),
        "expected worker 1 to be reported as degraded\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("scheme="),
        "expected a full result report despite the exclusion\n{stdout}"
    );
}
