//! Process-kill fault tests for `slb-node`: real SIGKILL, real respawn.
//!
//! These are the process-level analogue of the engine's fault-injection
//! suite. Each test runs `slb-node orchestrate --fault-tolerant` with the
//! built-in `--kill-worker W@MS` injector, which SIGKILLs a live worker
//! process mid-run, and asserts the supervisor's recovery contract:
//!
//! * **Respawn path** — the worker is respawned, restores from its durable
//!   on-disk checkpoint, rejoins over the control plane, sources replay
//!   from its cursors, and the merged windowed counts are *bit-identical*
//!   to the single-threaded exact reference (`exact-reference=MATCH`) with
//!   zero duplicate partials reaching the aggregators.
//! * **Exact duplicate accounting** — the deterministic `--crash-worker W@N`
//!   injector aborts between shipping a window and saving its checkpoint,
//!   so the re-shipped tail window is guaranteed: `duplicates_dropped` must
//!   equal `aggregators` exactly, with exactly one restore.
//! * **Degrade path** — with a zero respawn budget the worker is excluded,
//!   the survivors rescale it out at a window boundary, and the run
//!   terminates with a degraded report instead of hanging.
//!
//! The run is sized so the kill is guaranteed to land mid-run: with
//! `service_time_us 50` the worker stage has a busy floor of hundreds of
//! milliseconds, far past the kill delay.

use std::path::PathBuf;
use std::process::Command;

fn node_exe() -> &'static str {
    env!("CARGO_BIN_EXE_slb-node")
}

/// Pulls the integer that follows `prefix` out of a report line.
fn parse_counter(stdout: &str, prefix: &str) -> u64 {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(prefix))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("missing `{prefix}` report line in:\n{stdout}"))
}

fn seed() -> String {
    std::env::var("SLB_TEST_SEED").unwrap_or_else(|_| "42".into())
}

/// Writes `spec` to a unique temp file and returns its path.
fn write_spec(name: &str, spec: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("slb-node-{name}-{}.spec", std::process::id()));
    std::fs::write(&path, spec).expect("write spec file");
    path
}

/// A unique checkpoint directory per test, removed afterwards.
fn ckpt_dir(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("slb-node-ckpt-{}-{name}", std::process::id()));
    path
}

#[test]
fn killed_worker_respawns_from_checkpoint_and_counts_match_exactly() {
    // ~820 ms of pure service time spread over 3 workers: the kill at
    // 250 ms is deep mid-run, with dozens of checkpointed windows behind
    // it and dozens of windows left to replay and process.
    let spec = format!(
        "# fault golden: SIGKILL worker 1 mid-run, respawn, replay, verify\n\
         mode engine\n\
         scheme PKG\n\
         sources 2\n\
         workers 3\n\
         keys 500\n\
         skew 1.6\n\
         messages 49152\n\
         service_time_us 50\n\
         queue_capacity 256\n\
         seed {}\n\
         batch_size 64\n\
         window_size 256\n\
         aggregators 2\n",
        seed()
    );
    let path = write_spec("fault-respawn", &spec);
    let dir = ckpt_dir("respawn");
    let output = Command::new(node_exe())
        .arg("orchestrate")
        .arg("--spec")
        .arg(&path)
        .arg("--verify")
        .arg("--fault-tolerant")
        .arg("--respawn-budget")
        .arg("1")
        .arg("--ckpt-dir")
        .arg(&dir)
        .arg("--kill-worker")
        .arg("1@250")
        .output()
        .expect("spawn slb-node orchestrate");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "supervised orchestrate failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("exact-reference=MATCH"),
        "counts diverged from the reference after a worker kill\n{stdout}\n{stderr}"
    );
    // Exactly-once across the process boundary: replayed tuples are
    // deduplicated at the worker, so at most the *tail* window — shipped
    // but not yet checkpointed when the SIGKILL landed — may reach the
    // aggregators twice, and their (worker, window) dedup drops it. The
    // store saves window W's checkpoint before window W+1 ships, so each
    // restore re-ships at most that one tail window: `aggregators`
    // partials per restore. Anything above means worker-side dedup failed
    // and tuples were re-counted.
    let dropped = parse_counter(&stdout, "aggregator_recovery duplicates_dropped=");
    let restores = parse_counter(&stdout, "worker_recovery restores=");
    assert!(
        dropped <= restores * 2,
        "more than one tail window per restore reached the aggregators twice \
         (duplicates_dropped={dropped}, restores={restores}, aggregators=2)\n{stdout}"
    );
    assert!(
        restores >= 1,
        "the kill landed but no restore was reported\n{stdout}"
    );
    assert!(
        !stdout.contains("degraded workers="),
        "a budgeted respawn must not degrade the run\n{stdout}"
    );
}

#[test]
fn deterministic_crash_after_ship_yields_exactly_one_reshipped_tail_window() {
    // `--crash-worker 1@10` makes worker 1 abort at its 10th window
    // finalization, after shipping that window's partials but *before* the
    // durable save — the worst interleaving of the tail-window re-ship
    // race, pinned to a fixed point instead of a wall-clock kill. The
    // restored worker replays exactly that window and re-ships it, so the
    // aggregators must drop exactly `aggregators` duplicate partials — no
    // more (dedup works), no fewer (the race really happened).
    let spec = format!(
        "# fault golden: deterministic abort between ship and save\n\
         mode engine\n\
         scheme PKG\n\
         sources 2\n\
         workers 3\n\
         keys 500\n\
         skew 1.6\n\
         messages 24576\n\
         service_time_us 50\n\
         queue_capacity 256\n\
         seed {}\n\
         batch_size 64\n\
         window_size 256\n\
         aggregators 2\n",
        seed()
    );
    let path = write_spec("fault-crash-exact", &spec);
    let dir = ckpt_dir("crash-exact");
    let output = Command::new(node_exe())
        .arg("orchestrate")
        .arg("--spec")
        .arg(&path)
        .arg("--verify")
        .arg("--fault-tolerant")
        .arg("--respawn-budget")
        .arg("1")
        .arg("--ckpt-dir")
        .arg(&dir)
        .arg("--crash-worker")
        .arg("1@10")
        .output()
        .expect("spawn slb-node orchestrate");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "supervised orchestrate failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("exact-reference=MATCH"),
        "counts diverged from the reference after the injected crash\n{stdout}\n{stderr}"
    );
    let restores = parse_counter(&stdout, "worker_recovery restores=");
    assert_eq!(
        restores, 1,
        "the injected crash must cause exactly one restore\n{stdout}"
    );
    let dropped = parse_counter(&stdout, "aggregator_recovery duplicates_dropped=");
    assert_eq!(
        dropped, 2,
        "crash-after-ship-before-save must re-ship exactly the tail window \
         (one duplicate partial per aggregator)\n{stdout}"
    );
    assert!(
        !stdout.contains("degraded workers="),
        "a budgeted respawn must not degrade the run\n{stdout}"
    );
}

#[test]
fn exhausted_respawn_budget_degrades_instead_of_hanging() {
    let spec = format!(
        "# fault golden: SIGKILL worker 1 with a zero respawn budget\n\
         mode engine\n\
         scheme PKG\n\
         sources 2\n\
         workers 3\n\
         keys 500\n\
         skew 1.6\n\
         messages 24576\n\
         service_time_us 50\n\
         queue_capacity 256\n\
         seed {}\n\
         batch_size 64\n\
         window_size 256\n\
         aggregators 2\n",
        seed()
    );
    let path = write_spec("fault-degrade", &spec);
    let dir = ckpt_dir("degrade");
    // No --verify: excluding a worker forfeits its unshipped tuples by
    // design, so the merged counts legitimately differ from the reference.
    let output = Command::new(node_exe())
        .arg("orchestrate")
        .arg("--spec")
        .arg(&path)
        .arg("--fault-tolerant")
        .arg("--respawn-budget")
        .arg("0")
        .arg("--ckpt-dir")
        .arg(&dir)
        .arg("--kill-worker")
        .arg("1@150")
        .output()
        .expect("spawn slb-node orchestrate");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "degraded run must terminate with a report, not an error\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("degraded workers=[1]"),
        "expected worker 1 to be reported as degraded\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("scheme="),
        "expected a full result report despite the exclusion\n{stdout}"
    );
}
