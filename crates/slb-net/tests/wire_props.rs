//! Property suite for the wire codec: round-trip identity and totality.
//!
//! Two families of properties, over randomly generated frames and partials:
//!
//! 1. **Round-trip identity** — `decode(encode(x)) == x` for every frame
//!    type (tuple, partial over all three aggregate partial kinds, control)
//!    and for the binary run-spec encoding, consuming exactly the bytes the
//!    encoder produced (so frames concatenate on a stream).
//! 2. **Totality on bad input** — every strict prefix of a valid encoding
//!    decodes to an *error*, flipped tags decode to an error, and arbitrary
//!    byte soup never panics a decoder. A remote peer's bytes are
//!    untrusted; decoding must fail loudly but gracefully.
//!
//! The offline proptest shim has no `prop_map`, so frames are constructed
//! in the test bodies from primitive inputs; coverage across frame variants
//! comes from one property per variant.

use proptest::prelude::*;
use std::collections::HashMap;

use slb_core::wire::WirePartial;
use slb_core::{
    ControllerAction, ControllerConfig, ControllerEvent, OpenWindowState, PartitionerKind,
    SolverMode, WorkerCheckpoint,
};
use slb_engine::{EngineConfig, ScenarioConfig};
use slb_net::cluster::{decode_run_spec, encode_run_spec, RunSpec};
use slb_net::wire::{
    decode_control_frame, decode_feedback_frame, decode_partial_frame, decode_tuple_frame,
    encode_control_frame, encode_feedback_frame, encode_partial_frame, encode_tuple_frame,
    rle_encode, AggregatorReportWire, ControlFrame, FeedbackFrame, PartialFrame, TupleFrame,
    WorkerReportWire,
};
use slb_sketch::{FrequencyEstimator, SpaceSaving};
use slb_telemetry::{HopStats, LogHistogram, MetricsSnapshot, TraceEvent};
use slb_workloads::{Arrival, Scenario, ScenarioPhase};

/// Deterministically derives a count map from a key vector (the shim has no
/// tuple strategies; the derived counts still cover 1..2¹⁶ widely).
fn counts_from(keys: &[u64]) -> HashMap<u64, u64> {
    keys.iter().map(|&k| (k, (k >> 16 & 0xFFFF) | 1)).collect()
}

/// Derives one of the three solver modes from a seed (the shim's input cap
/// leaves no room for a dedicated strategy parameter).
fn solver_from(seed: u64) -> SolverMode {
    match seed % 3 {
        0 => SolverMode::Online,
        1 => SolverMode::Fixed(2 + (seed % 7) as usize),
        _ => SolverMode::External,
    }
}

/// Derives an optional, always-valid controller config from a seed.
fn controller_from(seed: u64, workers: usize) -> Option<ControllerConfig> {
    if seed % 2 != 0 {
        return None;
    }
    let min = 1 + (seed % 3) as usize;
    Some(ControllerConfig {
        min_workers: min,
        max_workers: min + workers + (seed % 5) as usize,
        worker_capacity: 1 + seed % 10_000,
        scale_in_occupancy: 0.25 + (seed % 8) as f64 / 16.0,
        patience: 1 + (seed % 4) as u32,
        cooldown: (seed % 4) as u32,
        step: 1 + (seed % 2) as usize,
        epsilon: 1e-4 + (seed % 9) as f64 * 1e-5,
    })
}

/// Derives a logical trace from the sample vector: every sample becomes one
/// event, exercising wide `window`/payload values and all kind bytes.
fn trace_from(samples: &[u64], raw: &[u64]) -> Vec<TraceEvent> {
    samples
        .iter()
        .enumerate()
        .map(|(i, &s)| TraceEvent {
            stage: (s % 3) as u8,
            instance: (s % 7) as u32,
            seq: i as u64,
            kind: (s % 6) as u8,
            window: raw.get(i % raw.len().max(1)).copied().unwrap_or(u64::MAX),
            a: s.wrapping_mul(31),
            b: s.rotate_left(17),
        })
        .collect()
}

/// Derives a populated histogram from the sample vector (empty when the
/// samples are empty, covering the zero-count wire path too).
fn histogram_from(samples: &[u64]) -> LogHistogram {
    let mut hist = LogHistogram::new();
    for &s in samples {
        hist.record(s.wrapping_mul(2_654_435_761).wrapping_add(1));
    }
    hist
}

/// Derives per-hop transport stats, histogram included, from raw material.
fn hop_stats_from(raw: &[u64], samples: &[u64]) -> HopStats {
    let at = |i: usize| raw.get(i).copied().unwrap_or(0);
    HopStats {
        batches_sent: at(0),
        tuples_sent: at(1),
        send_stall_us: at(2),
        batches_received: at(3),
        tuples_received: at(4),
        recv_wait_us: at(5),
        batch_occupancy: histogram_from(samples),
        queue_depth_hwm: at(6),
        ring_occupancy_hwm: at(7),
        ring_capacity: at(8),
    }
}

/// Derives a full metrics snapshot — every scalar populated, latency
/// histogram included — from raw material.
fn metrics_from(raw: &[u64], samples: &[u64]) -> MetricsSnapshot {
    let at = |i: usize| raw.get(i).copied().unwrap_or(0);
    let mut snap = MetricsSnapshot {
        stage: (at(0) % 4) as u8,
        instance: at(1) as u32,
        seq: at(2),
        finished: at(3) % 2 == 0,
        items: at(4),
        windows_closed: at(5),
        checkpoints: at(6),
        restores: at(7),
        replayed_items: at(8),
        duplicates_dropped: at(9),
        replay_requests: at(10),
        transport_errors: at(11),
        ..MetricsSnapshot::default()
    };
    snap.set_transport(&hop_stats_from(raw, samples));
    snap.set_latency(&histogram_from(samples));
    snap
}

/// Builds one of each control-frame variant from primitive raw material, so
/// every variant round-trips under the same random inputs.
fn control_frames(raw: &[u64], ports: &[u16], samples: &[u64], keys: &[u64]) -> Vec<ControlFrame> {
    let at = |i: usize| raw.get(i).copied().unwrap_or(0);
    let runs = rle_encode(samples);
    vec![
        ControlFrame::Hello {
            role: at(0) as u8,
            index: at(1) as u32,
            data_port: at(2) as u16,
        },
        ControlFrame::Start {
            epoch_unix_micros: at(3),
            worker_ports: ports.to_vec(),
            aggregator_ports: ports.iter().rev().copied().collect(),
            config: samples.iter().map(|&s| s as u8).collect(),
        },
        ControlFrame::SourceReport {
            source: at(4) as u32,
            sent: at(5),
            controller_events: raw
                .iter()
                .enumerate()
                .map(|(i, &v)| ControllerEvent {
                    source: at(4) as u32,
                    window: v,
                    action: match i % 3 {
                        0 => ControllerAction::ScaleOut,
                        1 => ControllerAction::ScaleIn,
                        _ => ControllerAction::Retune,
                    },
                    workers: (v % 64) as u32,
                    d: (v % 8) as u32,
                })
                .collect(),
            trace: trace_from(samples, raw),
            transport: hop_stats_from(raw, samples),
        },
        ControlFrame::WorkerReport(WorkerReportWire {
            worker: at(6) as u32,
            processed: at(7),
            state_keys: at(8),
            windows_closed: at(9),
            phase_counts: raw.to_vec(),
            phase_spans: raw
                .iter()
                .enumerate()
                .map(|(i, &v)| (i % 3 != 0).then_some((v, v.saturating_add(i as u64))))
                .collect(),
            phase_latencies: vec![runs.clone(), Vec::new(), rle_encode(raw)],
            restores: at(14),
            replayed_items: at(15),
            duplicates_dropped: at(16),
            replay_requests: at(17),
            checkpoints: at(18),
            transport_errors: at(19),
            trace: trace_from(samples, raw),
            transport: hop_stats_from(raw, samples),
        }),
        ControlFrame::AggregatorReport(AggregatorReportWire {
            aggregator: at(10) as u32,
            merged: at(11),
            latency: runs,
            finalized: vec![(at(12), counts_from(keys)), (at(13), HashMap::new())],
            duplicates_dropped: at(20),
            transport_errors: at(21),
            trace: trace_from(samples, raw),
            transport: hop_stats_from(raw, samples),
        }),
        ControlFrame::Heartbeat {
            worker: at(22) as u32,
        },
        ControlFrame::Metrics(metrics_from(raw, samples)),
        ControlFrame::Rejoin {
            worker: at(23) as u32,
            data_port: at(24) as u16,
            cursors: raw.to_vec(),
        },
        ControlFrame::Exclude {
            worker: at(25) as u32,
        },
        ControlFrame::Release,
    ]
}

proptest! {
    // 64 cases locally; ci.sh raises this via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    #[test]
    fn batch_frames_round_trip(
        window in any::<u64>(),
        source in any::<u32>(),
        seq in any::<u64>(),
        emitted_us in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 0..600),
    ) {
        let frame = TupleFrame::Batch { window, source, seq, emitted_us, keys: keys.clone() };
        let mut buf = Vec::new();
        encode_tuple_frame(&frame, &mut buf);
        let (back, consumed) = decode_tuple_frame(&buf).expect("own encoding decodes");
        prop_assert_eq!(back, frame);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn close_and_eof_frames_round_trip_and_concatenate(
        window in any::<u64>(),
        source in any::<u32>(),
        seq in any::<u64>(),
    ) {
        let close = TupleFrame::Close { window, source, seq };
        let mut buf = Vec::new();
        encode_tuple_frame(&close, &mut buf);
        encode_tuple_frame(&TupleFrame::Eof, &mut buf);
        let (first, consumed) = decode_tuple_frame(&buf).expect("first frame decodes");
        prop_assert_eq!(first, close);
        let (second, rest) = decode_tuple_frame(&buf[consumed..]).expect("second frame decodes");
        prop_assert_eq!(second, TupleFrame::Eof);
        prop_assert_eq!(consumed + rest, buf.len());
    }

    #[test]
    fn tuple_frame_prefixes_error_not_panic(
        window in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 0..64),
        fraction in 0.0f64..1.0,
    ) {
        let frame = TupleFrame::Batch { window, source: 2, seq: 11, emitted_us: 7, keys: keys.clone() };
        let mut buf = Vec::new();
        encode_tuple_frame(&frame, &mut buf);
        let cut = ((buf.len() - 1) as f64 * fraction) as usize;
        prop_assert!(decode_tuple_frame(&buf[..cut]).is_err(), "prefix of {} bytes decoded", cut);
    }

    #[test]
    fn tuple_frame_bad_tags_error(window in any::<u64>(), tag in 5u8..255) {
        // Tags 5.. are never valid on a tuple channel — REPLAY_REQUEST (5)
        // belongs to the feedback channel, whose decoder is separate.
        let mut buf = Vec::new();
        encode_tuple_frame(&TupleFrame::Close { window, source: 0, seq: 0 }, &mut buf);
        buf[4] = tag; // corrupt the tag byte; length prefix stays valid
        prop_assert!(decode_tuple_frame(&buf).is_err());
    }

    #[test]
    fn feedback_frames_round_trip_and_concatenate(
        worker in any::<u32>(),
        from_seq in any::<u64>(),
    ) {
        let request = FeedbackFrame::Request { worker, from_seq };
        let mut buf = Vec::new();
        encode_feedback_frame(&request, &mut buf);
        encode_feedback_frame(&FeedbackFrame::Eof, &mut buf);
        let (first, consumed) = decode_feedback_frame(&buf).expect("first frame decodes");
        prop_assert_eq!(first, request);
        let (second, rest) = decode_feedback_frame(&buf[consumed..]).expect("second frame decodes");
        prop_assert_eq!(second, FeedbackFrame::Eof);
        prop_assert_eq!(consumed + rest, buf.len());
    }

    #[test]
    fn feedback_frame_prefixes_and_bad_tags_error(
        worker in any::<u32>(),
        from_seq in any::<u64>(),
        tag in 6u8..255,
    ) {
        let mut buf = Vec::new();
        encode_feedback_frame(&FeedbackFrame::Request { worker, from_seq }, &mut buf);
        for cut in 0..buf.len() {
            prop_assert!(decode_feedback_frame(&buf[..cut]).is_err(), "cut at {}", cut);
        }
        // A feedback channel accepts only REPLAY_REQUEST (5) and EOF (4).
        buf[4] = tag;
        prop_assert!(decode_feedback_frame(&buf).is_err());
    }

    #[test]
    fn worker_checkpoints_round_trip_and_truncations_error(
        worker in any::<u64>(),
        windows_closed in any::<u64>(),
        processed in any::<u64>(),
        phase_counts in proptest::collection::vec(any::<u64>(), 0..6),
        next_seq in proptest::collection::vec(any::<u64>(), 0..6),
        keys in proptest::collection::vec(any::<u64>(), 0..64),
        open_windows in proptest::collection::vec(0u64..1_000, 0..4),
        partial_keys in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        // The encoder demands sorted state keys and open windows.
        let mut state_keys = keys.clone();
        state_keys.sort_unstable();
        state_keys.dedup();
        let mut windows = open_windows.clone();
        windows.sort_unstable();
        windows.dedup();
        let open: Vec<OpenWindowState> = windows
            .iter()
            .enumerate()
            .map(|(i, &window)| OpenWindowState {
                window,
                closes_seen: i as u64,
                partial: (i % 2 == 0).then(|| {
                    let mut blob = Vec::new();
                    counts_from(&partial_keys).encode_partial(&mut blob);
                    blob
                }),
            })
            .collect();
        let checkpoint = WorkerCheckpoint {
            worker,
            windows_closed,
            processed,
            phase_counts: phase_counts.clone(),
            next_seq: next_seq.clone(),
            state_keys,
            open,
        };
        let mut buf = Vec::new();
        checkpoint.encode(&mut buf);
        let mut input = buf.as_slice();
        let back = WorkerCheckpoint::decode(&mut input).expect("own encoding decodes");
        prop_assert!(input.is_empty(), "decode consumed exactly the encoding");
        prop_assert_eq!(back, checkpoint);
        // Totality: every strict prefix errors, never panics.
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            prop_assert!(WorkerCheckpoint::decode(&mut slice).is_err(), "cut at {}", cut);
        }
    }

    #[test]
    fn count_partial_frames_round_trip(
        window in any::<u64>(),
        closed_us in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 0..400),
    ) {
        let frame = PartialFrame::Partial { window, worker: 5, closed_us, partial: counts_from(&keys) };
        let mut buf = Vec::new();
        encode_partial_frame(&frame, &mut buf);
        let (back, consumed) = decode_partial_frame::<HashMap<u64, u64>>(&buf).expect("decodes");
        prop_assert_eq!(back, frame);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn sum_partial_frames_round_trip(
        window in any::<u64>(),
        worker in any::<u32>(),
        closed_us in any::<u64>(),
        sum in any::<u64>(),
    ) {
        let frame = PartialFrame::Partial { window, worker, closed_us, partial: sum };
        let mut buf = Vec::new();
        encode_partial_frame(&frame, &mut buf);
        let (back, consumed) = decode_partial_frame::<u64>(&buf).expect("decodes");
        prop_assert_eq!(back, frame);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn top_k_partial_frames_round_trip(
        stream in proptest::collection::vec(0u64..500, 0..2_000),
        capacity in 1usize..128,
        window in any::<u64>(),
    ) {
        let mut summary = SpaceSaving::<u64>::new(capacity);
        for key in &stream {
            summary.observe(key);
        }
        let frame = PartialFrame::Partial { window, worker: 1, closed_us: 9, partial: summary.clone() };
        let mut buf = Vec::new();
        encode_partial_frame(&frame, &mut buf);
        let (back, consumed) = decode_partial_frame::<SpaceSaving<u64>>(&buf).expect("decodes");
        prop_assert_eq!(consumed, buf.len());
        let PartialFrame::Partial { partial: decoded, window: w, .. } = back else {
            panic!("expected a partial frame back");
        };
        prop_assert_eq!(w, window);
        prop_assert_eq!(decoded.total(), summary.total());
        prop_assert_eq!(decoded.capacity(), summary.capacity());
        // Counter content is order-free among ties: compare key-sorted.
        let by_key = |s: &SpaceSaving<u64>| {
            let mut counters = s.sorted_counters();
            counters.sort_by_key(|c| c.key);
            counters
        };
        prop_assert_eq!(by_key(&decoded), by_key(&summary));
    }

    #[test]
    fn partial_frame_prefixes_error_not_panic(
        keys in proptest::collection::vec(any::<u64>(), 0..200),
        fraction in 0.0f64..1.0,
    ) {
        let frame = PartialFrame::Partial { window: 3, worker: 0, closed_us: 4, partial: counts_from(&keys) };
        let mut buf = Vec::new();
        encode_partial_frame(&frame, &mut buf);
        let cut = ((buf.len() - 1) as f64 * fraction) as usize;
        prop_assert!(decode_partial_frame::<HashMap<u64, u64>>(&buf[..cut]).is_err());
    }

    #[test]
    fn control_frames_round_trip(
        raw in proptest::collection::vec(any::<u64>(), 14..20),
        ports in proptest::collection::vec(any::<u16>(), 0..16),
        samples in proptest::collection::vec(0u64..100, 0..200),
        keys in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        for frame in control_frames(&raw, &ports, &samples, &keys) {
            let mut buf = Vec::new();
            encode_control_frame(&frame, &mut buf);
            let (back, consumed) = decode_control_frame(&buf).expect("own encoding decodes");
            prop_assert_eq!(back, frame);
            prop_assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn control_frame_prefixes_error_not_panic(
        raw in proptest::collection::vec(any::<u64>(), 14..20),
        ports in proptest::collection::vec(any::<u16>(), 0..16),
        samples in proptest::collection::vec(0u64..100, 0..200),
        keys in proptest::collection::vec(any::<u64>(), 0..100),
        fraction in 0.0f64..1.0,
    ) {
        for frame in control_frames(&raw, &ports, &samples, &keys) {
            let mut buf = Vec::new();
            encode_control_frame(&frame, &mut buf);
            let cut = ((buf.len() - 1) as f64 * fraction) as usize;
            prop_assert!(decode_control_frame(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn byte_soup_never_panics_any_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // The result may be Ok (the bytes can accidentally form a frame) —
        // the property is that no input panics.
        let _ = decode_tuple_frame(&bytes);
        let _ = decode_partial_frame::<HashMap<u64, u64>>(&bytes);
        let _ = decode_partial_frame::<u64>(&bytes);
        let _ = decode_partial_frame::<SpaceSaving<u64>>(&bytes);
        let _ = decode_feedback_frame(&bytes);
        let _ = decode_control_frame(&bytes);
        let _ = decode_run_spec(&bytes);
        let _ = WorkerCheckpoint::decode(&mut bytes.as_slice());
    }

    #[test]
    fn engine_run_specs_round_trip_bit_exactly(
        kind_idx in 0usize..6,
        sources in 1usize..6,
        workers in 1usize..9,
        keys in 1usize..5_000,
        messages in 0u64..400_000,
        skew in 0.0f64..2.5,
        window_size in 1u64..5_000,
        queue_capacity in 1usize..2_000,
        batch_size in 1usize..1_024,
        service_time_us in 0u64..10_000,
        aggregators in 1usize..5,
        seed in any::<u64>(),
    ) {
        let spec = RunSpec::Engine(EngineConfig {
            kind: PartitionerKind::ALL[kind_idx],
            sources,
            workers,
            keys,
            skew,
            messages,
            service_time_us,
            queue_capacity,
            seed,
            batch_size,
            window_size,
            aggregators,
            solver: solver_from(seed),
            controller: controller_from(seed, workers),
        });
        let bytes = encode_run_spec(&spec);
        let back = decode_run_spec(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &spec);
        // PartialEq compares floats; additionally pin the bit pattern.
        let (RunSpec::Engine(a), RunSpec::Engine(b)) = (&back, &spec) else {
            panic!("variant changed in round trip");
        };
        prop_assert_eq!(a.skew.to_bits(), b.skew.to_bits());
        // Every strict prefix errors.
        for cut in 0..bytes.len() {
            prop_assert!(decode_run_spec(&bytes[..cut]).is_err(), "cut at {}", cut);
        }
    }

    #[test]
    fn scenario_run_specs_round_trip_bit_exactly(
        kind_idx in 0usize..6,
        name in ".{0,12}",
        sources in 1usize..5,
        window_size in 1u64..512,
        seed in any::<u64>(),
        phase_windows in proptest::collection::vec(1u64..5, 1..4),
        phase_keys in proptest::collection::vec(1usize..2_000, 1..4),
        phase_skews in proptest::collection::vec(0.0f64..2.5, 1..4),
        phase_workers in proptest::collection::vec(1usize..8, 1..4),
        burst in proptest::collection::vec(0u64..500, 1..4),
        speed_len in 0usize..8,
        service_time_us in 0u64..200,
    ) {
        // Derived rather than drawn: the shim's debug tuple caps at 12 inputs.
        let aggregators = 1 + speed_len % 3;
        let n = phase_windows.len();
        let mut scenario = Scenario::new(name.clone(), sources, window_size, seed);
        for p in 0..n {
            let keys = phase_keys[p % phase_keys.len()];
            let skew = phase_skews[p % phase_skews.len()];
            let workers = phase_workers[p % phase_workers.len()];
            let mut phase = ScenarioPhase::new(phase_windows[p], keys, skew, workers);
            if speed_len > 0 && p == 0 {
                phase = phase.with_worker_speed(
                    (0..workers).map(|w| 1.0 + (w % speed_len.max(1)) as f64 * 0.5).collect(),
                );
            }
            let burst_tuples = burst[p % burst.len()];
            if burst_tuples > 0 {
                phase = phase.with_arrival(Arrival::Bursty { burst_tuples, pause_us: burst_tuples / 3 });
            }
            scenario = scenario.phase(phase);
        }
        let mut cfg = ScenarioConfig::new(PartitionerKind::ALL[kind_idx], scenario)
            .with_service_time_us(service_time_us)
            .with_aggregators(aggregators)
            .with_solver(solver_from(seed));
        if let Some(controller) = controller_from(seed, phase_workers.iter().copied().max().unwrap_or(1)) {
            cfg = cfg.with_controller(controller);
        }
        let spec = RunSpec::Scenario(cfg);
        let bytes = encode_run_spec(&spec);
        let back = decode_run_spec(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &spec);
        let (RunSpec::Scenario(a), RunSpec::Scenario(b)) = (&back, &spec) else {
            panic!("variant changed in round trip");
        };
        for (pa, pb) in a.scenario.phases.iter().zip(&b.scenario.phases) {
            prop_assert_eq!(pa.skew.to_bits(), pb.skew.to_bits());
        }
        for cut in 0..bytes.len() {
            prop_assert!(decode_run_spec(&bytes[..cut]).is_err(), "cut at {}", cut);
        }
    }

    #[test]
    fn partial_encodings_are_self_delimiting(
        keys_a in proptest::collection::vec(any::<u64>(), 0..200),
        keys_b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        // Two partials concatenated decode back as exactly two partials.
        let (a, b) = (counts_from(&keys_a), counts_from(&keys_b));
        let mut buf = Vec::new();
        a.encode_partial(&mut buf);
        b.encode_partial(&mut buf);
        let mut input = buf.as_slice();
        let first = HashMap::<u64, u64>::decode_partial(&mut input).expect("first decodes");
        let second = HashMap::<u64, u64>::decode_partial(&mut input).expect("second decodes");
        prop_assert!(input.is_empty());
        prop_assert_eq!(first, a);
        prop_assert_eq!(second, b);
    }

    #[test]
    fn rle_round_trips_sample_sequences(samples in proptest::collection::vec(0u64..50, 0..2_000)) {
        let runs = rle_encode(&samples);
        let mut back = Vec::new();
        for (value, count) in &runs {
            for _ in 0..*count {
                back.push(*value);
            }
        }
        prop_assert_eq!(back, samples);
        // Adjacent runs never share a value (canonical form).
        for pair in runs.windows(2) {
            prop_assert!(pair[0].0 != pair[1].0);
        }
    }
}
