//! Golden end-to-end tests for `slb-node`: real processes, real sockets.
//!
//! Each test writes a cluster spec, runs `slb-node orchestrate --spec ...
//! --verify`, and asserts the orchestrator (1) completes, (2) reports the
//! expected tuple totals, and (3) prints `exact-reference=MATCH` — i.e. the
//! merged windowed counts of the multi-process run are bit-identical to the
//! single-threaded exact reference. This is the acceptance check that the
//! topology survives crossing process boundaries.
//!
//! The orchestrator, the S+W+A child processes, the control plane, the data
//! plane, the report merge, and the verification all run exactly as a user
//! would invoke them (`CARGO_BIN_EXE_slb-node` is the built binary).

use std::path::PathBuf;
use std::process::Command;

fn node_exe() -> &'static str {
    env!("CARGO_BIN_EXE_slb-node")
}

/// Writes `spec` to a unique temp file and returns its path.
fn write_spec(name: &str, spec: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("slb-node-{name}-{}.spec", std::process::id()));
    std::fs::write(&path, spec).expect("write spec file");
    path
}

fn run_orchestrate(spec_path: &PathBuf) -> (String, String, bool) {
    let output = Command::new(node_exe())
        .arg("orchestrate")
        .arg("--spec")
        .arg(spec_path)
        .arg("--verify")
        .output()
        .expect("spawn slb-node orchestrate");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn engine_run_over_processes_matches_exact_reference() {
    let seed = std::env::var("SLB_TEST_SEED").unwrap_or_else(|_| "42".into());
    let spec = format!(
        "# golden: single-phase engine run across 2+3+2 processes\n\
         mode engine\n\
         scheme PKG\n\
         sources 2\n\
         workers 3\n\
         keys 500\n\
         skew 1.6\n\
         messages 12000\n\
         service_time_us 0\n\
         queue_capacity 256\n\
         seed {seed}\n\
         batch_size 64\n\
         window_size 1024\n\
         aggregators 2\n"
    );
    let path = write_spec("engine", &spec);
    let (stdout, stderr, ok) = run_orchestrate(&path);
    let _ = std::fs::remove_file(&path);
    assert!(
        ok,
        "orchestrate failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("processed=12000"),
        "expected every tuple processed\n{stdout}"
    );
    assert!(
        stdout.contains("sent=12000"),
        "expected every tuple sent\n{stdout}"
    );
    assert!(
        stdout.contains("exact-reference=MATCH"),
        "multi-process counts diverged from the reference\n{stdout}\n{stderr}"
    );
}

#[test]
fn scenario_run_over_processes_matches_exact_reference() {
    let seed = std::env::var("SLB_TEST_SEED").unwrap_or_else(|_| "7".into());
    // Drift, scale-out (3 → 4 workers), heterogeneity, and a bursty
    // scale-in phase — the full scenario machinery across processes.
    let spec = format!(
        "mode scenario\n\
         scheme D-C\n\
         name golden\n\
         sources 2\n\
         window_size 256\n\
         seed {seed}\n\
         service_time_us 0\n\
         queue_capacity 256\n\
         batch_size 64\n\
         aggregators 2\n\
         phase windows=2 keys=400 skew=1.8 workers=3\n\
         phase windows=2 keys=400 skew=1.2 workers=4 drift_epochs=2 speed=2,1,1,1\n\
         phase windows=1 keys=200 skew=0 workers=2 burst_tuples=96 pause_us=5\n"
    );
    let path = write_spec("scenario", &spec);
    let (stdout, stderr, ok) = run_orchestrate(&path);
    let _ = std::fs::remove_file(&path);
    assert!(
        ok,
        "orchestrate failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // 2 sources × 5 windows × 256 tuples.
    assert!(
        stdout.contains("processed=2560"),
        "expected every tuple processed\n{stdout}"
    );
    assert!(
        stdout.contains("phase 2:"),
        "expected per-phase metrics for all 3 phases\n{stdout}"
    );
    assert!(
        stdout.contains("exact-reference=MATCH"),
        "multi-process scenario counts diverged from the reference\n{stdout}\n{stderr}"
    );
}

#[test]
fn orchestrate_rejects_a_bad_spec() {
    let path = write_spec("bad", "mode engine\nscheme PKG\n");
    let output = Command::new(node_exe())
        .arg("orchestrate")
        .arg("--spec")
        .arg(&path)
        .output()
        .expect("spawn slb-node orchestrate");
    let _ = std::fs::remove_file(&path);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("missing field"),
        "expected a parse error, got:\n{stderr}"
    );
}

#[test]
fn node_cli_rejects_unknown_modes() {
    let output = Command::new(node_exe())
        .arg("conduct")
        .output()
        .expect("spawn slb-node");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown mode"));
}

#[test]
fn orchestrate_fails_fast_when_children_exit_without_hello() {
    // Spawning `true` as the node binary makes every child exit immediately
    // without ever connecting to the control plane; the orchestrator must
    // turn that into an error instead of blocking in accept forever.
    use slb_net::cluster::{ClusterSpec, RunSpec};
    use slb_net::node::orchestrate;
    let spec = ClusterSpec {
        run: RunSpec::Engine(
            slb_engine::EngineConfig::smoke(slb_core::PartitionerKind::Pkg, 1.4)
                .with_messages(4_000)
                .with_service_time_us(0),
        ),
    };
    let started = std::time::Instant::now();
    let err = orchestrate(&spec, std::path::Path::new("true"))
        .err()
        .expect("dead children must fail the run");
    assert!(
        err.contains("exited prematurely"),
        "unexpected error: {err}"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "fast-fail took {:?}",
        started.elapsed()
    );
}
