//! Logical-trace differential suite: the trace stream is a *logical* record
//! of the run (window closes, checkpoints, replays, rescales, controller
//! decisions keyed by `(stage, instance, seq)`), so for a fixed config and
//! seed it must be **bit-identical** across
//!
//! 1. transport backends (`InProc` ≡ `Spsc` ≡ `Tcp`),
//! 2. reruns of the same backend (no wall-clock leakage), and
//! 3. batch-size / queue-capacity knobs (framing shapes timing, never the
//!    logical event stream).
//!
//! Any event that sneaks a timestamp, thread id, or arrival-order artifact
//! into the trace fails an exact `Vec<TraceEvent>` equality here, not a
//! statistical bound. docs/OBSERVABILITY.md states the determinism
//! argument; this suite is its enforcement.
//!
//! Seeds: like the other differential suites, `SLB_TEST_SEED` (a single
//! u64) replaces the built-in pair, which is how `ci.sh` sweeps its seed
//! matrix.

use std::collections::HashMap;

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{EngineConfig, InProc, ScenarioConfig, Spsc, Topology, Transport};
use slb_net::tcp::TcpTransport;
use slb_telemetry::{trace_kind, TraceEvent};
use slb_workloads::KeyId;
use slb_workloads::{Scenario, ScenarioPhase};

/// Seeds to exercise: `SLB_TEST_SEED` alone when set, a built-in pair
/// otherwise.
fn seeds() -> Vec<u64> {
    match std::env::var("SLB_TEST_SEED") {
        Ok(value) => {
            let seed: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("SLB_TEST_SEED must be a u64, got {value:?}"));
            vec![seed]
        }
        Err(_) => vec![23, 87],
    }
}

/// Equality with a readable failure: a mismatch names the first divergent
/// event instead of dumping two whole traces.
#[track_caller]
fn assert_traces_match(got: &[TraceEvent], expected: &[TraceEvent], context: &str) {
    if got == expected {
        return;
    }
    assert_eq!(
        got.len(),
        expected.len(),
        "{context}: trace lengths diverged ({} vs {} events)",
        got.len(),
        expected.len()
    );
    for (i, (g, e)) in got.iter().zip(expected).enumerate() {
        assert_eq!(g, e, "{context}: first divergent event at index {i}");
    }
}

fn trace_config(kind: PartitionerKind, skew: f64, seed: u64) -> EngineConfig {
    EngineConfig::smoke(kind, skew)
        .with_seed(seed)
        .with_messages(12_000)
        .with_service_time_us(0)
        .with_window_size(512)
        .with_batch_size(64)
}

fn trace_of(
    cfg: &EngineConfig,
    transport: &impl Transport<HashMap<KeyId, u64>>,
) -> Vec<TraceEvent> {
    Topology::new(cfg.clone())
        .run_windowed_on(CountAggregate, transport)
        .result
        .trace
}

#[test]
fn traces_are_identical_across_backends_and_reruns() {
    for seed in seeds() {
        for (kind, skew) in [
            (PartitionerKind::Pkg, 1.8),
            (PartitionerKind::KeyGrouping, 0.0),
            (PartitionerKind::DChoices, 1.2),
        ] {
            let cfg = trace_config(kind, skew, seed);
            let label = format!("{} z={skew} seed={seed}", kind.symbol());
            let inproc = trace_of(&cfg, &InProc);
            assert!(
                !inproc.is_empty(),
                "{label}: telemetry is on by default, the trace must not be empty"
            );
            assert!(
                inproc.iter().any(|e| e.kind == trace_kind::WINDOW_CLOSE),
                "{label}: a windowed run must trace window closes"
            );
            assert_traces_match(
                &trace_of(&cfg, &Spsc),
                &inproc,
                &format!("{label}: SPSC trace diverged from InProc"),
            );
            assert_traces_match(
                &trace_of(&cfg, &TcpTransport::loopback()),
                &inproc,
                &format!("{label}: TCP trace diverged from InProc"),
            );
            assert_traces_match(
                &trace_of(&cfg, &InProc),
                &inproc,
                &format!("{label}: InProc rerun trace diverged (wall-clock leaked in)"),
            );
        }
    }
}

#[test]
fn traces_are_batch_size_and_queue_insensitive() {
    let seed = seeds()[0];
    let base = trace_config(PartitionerKind::Pkg, 1.6, seed);
    let reference = trace_of(&base, &InProc);
    for (queue_capacity, batch_size) in [(64usize, 16usize), (1_024, 256), (32, 1_000)] {
        let cfg = base
            .clone()
            .with_queue_capacity(queue_capacity)
            .with_batch_size(batch_size);
        assert_traces_match(
            &trace_of(&cfg, &Spsc),
            &reference,
            &format!("SPSC queue={queue_capacity} batch={batch_size}: trace moved with knobs"),
        );
        assert_traces_match(
            &trace_of(&cfg, &TcpTransport::loopback()),
            &reference,
            &format!("TCP queue={queue_capacity} batch={batch_size}: trace moved with knobs"),
        );
    }
}

#[test]
fn scenario_traces_cover_rescales_and_controller_events_identically() {
    for seed in seeds() {
        // Two phases with different worker counts forces RESCALE events;
        // checkpointing is on by default so CHECKPOINT_SAVE events appear.
        let scenario = Scenario::new("trace-diff", 2, 256, seed)
            .phase(ScenarioPhase::new(2, 400, 1.8, 3))
            .phase(ScenarioPhase::new(2, 400, 1.0, 5));
        let cfg = ScenarioConfig::new(PartitionerKind::Pkg, scenario).with_batch_size(64);
        let inproc = cfg.run_windowed_on(CountAggregate, &InProc).result.trace;
        let label = format!("scenario seed={seed}");
        assert!(
            inproc.iter().any(|e| e.kind == trace_kind::RESCALE),
            "{label}: a worker-count change must trace a rescale"
        );
        assert!(
            inproc.iter().any(|e| e.kind == trace_kind::CHECKPOINT_SAVE),
            "{label}: checkpointing runs must trace checkpoint saves"
        );
        let spsc = cfg.run_windowed_on(CountAggregate, &Spsc).result.trace;
        let tcp = cfg
            .run_windowed_on(CountAggregate, &TcpTransport::loopback())
            .result
            .trace;
        assert_traces_match(&spsc, &inproc, &format!("{label}: SPSC"));
        assert_traces_match(&tcp, &inproc, &format!("{label}: TCP"));
    }
}
