//! Fault-injection differential suite: exactly-once under kills and losses,
//! on every backend.
//!
//! The recovery machinery's contract is stronger than "no data loss": after
//! any scheduled worker kill or connection drop, the merged per-window
//! per-key counts must be **bit-identical** to the single-threaded exact
//! reference — exactly-once, not at-least-once. This suite executes the
//! same deterministic `FaultPlan`s over the in-process backend, the
//! thread-per-core SPSC ring backend, and TCP loopback sockets, and
//! asserts:
//!
//! * merged windows equal the exact reference (and each other) after every
//!   fault, for every grouping scheme, skew, and seed;
//! * a worker killed mid-window restores from its checkpoint (`restores`
//!   counts the scheduled kills) and replays only the open window — the
//!   aggregators never see a duplicate partial (`duplicates_dropped == 0`),
//!   which is the "closed windows are never reprocessed" guarantee;
//! * a dropped connection is healed by sequence-gap detection and bounded
//!   replay (`replay_requests > 0`, `replayed_items > 0`, no restore);
//! * the same `FaultPlan` run twice produces byte-identical windowed
//!   counts, and `FaultPlan::none()` is indistinguishable from a plain run —
//!   on TCP exactly as in process (the in-process halves of those
//!   regressions live in `slb-engine`'s unit tests).
//!
//! Fault points are derived from the seed via splitmix64, so the matrix
//! varies with `SLB_TEST_SEED` but every individual run is reproducible.
//! Recovery *counters* other than `restores` are interleaving-dependent
//! diagnostics (how much replay a gap needed depends on timing); the suite
//! asserts signs and exact state, never exact replay volumes.

use std::collections::{BTreeMap, HashMap};

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{
    diff_windows, exact_scenario_windowed_counts, exact_windowed_counts, EngineConfig, FaultEvent,
    FaultPlan, InProc, ScenarioConfig, Spsc, Topology, WindowId,
};
use slb_net::tcp::TcpTransport;
use slb_workloads::{Arrival, KeyId, Scenario, ScenarioPhase};

/// Equality with a readable failure: a mismatch panics with the first
/// divergent window and key instead of dumping two whole maps.
#[track_caller]
fn assert_windows_match(
    got: &BTreeMap<WindowId, HashMap<KeyId, u64>>,
    expected: &BTreeMap<WindowId, HashMap<KeyId, u64>>,
    context: &str,
) {
    if let Some(first_divergence) = diff_windows(got, expected) {
        panic!("{context}: {first_divergence}");
    }
}

/// Seeds to exercise: `SLB_TEST_SEED` alone when set (how `ci.sh` sweeps
/// its {1, 42, 1337} matrix), a built-in pair otherwise.
fn seeds() -> Vec<u64> {
    match std::env::var("SLB_TEST_SEED") {
        Ok(value) => {
            let seed: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("SLB_TEST_SEED must be a u64, got {value:?}"));
            vec![seed]
        }
        Err(_) => vec![19, 71],
    }
}

/// splitmix64: derives independent, reproducible fault parameters from the
/// run seed without any external RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Small-but-threaded, like the cross-backend suite: zero service time,
/// several windows per worker, many frames per socket.
fn fault_config(kind: PartitionerKind, skew: f64, seed: u64) -> EngineConfig {
    EngineConfig::smoke(kind, skew)
        .with_seed(seed)
        .with_messages(16_000)
        .with_service_time_us(0)
        .with_window_size(512)
        .with_batch_size(64)
}

/// A seed-derived plan mixing one mid-run kill with one connection drop.
/// Routing is deterministic, so a clean run's per-worker counts tell us
/// exactly how many tuples each worker will process; the kill targets a
/// seed-picked worker among those with enough traffic and fires between
/// 25% and 50% of that worker's total — always inside the run, with work
/// left after the restore, even for schemes (KG at high skew) that leave
/// some workers nearly idle.
fn derived_faults(cfg: &EngineConfig, seed: u64) -> FaultPlan {
    let counts = Topology::new(cfg.clone()).run().worker_counts;
    let busiest = *counts.iter().max().expect("at least one worker");
    let candidates: Vec<usize> = (0..counts.len())
        .filter(|&w| counts[w] >= busiest / 2)
        .collect();
    let mut state = seed ^ 0xfa_417_1a7; // decorrelate from the stream seed
    let kill_worker = candidates[(splitmix64(&mut state) % candidates.len() as u64) as usize];
    let quarter = (counts[kill_worker] / 4).max(1);
    let kill_after = quarter + splitmix64(&mut state) % quarter;
    let drop_source = (splitmix64(&mut state) % cfg.sources as u64) as usize;
    let drop_worker = (splitmix64(&mut state) % cfg.workers as u64) as usize;
    let drop_after = 1 + splitmix64(&mut state) % 6;
    let lose = 1 + splitmix64(&mut state) % 3;
    FaultPlan::none()
        .kill_worker(kill_worker, kill_after)
        .drop_connection(drop_source, drop_worker, drop_after, lose)
}

fn assert_faulted_run_is_exact(cfg: &EngineConfig, faults: &FaultPlan) {
    let reference = exact_windowed_counts(cfg);
    let inproc =
        Topology::new(cfg.clone()).run_windowed_faulted_on(CountAggregate, &InProc, faults);
    let spsc = Topology::new(cfg.clone()).run_windowed_faulted_on(CountAggregate, &Spsc, faults);
    let tcp = Topology::new(cfg.clone()).run_windowed_faulted_on(
        CountAggregate,
        &TcpTransport::loopback(),
        faults,
    );
    let label = format!("{} z={} seed={}", cfg.kind.symbol(), cfg.skew, cfg.seed);
    for (name, run) in [("InProc", &inproc), ("SPSC", &spsc), ("TCP", &tcp)] {
        assert_windows_match(
            &run.windows,
            &reference,
            &format!("{label} [{name}]: faulted windows diverged from the exact reference"),
        );
        let scheduled_kills = faults
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::KillWorker { .. }))
            .count() as u64;
        let recovery = &run.result.worker_stage.recovery;
        assert_eq!(
            recovery.restores, scheduled_kills,
            "{label} [{name}]: every scheduled kill must restore from checkpoint"
        );
        // Exactly-once at the merge: recovery never re-finalizes a closed
        // window, so no aggregator ever drops a duplicate partial.
        assert_eq!(
            run.result.aggregator_stage.recovery.duplicates_dropped, 0,
            "{label} [{name}]: a closed window was reprocessed after recovery"
        );
    }
    // Routing is decided at the sources and replay re-runs the identical
    // routing, so faults must not move per-worker counts — on any backend,
    // relative to the others.
    for run in [&spsc, &tcp] {
        assert_eq!(
            run.result.worker_counts, inproc.result.worker_counts,
            "{label}: per-worker counts diverged across backends under faults"
        );
        assert_eq!(run.result.processed, inproc.result.processed);
    }
}

/// One test per scheme so failures name the scheme and the matrix runs in
/// parallel under the default test harness.
macro_rules! scheme_fault_matrix {
    ($name:ident, $kind:expr) => {
        #[test]
        fn $name() {
            for seed in seeds() {
                for skew in [0.0, 1.8] {
                    let cfg = fault_config($kind, skew, seed);
                    let faults = derived_faults(&cfg, seed);
                    assert_faulted_run_is_exact(&cfg, &faults);
                }
            }
        }
    };
}

scheme_fault_matrix!(faults_are_exactly_once_kg, PartitionerKind::KeyGrouping);
scheme_fault_matrix!(faults_are_exactly_once_sg, PartitionerKind::ShuffleGrouping);
scheme_fault_matrix!(faults_are_exactly_once_pkg, PartitionerKind::Pkg);
scheme_fault_matrix!(faults_are_exactly_once_dc, PartitionerKind::DChoices);
scheme_fault_matrix!(faults_are_exactly_once_wc, PartitionerKind::WChoices);
scheme_fault_matrix!(faults_are_exactly_once_rr, PartitionerKind::RoundRobin);

/// The ISSUE's acceptance criterion, verbatim: a worker killed mid-window
/// recovers via checkpoint + bounded replay without reprocessing closed
/// windows, on both backends. Kill point 700 is mid-window-1 of 512-tuple
/// windows, so the restored worker has a checkpointed closed window behind
/// it and an open window to replay.
#[test]
fn worker_killed_mid_window_recovers_on_both_backends() {
    for seed in seeds() {
        let cfg = fault_config(PartitionerKind::Pkg, 1.4, seed);
        let reference = exact_windowed_counts(&cfg);
        let faults = FaultPlan::none().kill_worker(0, 700).kill_worker(2, 1_900);
        for (name, run) in [
            (
                "InProc",
                Topology::new(cfg.clone()).run_windowed_faulted_on(
                    CountAggregate,
                    &InProc,
                    &faults,
                ),
            ),
            (
                "SPSC",
                Topology::new(cfg.clone()).run_windowed_faulted_on(CountAggregate, &Spsc, &faults),
            ),
            (
                "TCP",
                Topology::new(cfg.clone()).run_windowed_faulted_on(
                    CountAggregate,
                    &TcpTransport::loopback(),
                    &faults,
                ),
            ),
        ] {
            assert_windows_match(
                &run.windows,
                &reference,
                &format!("seed={seed} [{name}]: kills changed the merged windows"),
            );
            let recovery = &run.result.worker_stage.recovery;
            assert_eq!(recovery.restores, 2, "[{name}] both kills must fire");
            assert!(
                recovery.replay_requests > 0,
                "[{name}] recovery must request replay from the sources"
            );
            assert_eq!(
                run.result.aggregator_stage.recovery.duplicates_dropped, 0,
                "[{name}] a closed window was re-finalized after restore"
            );
            // The replayed open-window tuples add latency samples on top of
            // the processed count; without faults these are equal.
            assert!(run.result.latency.samples >= run.result.processed);
        }
    }
}

/// Connection drops are healed by gap detection + bounded replay: no
/// restore happens, yet the merged windows stay exact.
#[test]
fn connection_drops_recover_on_both_backends() {
    for seed in seeds() {
        let cfg = fault_config(PartitionerKind::ShuffleGrouping, 1.2, seed);
        let reference = exact_windowed_counts(&cfg);
        let faults = FaultPlan::none()
            .drop_connection(0, 1, 3, 2)
            .drop_connection(1, 3, 5, 1);
        for (name, run) in [
            (
                "InProc",
                Topology::new(cfg.clone()).run_windowed_faulted_on(
                    CountAggregate,
                    &InProc,
                    &faults,
                ),
            ),
            (
                "SPSC",
                Topology::new(cfg.clone()).run_windowed_faulted_on(CountAggregate, &Spsc, &faults),
            ),
            (
                "TCP",
                Topology::new(cfg.clone()).run_windowed_faulted_on(
                    CountAggregate,
                    &TcpTransport::loopback(),
                    &faults,
                ),
            ),
        ] {
            assert_windows_match(
                &run.windows,
                &reference,
                &format!("seed={seed} [{name}]: losses changed the merged windows"),
            );
            let recovery = &run.result.worker_stage.recovery;
            assert!(
                recovery.replay_requests > 0,
                "[{name}] gap must request replay"
            );
            assert!(
                recovery.replayed_items > 0,
                "[{name}] replay must redeliver"
            );
            assert_eq!(recovery.restores, 0, "[{name}] no worker was killed");
        }
    }
}

/// Determinism regression, TCP half: the same `FaultPlan` under the same
/// seed produces byte-identical windowed counts across runs.
#[test]
fn same_fault_plan_twice_is_byte_identical_on_tcp() {
    let seed = seeds()[0];
    let cfg = fault_config(PartitionerKind::DChoices, 1.6, seed);
    let faults = derived_faults(&cfg, seed);
    let a = Topology::new(cfg.clone()).run_windowed_faulted_on(
        CountAggregate,
        &TcpTransport::loopback(),
        &faults,
    );
    let b = Topology::new(cfg).run_windowed_faulted_on(
        CountAggregate,
        &TcpTransport::loopback(),
        &faults,
    );
    assert_windows_match(
        &a.windows,
        &b.windows,
        "same plan, same seed, different counts",
    );
    assert_eq!(a.result.worker_counts, b.result.worker_counts);
    assert_eq!(a.result.worker_state_keys, b.result.worker_state_keys);
}

/// Determinism regression, TCP half: an empty `FaultPlan` is
/// indistinguishable from a plain run — the checkpoint/sequence machinery
/// is always on and never changes results.
#[test]
fn no_fault_plan_matches_plain_run_on_tcp() {
    let seed = seeds()[0];
    let cfg = fault_config(PartitionerKind::WChoices, 1.8, seed);
    let plain =
        Topology::new(cfg.clone()).run_windowed_on(CountAggregate, &TcpTransport::loopback());
    let faulted = Topology::new(cfg).run_windowed_faulted_on(
        CountAggregate,
        &TcpTransport::loopback(),
        &FaultPlan::none(),
    );
    assert_windows_match(
        &faulted.windows,
        &plain.windows,
        "empty plan changed counts",
    );
    assert_eq!(plain.result.worker_counts, faulted.result.worker_counts);
    assert!(faulted.result.worker_stage.recovery.is_quiet());
    assert_eq!(
        faulted.result.aggregator_stage.recovery.duplicates_dropped,
        0
    );
}

/// Scenario runs — drift, scale-out, heterogeneity, bursts — survive kills
/// and drops with windows bit-identical to the scenario reference.
#[test]
fn scenario_faults_are_exactly_once_on_both_backends() {
    for seed in seeds() {
        let scenario = Scenario::new("fault-diff", 2, 256, seed)
            .phase(ScenarioPhase::new(2, 400, 1.8, 3))
            .phase(
                ScenarioPhase::new(2, 400, 1.2, 5)
                    .with_drift_epochs(2)
                    .with_worker_speed(vec![2.0, 1.0, 1.0, 1.0, 1.0]),
            )
            .phase(
                ScenarioPhase::new(1, 200, 0.0, 2).with_arrival(Arrival::Bursty {
                    burst_tuples: 96,
                    pause_us: 5,
                }),
            );
        let reference = exact_scenario_windowed_counts(&scenario);
        // Worker 0 is active in every phase; 150 tuples is mid-phase-1.
        let faults = FaultPlan::none()
            .kill_worker(0, 150)
            .drop_connection(1, 1, 2, 1);
        for kind in [PartitionerKind::Pkg, PartitionerKind::WChoices] {
            let cfg = ScenarioConfig::new(kind, scenario.clone()).with_batch_size(64);
            let inproc = cfg.run_windowed_faulted_on(CountAggregate, &InProc, &faults);
            let spsc = cfg.run_windowed_faulted_on(CountAggregate, &Spsc, &faults);
            let tcp =
                cfg.run_windowed_faulted_on(CountAggregate, &TcpTransport::loopback(), &faults);
            let label = format!("{} seed={seed}", kind.symbol());
            for (name, run) in [("InProc", &inproc), ("SPSC", &spsc), ("TCP", &tcp)] {
                assert_windows_match(
                    &run.windows,
                    &reference,
                    &format!("{label} [{name}]: scenario faults changed the windows"),
                );
                assert_eq!(run.result.worker_stage.recovery.restores, 1, "[{name}]");
                assert_eq!(run.result.aggregator_stage.recovery.duplicates_dropped, 0);
            }
            for run in [&spsc, &tcp] {
                assert_eq!(
                    run.result.worker_counts, inproc.result.worker_counts,
                    "{label}: scenario per-worker counts diverged under faults"
                );
            }
        }
    }
}
