//! Cross-backend differential suite: `Spsc` ≡ `Tcp` ≡ `InProc` ≡ exact
//! reference.
//!
//! The transport abstraction's contract is that routing, windowing, and
//! aggregation are transport-blind. This suite turns that into an equality
//! check: for every grouping scheme and seed, the same
//! `EngineConfig`/`ScenarioConfig` runs once over the in-process crossbeam
//! backend, once over the thread-per-core SPSC ring backend, and once over
//! TCP loopback sockets, and the merged per-window per-key counts must be
//! **bit-identical** — to each other and to the single-threaded exact
//! reference. Any framing bug, lost frame, reordered punctuation,
//! mis-recycled batch buffer, or mis-decoded partial fails an exact
//! equality, not a statistical bound.
//!
//! Seeds: the suite runs a built-in seed pair by default; setting
//! `SLB_TEST_SEED` (a single u64) replaces the pair with that seed, which is
//! how `ci.sh` sweeps its seed matrix without re-paying for the defaults.

use std::collections::{BTreeMap, HashMap};

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{
    diff_windows, exact_scenario_windowed_counts, exact_windowed_counts, EngineConfig, InProc,
    ScenarioConfig, Spsc, Topology, WindowId,
};
use slb_net::tcp::TcpTransport;
use slb_workloads::{Arrival, KeyId, Scenario, ScenarioPhase};

/// Equality with a readable failure: instead of dumping two whole maps,
/// a mismatch panics with the first divergent window and key.
#[track_caller]
fn assert_windows_match(
    got: &BTreeMap<WindowId, HashMap<KeyId, u64>>,
    expected: &BTreeMap<WindowId, HashMap<KeyId, u64>>,
    context: &str,
) {
    if let Some(first_divergence) = diff_windows(got, expected) {
        panic!("{context}: {first_divergence}");
    }
}

/// Seeds to exercise: `SLB_TEST_SEED` alone when set, the built-in pair
/// otherwise (deliberately disjoint from ci.sh's {1, 42, 1337} matrix).
fn seeds() -> Vec<u64> {
    match std::env::var("SLB_TEST_SEED") {
        Ok(value) => {
            let seed: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("SLB_TEST_SEED must be a u64, got {value:?}"));
            vec![seed]
        }
        Err(_) => vec![19, 71],
    }
}

/// Small-but-threaded: several sources and workers, zero service time, a
/// window size yielding several windows including a partial one, and a
/// batch size small enough that many frames cross each socket.
fn differential_config(kind: PartitionerKind, skew: f64, seed: u64) -> EngineConfig {
    EngineConfig::smoke(kind, skew)
        .with_seed(seed)
        .with_messages(16_000)
        .with_service_time_us(0)
        .with_window_size(512)
        .with_batch_size(64)
}

fn assert_backends_agree(cfg: &EngineConfig) {
    let reference = exact_windowed_counts(cfg);
    let inproc = Topology::new(cfg.clone()).run_windowed_on(CountAggregate, &InProc);
    let spsc = Topology::new(cfg.clone()).run_windowed_on(CountAggregate, &Spsc);
    let tcp = Topology::new(cfg.clone()).run_windowed_on(CountAggregate, &TcpTransport::loopback());
    let label = format!("{} z={} seed={}", cfg.kind.symbol(), cfg.skew, cfg.seed);
    for (windows, backend) in [(&spsc.windows, "SPSC"), (&tcp.windows, "TCP")] {
        assert_windows_match(
            windows,
            &inproc.windows,
            &format!("{label}: {backend} merged windows diverged from InProc"),
        );
        assert_windows_match(
            windows,
            &reference,
            &format!("{label}: {backend} merged windows diverged from the exact reference"),
        );
    }
    // The transport also must not change *routing*: per-worker counts and
    // state footprints are decided at the sources, before any transport.
    for (result, backend) in [(&spsc.result, "SPSC"), (&tcp.result, "TCP")] {
        assert_eq!(
            result.worker_counts, inproc.result.worker_counts,
            "{label}: {backend} per-worker counts diverged across backends"
        );
        assert_eq!(
            result.worker_state_keys, inproc.result.worker_state_keys,
            "{label}: {backend} per-worker state diverged across backends"
        );
        assert_eq!(result.processed, inproc.result.processed);
        assert_eq!(result.latency.samples, result.processed);
    }
}

/// One test per scheme so failures name the scheme and the matrix runs in
/// parallel under the default test harness.
macro_rules! scheme_differential {
    ($name:ident, $kind:expr) => {
        #[test]
        fn $name() {
            for seed in seeds() {
                for skew in [0.0, 1.8] {
                    assert_backends_agree(&differential_config($kind, skew, seed));
                }
            }
        }
    };
}

scheme_differential!(tcp_matches_inproc_kg, PartitionerKind::KeyGrouping);
scheme_differential!(tcp_matches_inproc_sg, PartitionerKind::ShuffleGrouping);
scheme_differential!(tcp_matches_inproc_pkg, PartitionerKind::Pkg);
scheme_differential!(tcp_matches_inproc_dc, PartitionerKind::DChoices);
scheme_differential!(tcp_matches_inproc_wc, PartitionerKind::WChoices);
scheme_differential!(tcp_matches_inproc_rr, PartitionerKind::RoundRobin);

/// A compact scenario exercising the distributed-relevant machinery: drift,
/// scale-out, heterogeneity, and sub-batch bursts.
fn differential_scenario(seed: u64) -> Scenario {
    Scenario::new("net-diff", 2, 256, seed)
        .phase(ScenarioPhase::new(2, 400, 1.8, 3))
        .phase(
            ScenarioPhase::new(2, 400, 1.2, 5)
                .with_drift_epochs(2)
                .with_worker_speed(vec![2.0, 1.0, 1.0, 1.0, 1.0]),
        )
        .phase(
            ScenarioPhase::new(1, 200, 0.0, 2).with_arrival(Arrival::Bursty {
                burst_tuples: 96,
                pause_us: 5,
            }),
        )
}

#[test]
fn tcp_matches_inproc_and_reference_on_scenarios() {
    for seed in seeds() {
        let scenario = differential_scenario(seed);
        let reference = exact_scenario_windowed_counts(&scenario);
        for kind in PartitionerKind::ALL {
            let cfg = ScenarioConfig::new(kind, scenario.clone()).with_batch_size(64);
            let inproc = cfg.run_windowed_on(CountAggregate, &InProc);
            let spsc = cfg.run_windowed_on(CountAggregate, &Spsc);
            let tcp = cfg.run_windowed_on(CountAggregate, &TcpTransport::loopback());
            let label = format!("{} seed={seed}", kind.symbol());
            for (run, backend) in [(&spsc, "SPSC"), (&tcp, "TCP")] {
                assert_windows_match(
                    &run.windows,
                    &inproc.windows,
                    &format!("{label}: {backend} scenario windows diverged across backends"),
                );
                assert_windows_match(
                    &run.windows,
                    &reference,
                    &format!(
                        "{label}: {backend} scenario windows diverged from the exact reference"
                    ),
                );
                assert_eq!(
                    run.result.worker_counts, inproc.result.worker_counts,
                    "{label}: {backend} scenario per-worker counts diverged"
                );
                for (a, b) in run.result.phases.iter().zip(&inproc.result.phases) {
                    assert_eq!(
                        a.worker_counts, b.worker_counts,
                        "{label}: {backend} phase counts"
                    );
                }
            }
        }
    }
}

#[test]
fn tcp_and_spsc_are_knob_insensitive_like_inproc() {
    // Queue capacity and batch size shape timing (and, on SPSC, ring
    // sizing), never counts — on every backend exactly as in process.
    let seed = seeds()[0];
    let base = differential_config(PartitionerKind::Pkg, 1.6, seed);
    let reference = exact_windowed_counts(&base);
    for (queue_capacity, batch_size) in [(64usize, 16usize), (1_024, 256), (32, 1_000)] {
        let cfg = base
            .clone()
            .with_queue_capacity(queue_capacity)
            .with_batch_size(batch_size);
        let spsc = Topology::new(cfg.clone()).run_windowed_on(CountAggregate, &Spsc);
        let tcp = Topology::new(cfg).run_windowed_on(CountAggregate, &TcpTransport::loopback());
        for (run, backend) in [(&spsc, "SPSC"), (&tcp, "TCP")] {
            assert_windows_match(
                &run.windows,
                &reference,
                &format!(
                    "{backend} queue={queue_capacity} batch={batch_size}: \
                     counts moved with transport knobs"
                ),
            );
        }
    }
}

#[test]
fn tcp_and_spsc_support_multiple_aggregator_shards() {
    let seed = seeds()[0];
    let base = differential_config(PartitionerKind::DChoices, 2.0, seed);
    let reference = exact_windowed_counts(&base);
    for aggregators in [1usize, 3] {
        let cfg = base.clone().with_aggregators(aggregators);
        let spsc = Topology::new(cfg.clone()).run_windowed_on(CountAggregate, &Spsc);
        let tcp = Topology::new(cfg).run_windowed_on(CountAggregate, &TcpTransport::loopback());
        for (run, backend) in [(&spsc, "SPSC"), (&tcp, "TCP")] {
            assert_windows_match(
                &run.windows,
                &reference,
                &format!("{backend} aggregators={aggregators}"),
            );
        }
    }
}
