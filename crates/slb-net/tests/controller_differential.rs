//! Closed-loop elasticity differential suite: the controller adapts, the
//! counts stay exact, and the decisions are deterministic everywhere.
//!
//! The elasticity controller re-solves `d` online and activates/deactivates
//! workers at window boundaries. Its contract has three parts, each pinned
//! here as an exact equality rather than a statistical bound:
//!
//! * **(a) Exactness under adaptation** — for every grouping scheme and
//!   seed, a controlled run's merged per-window per-key counts are
//!   bit-identical to the single-threaded exact reference on the in-process
//!   backend, the thread-per-core SPSC backend, and TCP loopback. Scaling
//!   and retuning move *routing*, never window contents.
//! * **(b) The controller earns its keep** — on the drift-heavy scenario,
//!   a pure-`d`-adaptation controller (min = max = workers) ends the run
//!   with imbalance no worse than every static-`d` configuration it is
//!   measured against.
//! * **(c) Decision determinism** — the merged decision log is identical
//!   across reruns, batch sizes, and backends, and equals the analytic
//!   replay (`slb_simulator::simulate_scenario_controlled`) event for
//!   event. The controller consumes only per-window per-slot counts and
//!   its own partitioner's head snapshot — pure functions of the source
//!   stream — so nothing about transport or timing can move a decision.
//!
//! The fault-interaction half injects worker kills and connection drops
//! into controlled runs — including a kill aimed at the same window as the
//! first scale decision — and asserts exactly-once still holds *and* the
//! decision log is byte-identical to the fault-free run.
//!
//! Seeds: the suite runs a built-in seed pair by default; setting
//! `SLB_TEST_SEED` (a single u64) replaces the pair with that seed, which
//! is how `ci.sh` sweeps its {1, 42, 1337} matrix.

use std::collections::{BTreeMap, HashMap};

use slb_core::{ControllerConfig, CountAggregate, PartitionerKind};
use slb_engine::{
    diff_windows, exact_scenario_windowed_counts, FaultPlan, InProc, ScenarioConfig, Spsc, WindowId,
};
use slb_net::tcp::TcpTransport;
use slb_simulator::simulate_scenario_controlled;
use slb_workloads::{KeyId, Scenario};

/// Equality with a readable failure: a mismatch panics with the first
/// divergent window and key instead of dumping two whole maps.
#[track_caller]
fn assert_windows_match(
    got: &BTreeMap<WindowId, HashMap<KeyId, u64>>,
    expected: &BTreeMap<WindowId, HashMap<KeyId, u64>>,
    context: &str,
) {
    if let Some(first_divergence) = diff_windows(got, expected) {
        panic!("{context}: {first_divergence}");
    }
}

/// Seeds to exercise: `SLB_TEST_SEED` alone when set (how `ci.sh` sweeps
/// its {1, 42, 1337} matrix), a built-in pair otherwise.
fn seeds() -> Vec<u64> {
    match std::env::var("SLB_TEST_SEED") {
        Ok(value) => {
            let seed: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("SLB_TEST_SEED must be a u64, got {value:?}"));
            vec![seed]
        }
        Err(_) => vec![19, 71],
    }
}

/// The drift-heavy workload the controller is built for: constant
/// configured workers, high skew, repeated head churn.
fn drift_scenario(seed: u64) -> Scenario {
    Scenario::drift(2, 256, 4, seed)
}

/// A controller that has to use both levers: capacity 60 is below even the
/// perfectly balanced per-worker share of a 256-tuple window on 4 workers
/// (64), so activation fires regardless of how well a retune spreads the
/// head, and settles once the active set is wide enough (256 / 5 ≈ 51).
fn elastic_controller() -> ControllerConfig {
    ControllerConfig::new(2, 8, 60)
}

fn controlled_config(kind: PartitionerKind, seed: u64) -> ScenarioConfig {
    ScenarioConfig::new(kind, drift_scenario(seed))
        .with_batch_size(64)
        .with_controller(elastic_controller())
}

/// Criteria (a) and (c) for one scheme and seed: exactness under adaptation
/// on all three backends, and one decision log shared by every backend and
/// the analytic replay.
fn assert_controlled_run_is_exact_everywhere(kind: PartitionerKind, seed: u64) {
    let scenario = drift_scenario(seed);
    let reference = exact_scenario_windowed_counts(&scenario);
    let cfg = controlled_config(kind, seed);
    let inproc = cfg.run_windowed_on(CountAggregate, &InProc);
    let spsc = cfg.run_windowed_on(CountAggregate, &Spsc);
    let tcp = cfg.run_windowed_on(CountAggregate, &TcpTransport::loopback());
    let label = format!("{} seed={seed}", kind.symbol());
    assert!(
        inproc.result.controller.enabled,
        "{label}: controller metrics missing from a controlled run"
    );
    for (name, run) in [("InProc", &inproc), ("SPSC", &spsc), ("TCP", &tcp)] {
        // (a) Adaptation never changes window contents.
        assert_windows_match(
            &run.windows,
            &reference,
            &format!("{label} [{name}]: controlled windows diverged from the exact reference"),
        );
    }
    for (name, run) in [("SPSC", &spsc), ("TCP", &tcp)] {
        // (c) One decision log, whatever carries the tuples.
        assert_eq!(
            run.result.controller, inproc.result.controller,
            "{label}: {name} controller decisions diverged from InProc"
        );
        assert_eq!(
            run.result.worker_counts, inproc.result.worker_counts,
            "{label}: {name} per-worker counts diverged under control"
        );
        assert_eq!(run.result.processed, inproc.result.processed);
    }
    // (c) The engine's decisions equal the analytic replay's, event for
    // event, and so does the routing they caused.
    let sim = simulate_scenario_controlled(kind, &scenario, &elastic_controller());
    assert_eq!(
        inproc.result.controller, sim.controller,
        "{label}: engine decision log diverged from the analytic replay"
    );
    assert_eq!(
        inproc.result.worker_counts, sim.worker_counts,
        "{label}: engine per-worker counts diverged from the analytic replay"
    );
    assert_eq!(inproc.result.processed, sim.tuples);
}

/// One test per scheme so failures name the scheme and the matrix runs in
/// parallel under the default test harness.
macro_rules! scheme_controller_differential {
    ($name:ident, $kind:expr) => {
        #[test]
        fn $name() {
            for seed in seeds() {
                assert_controlled_run_is_exact_everywhere($kind, seed);
            }
        }
    };
}

scheme_controller_differential!(controlled_exact_kg, PartitionerKind::KeyGrouping);
scheme_controller_differential!(controlled_exact_sg, PartitionerKind::ShuffleGrouping);
scheme_controller_differential!(controlled_exact_pkg, PartitionerKind::Pkg);
scheme_controller_differential!(controlled_exact_dc, PartitionerKind::DChoices);
scheme_controller_differential!(controlled_exact_wc, PartitionerKind::WChoices);
scheme_controller_differential!(controlled_exact_rr, PartitionerKind::RoundRobin);

/// Criterion (b): on the drift scenario, a pure-`d`-adaptation controller
/// (worker count pinned to the scenario's, so the comparison is
/// apples-to-apples) ends the run at least as balanced as every static-`d`
/// baseline.
#[test]
fn controller_beats_or_matches_every_static_d_on_drift() {
    for seed in seeds() {
        let scenario = drift_scenario(seed);
        let workers = scenario.max_workers();
        // min = max pins the worker count: only the retune lever remains.
        let controller = ControllerConfig::new(workers, workers, u64::MAX);
        let controlled = ScenarioConfig::new(PartitionerKind::DChoices, scenario.clone())
            .with_batch_size(64)
            .with_controller(controller)
            .run_windowed_on(CountAggregate, &InProc);
        assert!(
            !controlled.result.controller.events.is_empty(),
            "seed={seed}: drift never moved the solver optimum — the \
             scenario is not exercising the controller"
        );
        for d in [2usize, 3, 4] {
            let fixed = ScenarioConfig::new(PartitionerKind::DChoices, scenario.clone())
                .with_batch_size(64)
                .with_fixed_d(d)
                .run_windowed_on(CountAggregate, &InProc);
            assert!(
                controlled.result.imbalance <= fixed.result.imbalance + 1e-9,
                "seed={seed}: controller imbalance {} worse than static d={d} at {}",
                controlled.result.imbalance,
                fixed.result.imbalance
            );
        }
    }
}

/// Criterion (c), knob half: batch size shapes framing and timing, never a
/// decision; and the same config twice produces the same log.
#[test]
fn controller_decisions_are_batch_size_and_rerun_invariant() {
    let seed = seeds()[0];
    let base = controlled_config(PartitionerKind::DChoices, seed);
    let first = base.run_windowed_on(CountAggregate, &InProc);
    assert!(!first.result.controller.events.is_empty());
    let rerun = base.run_windowed_on(CountAggregate, &InProc);
    assert_eq!(
        rerun.result.controller, first.result.controller,
        "same config, same seed, different decisions"
    );
    for batch_size in [16usize, 256, 1_000] {
        let run = base
            .clone()
            .with_batch_size(batch_size)
            .run_windowed_on(CountAggregate, &InProc);
        assert_eq!(
            run.result.controller, first.result.controller,
            "batch_size={batch_size} moved a controller decision"
        );
        assert_eq!(run.result.worker_counts, first.result.worker_counts);
    }
}

/// The controller must actually use both of its levers on this workload:
/// worker activation beyond the scenario's constant count, and at least one
/// online retune of `d`.
#[test]
fn controller_exercises_both_levers_on_drift() {
    use slb_core::ControllerAction;
    let seed = seeds()[0];
    let run =
        controlled_config(PartitionerKind::DChoices, seed).run_windowed_on(CountAggregate, &InProc);
    let events = &run.result.controller.events;
    assert!(
        events
            .iter()
            .any(|e| e.action == ControllerAction::ScaleOut),
        "no scale-out in {events:?}"
    );
    assert!(
        events.iter().any(|e| e.action == ControllerAction::Retune),
        "no retune in {events:?}"
    );
    let workers = drift_scenario(seed).max_workers();
    assert!(
        run.result.worker_counts[workers..].iter().any(|&c| c > 0),
        "activated workers beyond the scenario's {workers} received no load"
    );
}

/// Fault interaction: kills and drops during a controlled run. Exactly-once
/// must hold (windows equal the exact reference, no duplicate partials) and
/// — because recovery replays the source's own deterministic decision
/// sequence — the decision log must be byte-identical to the fault-free
/// run's. The first kill is aimed at the window of the first scale
/// decision, the regime where rescale and restore interleave.
#[test]
fn faults_during_controlled_runs_stay_exactly_once() {
    for seed in seeds() {
        let scenario = drift_scenario(seed);
        let reference = exact_scenario_windowed_counts(&scenario);
        let cfg = controlled_config(PartitionerKind::DChoices, seed);
        let clean = cfg.run_windowed_on(CountAggregate, &InProc);
        let events = &clean.result.controller.events;
        assert!(!events.is_empty(), "seed={seed}: nothing to interact with");
        // Aim the kill inside the window of the first decision: worker 0 is
        // active from window 0, and its per-window share is roughly its
        // total divided by the run's windows.
        let first_decision_window = events[0].window;
        let per_window = clean.result.worker_counts[0] / scenario.total_windows();
        let kill_after =
            (per_window * first_decision_window.saturating_sub(1) + per_window / 2).max(1);
        let faults = FaultPlan::none()
            .kill_worker(0, kill_after)
            .drop_connection(1, 1, 3, 2);
        for (name, run) in [
            (
                "InProc",
                cfg.run_windowed_faulted_on(CountAggregate, &InProc, &faults),
            ),
            (
                "SPSC",
                cfg.run_windowed_faulted_on(CountAggregate, &Spsc, &faults),
            ),
            (
                "TCP",
                cfg.run_windowed_faulted_on(CountAggregate, &TcpTransport::loopback(), &faults),
            ),
        ] {
            assert_windows_match(
                &run.windows,
                &reference,
                &format!("seed={seed} [{name}]: faults under control changed the windows"),
            );
            assert_eq!(
                run.result.worker_stage.recovery.restores, 1,
                "seed={seed} [{name}]: the scheduled kill must restore"
            );
            assert_eq!(
                run.result.aggregator_stage.recovery.duplicates_dropped, 0,
                "seed={seed} [{name}]: a closed window was reprocessed"
            );
            assert_eq!(
                run.result.controller, clean.result.controller,
                "seed={seed} [{name}]: recovery changed a controller decision"
            );
            assert_eq!(
                run.result.worker_counts, clean.result.worker_counts,
                "seed={seed} [{name}]: faults moved routing under control"
            );
        }
    }
}
