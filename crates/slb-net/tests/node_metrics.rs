//! End-to-end live-metrics test for `slb-node orchestrate --metrics-dir`.
//!
//! One supervised run with periodic snapshots enabled, then three layers of
//! assertions over `metrics.jsonl` (see docs/OBSERVABILITY.md):
//!
//! 1. **Stream shape** — every line is a JSON object; periodic
//!    (`"final":false`) snapshots actually arrive at the configured
//!    cadence; every stage instance ships exactly one final snapshot; the
//!    cluster rollup is the last line.
//! 2. **Rollup consistency** — the rollup in the file is the same snapshot
//!    the report prints as `cluster_metrics ...`, field for field.
//! 3. **Semantic cross-check** — rollup counters tie back to the run
//!    report's own numbers: `latency_count` is every worker tuple plus
//!    every finalized window (the two latency populations), and
//!    `checkpoints` is one durable save per worker per window.

use std::path::PathBuf;
use std::process::Command;

fn node_exe() -> &'static str {
    env!("CARGO_BIN_EXE_slb-node")
}

/// Pulls the integer that follows `prefix` out of a report line.
fn parse_counter(stdout: &str, prefix: &str) -> u64 {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(prefix))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("missing `{prefix}` report line in:\n{stdout}"))
}

/// Pulls `word=N` out of a space-separated report line body.
fn parse_field(line: &str, field: &str) -> u64 {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{field}=")))
        .and_then(|n| n.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("missing `{field}=` in report line: {line}"))
}

/// Pulls `"key":N` out of one JSONL line (the hand-rolled encoder never
/// nests objects, so a plain scan is exact).
fn json_u64(line: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = line
        .find(&needle)
        .unwrap_or_else(|| panic!("missing `{needle}` in JSONL line: {line}"));
    line[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("`{needle}` not followed by an integer in: {line}"))
}

#[test]
fn orchestrate_streams_metrics_jsonl_with_consistent_rollup() {
    // ~400 ms of pure service time across 3 workers, sampled every 25 ms:
    // periodic snapshots are guaranteed several times over.
    let seed = std::env::var("SLB_TEST_SEED").unwrap_or_else(|_| "42".into());
    let spec = format!(
        "# metrics golden: supervised run with a live metrics stream\n\
         mode engine\n\
         scheme PKG\n\
         sources 2\n\
         workers 3\n\
         keys 500\n\
         skew 1.6\n\
         messages 24576\n\
         service_time_us 50\n\
         queue_capacity 256\n\
         seed {seed}\n\
         batch_size 64\n\
         window_size 256\n\
         aggregators 2\n"
    );
    let mut spec_path = std::env::temp_dir();
    spec_path.push(format!("slb-node-metrics-{}.spec", std::process::id()));
    std::fs::write(&spec_path, &spec).expect("write spec file");
    let dir: PathBuf = {
        let mut d = std::env::temp_dir();
        d.push(format!("slb-node-metrics-dir-{}", std::process::id()));
        d
    };
    let output = Command::new(node_exe())
        .arg("orchestrate")
        .arg("--spec")
        .arg(&spec_path)
        .arg("--verify")
        .arg("--fault-tolerant")
        .arg("--metrics-dir")
        .arg(&dir)
        .arg("--metrics-interval-ms")
        .arg("25")
        .output()
        .expect("spawn slb-node orchestrate");
    let _ = std::fs::remove_file(&spec_path);
    let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl"));
    let _ = std::fs::remove_dir_all(&dir);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "orchestrate failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("exact-reference=MATCH"),
        "metrics collection must not perturb the counts\n{stdout}\n{stderr}"
    );
    let jsonl = jsonl.expect("orchestrate must write metrics.jsonl under --metrics-dir");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(!lines.is_empty(), "metrics.jsonl is empty");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "metrics.jsonl line is not a JSON object: {line}"
        );
    }

    // 1. Stream shape.
    let periodic = lines
        .iter()
        .filter(|l| l.contains("\"final\":false"))
        .count();
    assert!(
        periodic >= 3,
        "expected several periodic snapshots at a 25 ms cadence over a \
         ~400 ms run, got {periodic}\n{jsonl}"
    );
    // One final snapshot per stage instance (2 sources + 3 workers +
    // 2 aggregators), plus the cluster rollup.
    let finals: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"final\":true"))
        .collect();
    assert_eq!(
        finals.len(),
        8,
        "expected one final snapshot per node plus the rollup\n{jsonl}"
    );
    let rollup = *lines.last().expect("non-empty");
    assert!(
        rollup.contains("\"stage\":\"cluster\""),
        "the cluster rollup must be the last JSONL line, got: {rollup}"
    );

    // 2. The file's rollup and the report's `cluster_metrics` line are the
    // same snapshot.
    let cluster_line = stdout
        .lines()
        .find(|l| l.starts_with("cluster_metrics "))
        .unwrap_or_else(|| panic!("missing cluster_metrics report line\n{stdout}"));
    for field in [
        "windows_closed",
        "checkpoints",
        "batches_sent",
        "tuples_sent",
        "queue_depth_hwm",
        "latency_count",
    ] {
        assert_eq!(
            json_u64(rollup, field),
            parse_field(cluster_line, field),
            "rollup `{field}` diverged between metrics.jsonl and the report"
        );
    }

    // 3. Rollup counters tie back to the run's own report and to the
    // per-node finals: the rollup must be exactly the fold of the final
    // snapshots (counters sum), its latency population must cover at least
    // every worker tuple (the aggregators add their close→merge samples on
    // top), and checkpointing saves once per worker per window.
    let processed = parse_counter(&stdout, "scheme=PKG processed=");
    let windows = parse_field(stdout.lines().next().expect("report line"), "windows");
    for field in ["items", "windows_closed", "checkpoints", "latency_count"] {
        let summed: u64 = finals
            .iter()
            .filter(|l| !l.contains("\"stage\":\"cluster\""))
            .map(|l| json_u64(l, field))
            .sum();
        assert_eq!(
            json_u64(rollup, field),
            summed,
            "rollup `{field}` is not the fold of the per-node finals\n{jsonl}"
        );
    }
    assert!(
        json_u64(rollup, "latency_count") >= processed,
        "rollup latency_count must cover at least every worker tuple\n{rollup}"
    );
    assert_eq!(
        json_u64(rollup, "checkpoints"),
        3 * windows,
        "every worker must checkpoint every window\n{rollup}"
    );
    assert_eq!(
        json_u64(rollup, "restores"),
        0,
        "a fault-free run must not restore\n{rollup}"
    );
    // The latency histogram travels with the rollup: quantiles are
    // derivable (present exactly when latency_count > 0).
    assert!(
        rollup.contains("\"latency_p99_us\":"),
        "rollup with samples must carry derived percentiles\n{rollup}"
    );
}
