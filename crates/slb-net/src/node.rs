//! The `slb-node` roles and the orchestrator that wires them together.
//!
//! A multi-process run has one process per stage instance — `S` sources,
//! `W` workers, `A` aggregators — plus the orchestrator. Nothing about the
//! dataflow changes: each node process runs *the same stage function* the
//! in-process engine threads run ([`run_source_stage`], [`run_worker_stage`],
//! [`run_aggregator_stage`]), against TCP endpoints instead of crossbeam
//! ones, over a [`StagePlan`](slb_engine::StagePlan) every process
//! resolves locally from the same
//! binary-encoded config. That is the whole equivalence argument: the merged
//! windowed counts cannot depend on process placement because no routing,
//! windowing, or merging code branches on it.
//!
//! ## Control plane
//!
//! ```text
//! orchestrator                               node (role, index)
//!      │   spawn `slb-node <role> --index i --control 127.0.0.1:P`
//!      │ ◀────────────── Hello { role, index, data_port } ──  (workers and
//!      │                                                       aggregators
//!      │                                                       bind first)
//!      │ ── Start { epoch, worker_ports, agg_ports, config } ▶
//!      │                      sources dial workers, workers dial
//!      │                      aggregators, stages run to completion
//!      │ ◀─── SourceReport / WorkerReport / AggregatorReport ──
//! ```
//!
//! Reports are `Instant`-free (spans and latencies travel as µs-since-epoch
//! and RLE histograms); the orchestrator rebuilds the stage reports and
//! calls the engine's own [`assemble_result`] — the same merge the
//! in-process runner uses — then optionally checks the merged counts against
//! the single-threaded exact reference.
//!
//! `slb-node` runs the **count aggregation** ([`CountAggregate`]): exact
//! merges are what make "a distributed run equals the reference" an equality
//! statement rather than a statistical one.
//!
//! ## Fault tolerance
//!
//! With [`OrchestrateOptions::fault_tolerant`] the orchestrator becomes a
//! *supervisor*: workers persist a [`WorkerCheckpoint`] through a
//! [`DurableCheckpointStore`] at every window boundary and stream
//! `Heartbeat` frames; the orchestrator watches three death signals (control
//! connection close, child-process exit, heartbeat silence) and answers a
//! worker death by respawning the process with `--rejoin`:
//!
//! ```text
//! orchestrator                     respawned worker w        sources
//!      │  spawn `slb-node worker --rejoin --ckpt-dir D`
//!      │ ◀── Rejoin { w, data_port, cursors } ──  (cursors restored
//!      │                                           from disk)
//!      │ ─────────── Rejoin { w, port, cursors } ─────────────▶
//!      │ ── Start ──▶ (accepts S conns)   sources re-dial the new
//!      │                                  port and replay each from
//!      │                                  cursors[s]; the worker's
//!      │                                  dedup drops anything its
//!      │                                  checkpoint already covers
//! ```
//!
//! A worker that exhausts its respawn budget is *excluded*: sources rescale
//! it out at the next window boundary, aggregators finalize without its
//! partials, and the run terminates degraded-but-reported
//! ([`OrchestratorOutcome::degraded`]) instead of hanging. Once every worker
//! is done or excluded the orchestrator broadcasts `Release`, which ends the
//! sources' post-emission replay wait and stops the aggregators' late-accept
//! loops.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crossbeam_channel::bounded;
use slb_core::{CountAggregate, DurableCheckpointStore, WorkerCheckpoint};
use slb_engine::transport::{capacity_in_batches, partial_channel_capacity};
use slb_engine::windows::source_stream;
use slb_engine::{
    assemble_result, exact_scenario_windowed_counts, exact_windowed_counts, run_aggregator_stage,
    run_aggregator_stage_supervised, run_source_stage, run_source_stage_supervised,
    run_worker_stage, run_worker_stage_durable, AggregatorStageReport, EngineResult,
    LatencyTracker, RecoveryMetrics, SourceControlEvent, SourceStageReport, WindowId, WindowedRun,
    WorkerStageReport,
};
use slb_telemetry::{log, snapshot_stage, HopTelemetry, LogHistogram, MetricsSnapshot};
use slb_workloads::KeyId;

use crate::cluster::{decode_run_spec, encode_run_spec, ClusterSpec, NodeRole, RunSpec};
use crate::tcp::{
    connect_with_retry, ReattachableTupleSender, TcpPartialReceiver, TcpPartialSender,
    TcpTupleReceiver, TcpTupleSender,
};
use crate::wire::{
    encode_control_frame, read_frame, AggregatorReportWire, ControlFrame, WireError,
    WorkerReportWire,
};

/// How long the control-plane *handshake* (connect + Hello, and a respawned
/// worker's Rejoin) may take before the orchestrator declares the cluster
/// wedged and tears it down. Report reads after `Start` are deliberately
/// unbounded — a healthy run's duration scales with its config — with
/// liveness watched through child exits and heartbeats instead.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(120);

/// How often a fault-tolerant worker streams `Heartbeat` frames.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

/// Default heartbeat silence after which a worker is declared dead. Large
/// relative to [`HEARTBEAT_INTERVAL`] so a scheduling hiccup is never a
/// death sentence; override with `SLB_HEARTBEAT_TIMEOUT_MS`.
const DEFAULT_HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(5);

/// Connect-retry schedule for data-plane dials (sources → workers,
/// workers → aggregators): the peer is known to be starting, so retry hard.
const DIAL_ATTEMPTS: u32 = 40;
const DIAL_BASE_DELAY: Duration = Duration::from_millis(25);

/// Connect-retry schedule for a source re-dialing a respawned worker: the
/// listener was already bound when Rejoin was forwarded, so the first
/// attempt almost always lands — keep the backoff tight.
const REJOIN_DIAL_ATTEMPTS: u32 = 40;
const REJOIN_DIAL_BASE_DELAY: Duration = Duration::from_millis(5);

/// The count partial `slb-node` ships on its worker → aggregator hop.
type CountPartial = HashMap<KeyId, u64>;

fn io_err(what: &str, e: impl std::fmt::Display) -> String {
    format!("{what}: {e}")
}

/// Writes one control frame to `stream`.
fn send_control(stream: &mut TcpStream, frame: &ControlFrame) -> Result<(), String> {
    let mut buf = Vec::new();
    encode_control_frame(frame, &mut buf);
    stream
        .write_all(&buf)
        .map_err(|e| io_err("control write failed", e))
}

/// Writes one control frame through a shared write half. Heartbeat threads
/// and the end-of-run report share the worker's control stream; the mutex
/// keeps their frames from interleaving mid-frame.
fn send_control_shared(stream: &Mutex<TcpStream>, frame: &ControlFrame) -> Result<(), String> {
    let mut guard = stream.lock().expect("control stream poisoned");
    send_control(&mut guard, frame)
}

/// Reads one control frame from `reader`.
fn recv_control(reader: &mut BufReader<TcpStream>) -> Result<ControlFrame, String> {
    let mut scratch = Vec::new();
    match read_frame(reader, &mut scratch) {
        Ok(true) => crate::wire::decode_control_payload(&scratch)
            .map_err(|e| io_err("control frame malformed", e)),
        Ok(false) => Err("control peer closed the connection".into()),
        Err(WireError::Io(e)) => Err(io_err("control read failed", e)),
        Err(e) => Err(io_err("control read failed", e)),
    }
}

/// Maps the orchestrator's wall-clock epoch onto this process's monotonic
/// clock. Same-machine clock reads make this accurate to the syscall jitter;
/// it anchors *metrics* only — counts never depend on it.
fn epoch_from_unix_micros(epoch_unix_micros: u64) -> Instant {
    let now_instant = Instant::now();
    let now_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_micros() as u64;
    if now_unix >= epoch_unix_micros {
        now_instant
            .checked_sub(Duration::from_micros(now_unix - epoch_unix_micros))
            .unwrap_or(now_instant)
    } else {
        now_instant + Duration::from_micros(epoch_unix_micros - now_unix)
    }
}

/// Dials a local data port with bounded retry: the peer process is known to
/// be starting (its Hello already reached the orchestrator), so transient
/// refusals during its accept-loop setup are expected, not fatal.
fn dial(port: u16) -> Result<TcpStream, String> {
    connect_with_retry(&format!("127.0.0.1:{port}"), DIAL_ATTEMPTS, DIAL_BASE_DELAY)
        .map_err(|e| io_err("dialing data port failed", e))
}

fn tracker_from_rle(runs: &[(u64, u64)]) -> LatencyTracker {
    let mut tracker = LatencyTracker::new();
    for &(value, count) in runs {
        tracker.record_many_us(value, count);
    }
    tracker
}

/// Reads the `SLB_METRICS_INTERVAL_MS` override for the periodic metrics
/// ticker, failing fast on a malformed value (same contract as
/// `SLB_HEARTBEAT_TIMEOUT_MS`). Unset or `0` disables periodic snapshots;
/// the exact end-of-stage snapshot is always sent.
///
/// # Panics
/// Panics if the variable is set but is not an unsigned integer number of
/// milliseconds.
pub fn metrics_interval_from_env() -> Option<Duration> {
    match std::env::var("SLB_METRICS_INTERVAL_MS") {
        Ok(raw) => match raw.parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => panic!(
                "SLB_METRICS_INTERVAL_MS must be an integer number of \
                 milliseconds, got {raw:?} (e.g. SLB_METRICS_INTERVAL_MS=250)"
            ),
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("SLB_METRICS_INTERVAL_MS must be valid UTF-8, got {raw:?}")
        }
    }
}

/// Streams periodic (non-final) [`MetricsSnapshot`] frames built from a live
/// [`HopTelemetry`] handle until `stop` is raised. Shares the control stream
/// with heartbeats and the end-of-run report through the frame mutex.
fn spawn_metrics_ticker(
    shared: Arc<Mutex<TcpStream>>,
    stage: u8,
    instance: u32,
    hop: Arc<HopTelemetry>,
    interval: Duration,
    stop: Arc<AtomicBool>,
    seq: Arc<AtomicU64>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            thread::sleep(interval);
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let stats = hop.snapshot();
            let mut snap = MetricsSnapshot {
                stage,
                instance,
                seq: seq.fetch_add(1, Ordering::Relaxed),
                ..MetricsSnapshot::default()
            };
            // Items-so-far approximation: what this stage has pushed through
            // its outbound (source) or inbound (worker, aggregator) hop. The
            // final snapshot replaces it with the report's exact count.
            snap.items = if stage == snapshot_stage::SOURCE {
                stats.tuples_sent
            } else {
                stats.tuples_received
            };
            snap.set_transport(&stats);
            if send_control_shared(&shared, &ControlFrame::Metrics(snap)).is_err() {
                break;
            }
        }
    })
}

/// The exact end-of-stage snapshot for a source.
fn source_final_snapshot(index: usize, report: &SourceStageReport, seq: u64) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot {
        stage: snapshot_stage::SOURCE,
        instance: index as u32,
        seq,
        finished: true,
        items: report.sent,
        ..MetricsSnapshot::default()
    };
    snap.set_transport(&report.transport);
    snap
}

/// The exact end-of-stage snapshot for a worker, with the worker's full
/// latency distribution merged across phases.
fn worker_final_snapshot(index: usize, report: &WorkerStageReport, seq: u64) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot {
        stage: snapshot_stage::WORKER,
        instance: index as u32,
        seq,
        finished: true,
        items: report.processed,
        windows_closed: report.windows_closed,
        checkpoints: report.checkpoints,
        restores: report.recovery.restores,
        replayed_items: report.recovery.replayed_items,
        duplicates_dropped: report.recovery.duplicates_dropped,
        replay_requests: report.recovery.replay_requests,
        transport_errors: report.recovery.transport_errors,
        ..MetricsSnapshot::default()
    };
    snap.set_transport(&report.transport);
    let mut latency = LogHistogram::new();
    for tracker in &report.phase_latencies {
        latency.merge(tracker.histogram());
    }
    snap.set_latency(&latency);
    snap
}

/// The exact end-of-stage snapshot for an aggregator shard.
fn aggregator_final_snapshot(
    index: usize,
    report: &AggregatorStageReport<CountPartial>,
    seq: u64,
) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot {
        stage: snapshot_stage::AGGREGATOR,
        instance: index as u32,
        seq,
        finished: true,
        items: report.merged,
        windows_closed: report.finalized.len() as u64,
        duplicates_dropped: report.duplicates_dropped,
        transport_errors: report.transport_errors,
        ..MetricsSnapshot::default()
    };
    snap.set_transport(&report.transport);
    snap.set_latency(report.latencies.histogram());
    snap
}

/// Per-process knobs for [`run_node_with`]. The default is the plain
/// (non-fault-tolerant) node [`run_node`] runs.
#[derive(Debug, Clone, Default)]
pub struct NodeOptions {
    /// Run the fault-tolerant stage variants: durable checkpoints and
    /// heartbeats (workers), supervised replay (sources), quorum-aware
    /// finalization with late reattach (aggregators).
    pub fault_tolerant: bool,
    /// This worker is a respawn: restore from the durable checkpoint and
    /// announce with `Rejoin` instead of `Hello`. Workers only.
    pub rejoin: bool,
    /// Directory for durable checkpoint files. Required when
    /// `fault_tolerant` is set on a worker.
    pub ckpt_dir: Option<PathBuf>,
    /// Deterministic fault injection (workers only): abort the process at
    /// the N-th window finalization, after shipping the window's partials
    /// but before the durable save — the exact interleaving of the
    /// tail-window re-ship race. Never passed to respawned incarnations.
    pub crash_after_closes: Option<u64>,
    /// Stream periodic [`MetricsSnapshot`] frames at this cadence while the
    /// stage runs (fault-tolerant stages only — they are the ones with a
    /// live telemetry handle). `None` falls back to
    /// [`metrics_interval_from_env`]; the exact final snapshot is sent
    /// either way.
    pub metrics_interval: Option<Duration>,
}

/// Runs one node process: handshake, data-plane wiring, the stage itself,
/// and the end-of-run report. Blocks until the stage completes.
pub fn run_node(role: NodeRole, index: usize, control: &str) -> Result<(), String> {
    run_node_with(role, index, control, &NodeOptions::default())
}

/// [`run_node`] with explicit [`NodeOptions`].
pub fn run_node_with(
    role: NodeRole,
    index: usize,
    control: &str,
    options: &NodeOptions,
) -> Result<(), String> {
    let mut control_stream = connect_with_retry(control, DIAL_ATTEMPTS, DIAL_BASE_DELAY)
        .map_err(|e| io_err("connecting to orchestrator", e))?;
    // Workers and aggregators bind their data listener *before* saying
    // hello (or rejoin), so the announcement can carry the port.
    let listener = match role {
        NodeRole::Source => None,
        NodeRole::Worker | NodeRole::Aggregator => Some(
            TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_err("binding data listener", e))?,
        ),
    };
    let data_port = listener
        .as_ref()
        .map(|l| l.local_addr().map(|a| a.port()))
        .transpose()
        .map_err(|e| io_err("reading listener address", e))?
        .unwrap_or(0);

    // A fault-tolerant worker opens its durable store before announcing
    // itself: a rejoin restores state from disk and sends the recovered
    // cursors with the announcement so sources know where replay starts.
    let mut store: Option<DurableCheckpointStore> = None;
    let mut initial: Option<WorkerCheckpoint> = None;
    if options.fault_tolerant && role == NodeRole::Worker {
        let dir = options
            .ckpt_dir
            .as_ref()
            .ok_or("fault-tolerant workers need a checkpoint directory (--ckpt-dir)")?;
        let opened = DurableCheckpointStore::open(dir, index)
            .map_err(|e| io_err("opening durable checkpoint store", e))?;
        if options.rejoin {
            if let Some((_generation, bytes)) = opened.load() {
                let mut input = bytes.as_slice();
                let ckpt = WorkerCheckpoint::decode(&mut input)
                    .map_err(|e| io_err("decoding restored checkpoint", e))?;
                initial = Some(ckpt);
            }
        }
        store = Some(opened);
    }
    let announcement = if options.rejoin {
        ControlFrame::Rejoin {
            worker: index as u32,
            data_port,
            cursors: initial
                .as_ref()
                .map(|c| c.next_seq.clone())
                .unwrap_or_default(),
        }
    } else {
        ControlFrame::Hello {
            role: role.as_u8(),
            index: index as u32,
            data_port,
        }
    };
    send_control(&mut control_stream, &announcement)?;
    let mut control_reader = BufReader::new(
        control_stream
            .try_clone()
            .map_err(|e| io_err("cloning control stream", e))?,
    );
    let ControlFrame::Start {
        epoch_unix_micros,
        worker_ports,
        aggregator_ports,
        config,
    } = recv_control(&mut control_reader)?
    else {
        return Err("expected Start frame".into());
    };
    let run = decode_run_spec(&config).map_err(|e| io_err("decoding run config", e))?;
    let spec = ClusterSpec { run };
    let plan = spec.stage_plan();
    let epoch = epoch_from_unix_micros(epoch_unix_micros);
    let metrics_interval = options.metrics_interval.or_else(metrics_interval_from_env);

    match role {
        NodeRole::Source if options.fault_tolerant => run_source_node_supervised(
            &spec,
            index,
            epoch,
            &worker_ports,
            control_stream,
            control_reader,
            metrics_interval,
        ),
        NodeRole::Source => {
            let mut senders = Vec::with_capacity(worker_ports.len());
            for &port in &worker_ports {
                senders.push(TcpTupleSender::new(dial(port)?, epoch));
            }
            let report = match &spec.run {
                RunSpec::Engine(cfg) => {
                    run_source_stage(&plan, index, |_phase| source_stream(cfg, index), &senders)
                }
                RunSpec::Scenario(cfg) => run_source_stage(
                    &plan,
                    index,
                    |phase| cfg.scenario.phase_stream(phase, index),
                    &senders,
                ),
            };
            drop(senders); // EOF to every worker
            send_control(
                &mut control_stream,
                &ControlFrame::Metrics(source_final_snapshot(index, &report, 0)),
            )?;
            send_control(
                &mut control_stream,
                &ControlFrame::SourceReport {
                    source: index as u32,
                    sent: report.sent,
                    controller_events: report.controller_events,
                    trace: report.trace,
                    transport: report.transport,
                },
            )
        }
        NodeRole::Worker => {
            let listener = listener.expect("workers bind a listener");
            let mut incoming = Vec::with_capacity(plan.sources);
            for _ in 0..plan.sources {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| io_err("accepting source connection", e))?;
                incoming.push(stream);
            }
            let receiver = TcpTupleReceiver::spawn(
                incoming,
                epoch,
                capacity_in_batches(plan.queue_capacity, plan.batch_size),
            );
            let mut partial_senders: Vec<TcpPartialSender<CountPartial>> =
                Vec::with_capacity(aggregator_ports.len());
            for &port in &aggregator_ports {
                partial_senders.push(TcpPartialSender::new(dial(port)?, epoch));
            }
            let report = if options.fault_tolerant {
                let mut store = store.expect("fault-tolerant workers open a store");
                // The shared write half lets the heartbeat and metrics
                // threads and the final report use one control connection.
                let shared = Arc::new(Mutex::new(control_stream));
                let stop = Arc::new(AtomicBool::new(false));
                let heartbeats = {
                    let stream = Arc::clone(&shared);
                    let stop = Arc::clone(&stop);
                    let worker = index as u32;
                    thread::spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            if send_control_shared(&stream, &ControlFrame::Heartbeat { worker })
                                .is_err()
                            {
                                break;
                            }
                            thread::sleep(HEARTBEAT_INTERVAL);
                        }
                    })
                };
                let live = plan.telemetry.then(|| Arc::new(HopTelemetry::default()));
                let metrics_seq = Arc::new(AtomicU64::new(0));
                let ticker = metrics_interval.zip(live.clone()).map(|(interval, hop)| {
                    spawn_metrics_ticker(
                        Arc::clone(&shared),
                        snapshot_stage::WORKER,
                        index as u32,
                        hop,
                        interval,
                        Arc::clone(&stop),
                        Arc::clone(&metrics_seq),
                    )
                });
                let mut closes_persisted = 0u64;
                let crash_after_closes = options.crash_after_closes;
                let report = run_worker_stage_durable(
                    &plan,
                    index,
                    epoch,
                    &CountAggregate,
                    receiver,
                    &partial_senders,
                    initial.as_ref(),
                    &mut |bytes| {
                        // Deterministic crash injection: the hook runs after
                        // the window's partials shipped but before the save
                        // below makes the close durable — aborting here is
                        // exactly the tail-window re-ship race, pinned to a
                        // fixed window instead of a wall-clock kill.
                        closes_persisted += 1;
                        if crash_after_closes == Some(closes_persisted) {
                            std::process::abort();
                        }
                        // A failed save degrades durability (a later crash
                        // replays more), never correctness — keep running.
                        if let Err(e) = store.save(bytes) {
                            log::error(
                                "slb-node",
                                &format!("worker {index}: checkpoint save failed: {e}"),
                            );
                        }
                    },
                    live,
                );
                drop(partial_senders); // EOF to every aggregator
                stop.store(true, Ordering::Relaxed);
                let _ = heartbeats.join();
                if let Some(ticker) = ticker {
                    let _ = ticker.join();
                }
                send_control_shared(
                    &shared,
                    &ControlFrame::Metrics(worker_final_snapshot(
                        index,
                        &report,
                        metrics_seq.load(Ordering::Relaxed),
                    )),
                )?;
                return send_control_shared(
                    &shared,
                    &ControlFrame::WorkerReport(worker_report_to_wire(index, &report)),
                );
            } else {
                run_worker_stage(
                    &plan,
                    index,
                    epoch,
                    &CountAggregate,
                    receiver,
                    &partial_senders,
                )
            };
            drop(partial_senders); // EOF to every aggregator
            send_control(
                &mut control_stream,
                &ControlFrame::Metrics(worker_final_snapshot(index, &report, 0)),
            )?;
            send_control(
                &mut control_stream,
                &ControlFrame::WorkerReport(worker_report_to_wire(index, &report)),
            )
        }
        NodeRole::Aggregator => {
            let listener = listener.expect("aggregators bind a listener");
            let mut incoming = Vec::with_capacity(plan.spawned_workers);
            for _ in 0..plan.spawned_workers {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| io_err("accepting worker connection", e))?;
                incoming.push(stream);
            }
            let capacity = partial_channel_capacity(plan.spawned_workers);
            let shared = Arc::new(Mutex::new(control_stream));
            let metrics_seq = Arc::new(AtomicU64::new(0));
            let report = if options.fault_tolerant {
                let live = plan.telemetry.then(|| Arc::new(HopTelemetry::default()));
                let stop = Arc::new(AtomicBool::new(false));
                let ticker = metrics_interval.zip(live.clone()).map(|(interval, hop)| {
                    spawn_metrics_ticker(
                        Arc::clone(&shared),
                        snapshot_stage::AGGREGATOR,
                        index as u32,
                        hop,
                        interval,
                        Arc::clone(&stop),
                        Arc::clone(&metrics_seq),
                    )
                });
                let report = run_aggregator_node_supervised(
                    &plan,
                    listener,
                    incoming,
                    epoch,
                    capacity,
                    control_reader,
                    index,
                    live,
                )?;
                stop.store(true, Ordering::Relaxed);
                if let Some(ticker) = ticker {
                    let _ = ticker.join();
                }
                report
            } else {
                let receiver = TcpPartialReceiver::<CountPartial>::spawn(incoming, epoch, capacity);
                run_aggregator_stage(
                    plan.spawned_workers,
                    &CountAggregate,
                    receiver,
                    index,
                    plan.telemetry,
                )
            };
            send_control_shared(
                &shared,
                &ControlFrame::Metrics(aggregator_final_snapshot(
                    index,
                    &report,
                    metrics_seq.load(Ordering::Relaxed),
                )),
            )?;
            send_control_shared(
                &shared,
                &ControlFrame::AggregatorReport(AggregatorReportWire {
                    aggregator: index as u32,
                    merged: report.merged,
                    latency: report.latencies.value_runs(),
                    finalized: report.finalized.into_iter().collect(),
                    duplicates_dropped: report.duplicates_dropped,
                    transport_errors: report.transport_errors,
                    trace: report.trace,
                    transport: report.transport,
                }),
            )
        }
    }
}

/// The fault-tolerant source body: supervised emission with a control-reader
/// thread translating orchestrator frames into [`SourceControlEvent`]s and a
/// reattach hook that re-dials respawned workers.
fn run_source_node_supervised(
    spec: &ClusterSpec,
    index: usize,
    epoch: Instant,
    worker_ports: &[u16],
    control_stream: TcpStream,
    mut control_reader: BufReader<TcpStream>,
    metrics_interval: Option<Duration>,
) -> Result<(), String> {
    let plan = spec.stage_plan();
    let mut senders = Vec::with_capacity(worker_ports.len());
    for &port in worker_ports {
        senders.push(ReattachableTupleSender::new(dial(port)?, epoch));
    }
    // Rejoin ports land here *before* the event is queued, so the reattach
    // hook always finds the port when the emission thread processes it.
    let rejoin_ports: Arc<Mutex<Vec<Option<u16>>>> =
        Arc::new(Mutex::new(vec![None; worker_ports.len()]));
    let (event_tx, event_rx) = bounded::<SourceControlEvent>(64);
    let control_thread = {
        let ports = Arc::clone(&rejoin_ports);
        thread::spawn(move || loop {
            match recv_control(&mut control_reader) {
                Ok(ControlFrame::Rejoin {
                    worker,
                    data_port,
                    cursors,
                }) => {
                    let w = worker as usize;
                    if let Some(slot) = ports.lock().expect("rejoin ports poisoned").get_mut(w) {
                        *slot = Some(data_port);
                    }
                    let from_seq = cursors.get(index).copied().unwrap_or(0);
                    if event_tx
                        .send(SourceControlEvent::Rejoin {
                            worker: w,
                            from_seq,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Ok(ControlFrame::Exclude { worker }) => {
                    if event_tx
                        .send(SourceControlEvent::Exclude {
                            worker: worker as usize,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                // A broken control connection releases the stage too: with
                // the orchestrator gone, waiting for replay requests that
                // can never arrive would wedge the process.
                Ok(ControlFrame::Release) | Err(_) => {
                    let _ = event_tx.send(SourceControlEvent::Release);
                    break;
                }
                Ok(_) => {}
            }
        })
    };
    let reattach = |w: usize| {
        let port = rejoin_ports
            .lock()
            .expect("rejoin ports poisoned")
            .get(w)
            .copied()
            .flatten();
        let Some(port) = port else {
            log::warn(
                "slb-node",
                &format!("source {index}: rejoin for worker {w} carried no port"),
            );
            return;
        };
        match connect_with_retry(
            &format!("127.0.0.1:{port}"),
            REJOIN_DIAL_ATTEMPTS,
            REJOIN_DIAL_BASE_DELAY,
        ) {
            Ok(stream) => senders[w].reattach(stream),
            Err(e) => log::error(
                "slb-node",
                &format!("source {index}: re-dialing worker {w} failed: {e}"),
            ),
        }
    };
    let shared = Arc::new(Mutex::new(control_stream));
    let live = plan.telemetry.then(|| Arc::new(HopTelemetry::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let metrics_seq = Arc::new(AtomicU64::new(0));
    let ticker = metrics_interval.zip(live.clone()).map(|(interval, hop)| {
        spawn_metrics_ticker(
            Arc::clone(&shared),
            snapshot_stage::SOURCE,
            index as u32,
            hop,
            interval,
            Arc::clone(&stop),
            Arc::clone(&metrics_seq),
        )
    });
    let report = match &spec.run {
        RunSpec::Engine(cfg) => run_source_stage_supervised(
            &plan,
            index,
            |_phase| source_stream(cfg, index),
            &senders,
            &event_rx,
            reattach,
            live.clone(),
        ),
        RunSpec::Scenario(cfg) => run_source_stage_supervised(
            &plan,
            index,
            |phase| cfg.scenario.phase_stream(phase, index),
            &senders,
            &event_rx,
            reattach,
            live.clone(),
        ),
    };
    drop(senders); // EOF to every worker
    let _ = control_thread.join(); // exited on Release
    stop.store(true, Ordering::Relaxed);
    if let Some(ticker) = ticker {
        let _ = ticker.join();
    }
    send_control_shared(
        &shared,
        &ControlFrame::Metrics(source_final_snapshot(
            index,
            &report,
            metrics_seq.load(Ordering::Relaxed),
        )),
    )?;
    send_control_shared(
        &shared,
        &ControlFrame::SourceReport {
            source: index as u32,
            sent: report.sent,
            controller_events: report.controller_events,
            trace: report.trace,
            transport: report.transport,
        },
    )
}

/// The fault-tolerant aggregator body: an attachable merge queue with a
/// late-accept loop for respawned workers' fresh connections, and a
/// control-reader thread feeding exclusions into the supervised stage.
#[allow(clippy::too_many_arguments)]
fn run_aggregator_node_supervised(
    plan: &slb_engine::StagePlan,
    listener: TcpListener,
    incoming: Vec<TcpStream>,
    epoch: Instant,
    capacity: usize,
    mut control_reader: BufReader<TcpStream>,
    shard: usize,
    live: Option<Arc<HopTelemetry>>,
) -> Result<AggregatorStageReport<CountPartial>, String> {
    let (receiver, attach) =
        TcpPartialReceiver::<CountPartial>::spawn_attachable(incoming, epoch, capacity);
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("setting data listener non-blocking", e))?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        attach.attach(stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
            // Dropping the attach handle here is what lets the merge queue
            // disconnect once every connected worker has sent EOF.
        })
    };
    let (excl_tx, excl_rx) = bounded::<usize>(16);
    let control_stop = Arc::clone(&stop);
    // Deliberately not joined: the thread exits on Release or when the
    // orchestrator drops the connection, either of which may come after the
    // stage (and this process's useful life) is already over.
    thread::spawn(move || {
        loop {
            match recv_control(&mut control_reader) {
                Ok(ControlFrame::Exclude { worker }) => {
                    let _ = excl_tx.send(worker as usize);
                }
                Ok(ControlFrame::Release) | Err(_) => break,
                Ok(_) => {}
            }
        }
        control_stop.store(true, Ordering::Relaxed);
    });
    let report = run_aggregator_stage_supervised(
        plan.spawned_workers,
        plan.total_windows(),
        &CountAggregate,
        receiver,
        &excl_rx,
        shard,
        plan.telemetry,
        live,
    );
    stop.store(true, Ordering::Relaxed);
    let _ = accept_thread.join();
    Ok(report)
}

fn worker_report_to_wire(index: usize, report: &WorkerStageReport) -> WorkerReportWire {
    WorkerReportWire {
        worker: index as u32,
        processed: report.processed,
        state_keys: report.state_keys,
        windows_closed: report.windows_closed,
        phase_counts: report.phase_counts.clone(),
        phase_spans: report.phase_spans.clone(),
        phase_latencies: report
            .phase_latencies
            .iter()
            .map(|t| t.value_runs())
            .collect(),
        restores: report.recovery.restores,
        replayed_items: report.recovery.replayed_items,
        duplicates_dropped: report.recovery.duplicates_dropped,
        replay_requests: report.recovery.replay_requests,
        transport_errors: report.recovery.transport_errors,
        checkpoints: report.checkpoints,
        trace: report.trace.clone(),
        transport: report.transport.clone(),
    }
}

fn worker_report_from_wire(report: WorkerReportWire) -> WorkerStageReport {
    WorkerStageReport {
        processed: report.processed,
        phase_counts: report.phase_counts,
        phase_latencies: report
            .phase_latencies
            .iter()
            .map(|runs| tracker_from_rle(runs))
            .collect(),
        state_keys: report.state_keys,
        windows_closed: report.windows_closed,
        phase_spans: report.phase_spans,
        recovery: RecoveryMetrics {
            restores: report.restores,
            replayed_items: report.replayed_items,
            duplicates_dropped: report.duplicates_dropped,
            replay_requests: report.replay_requests,
            transport_errors: report.transport_errors,
        },
        checkpoints: report.checkpoints,
        trace: report.trace,
        transport: report.transport,
    }
}

fn aggregator_report_from_wire(
    report: AggregatorReportWire,
) -> AggregatorStageReport<CountPartial> {
    AggregatorStageReport {
        finalized: report.finalized.into_iter().collect(),
        latencies: tracker_from_rle(&report.latency),
        merged: report.merged,
        duplicates_dropped: report.duplicates_dropped,
        transport_errors: report.transport_errors,
        trace: report.trace,
        transport: report.transport,
    }
}

/// What a completed multi-process run hands back.
pub struct OrchestratorOutcome {
    /// The assembled measurements, merged exactly as the in-process runner
    /// merges its thread reports.
    pub result: EngineResult,
    /// Final merged per-window per-key counts.
    pub windows: BTreeMap<WindowId, CountPartial>,
    /// Tuples the sources reported sending (must equal `result.processed`
    /// unless the run degraded).
    pub sent_total: u64,
    /// Workers that exhausted their respawn budget and were excluded. Empty
    /// on a fully healthy (or fully recovered) run.
    pub degraded: Vec<usize>,
    /// Cluster-wide rollup of every stage's exact final [`MetricsSnapshot`]
    /// (stage = `cluster`): counters summed, high-water marks maxed, latency
    /// histograms merged. `None` only if no stage delivered its final
    /// snapshot (impossible on a completed run with current nodes).
    pub metrics: Option<MetricsSnapshot>,
}

/// Supervision knobs for [`orchestrate_with`]. The default is the plain
/// fail-fast run [`orchestrate`] performs.
#[derive(Debug, Clone)]
pub struct OrchestrateOptions {
    /// Supervise the cluster: respawn dead workers from durable checkpoints
    /// instead of failing the run.
    pub fault_tolerant: bool,
    /// How many times each worker may be respawned before it is excluded.
    pub respawn_budget: u32,
    /// Durable checkpoint directory handed to workers. Defaults to a
    /// pid-scoped directory under the system temp dir.
    pub ckpt_dir: Option<PathBuf>,
    /// Fault injection: SIGKILL worker `.0` roughly `.1` milliseconds after
    /// `Start` — the process-level analogue of the engine's fault plans.
    pub kill_worker: Option<(usize, u64)>,
    /// Deterministic fault injection: worker `.0` aborts itself at its
    /// `.1`-th window finalization, *after* shipping the window's partials
    /// but *before* the durable checkpoint save. This pins the tail-window
    /// re-ship race at a fixed logical point: the respawned worker restores
    /// the previous checkpoint, re-finalizes exactly that one window, and
    /// every aggregator drops exactly one duplicate — so the expected
    /// `duplicates_dropped` is exactly the aggregator count, not a bound.
    pub crash_worker: Option<(usize, u64)>,
    /// Heartbeat silence after which a worker is declared dead.
    pub heartbeat_timeout: Duration,
    /// Directory for the merged metrics stream: every [`MetricsSnapshot`]
    /// the nodes ship (periodic and final) is appended as one JSON object
    /// per line to `<dir>/metrics.jsonl`, ending with the cluster rollup.
    /// `None` keeps the rollup in [`OrchestratorOutcome::metrics`] only.
    pub metrics_dir: Option<PathBuf>,
    /// Periodic snapshot cadence handed to the nodes
    /// (`--metrics-interval-ms`). Defaults to [`metrics_interval_from_env`];
    /// `None` means final snapshots only.
    pub metrics_interval: Option<Duration>,
}

impl Default for OrchestrateOptions {
    fn default() -> Self {
        Self {
            fault_tolerant: false,
            respawn_budget: 1,
            ckpt_dir: None,
            kill_worker: None,
            crash_worker: None,
            heartbeat_timeout: heartbeat_timeout_from_env(),
            metrics_dir: None,
            metrics_interval: metrics_interval_from_env(),
        }
    }
}

/// Reads the `SLB_HEARTBEAT_TIMEOUT_MS` override, failing fast on a
/// malformed value: a typo like `5s` must abort with a clear message, not
/// silently run with the default and mask the operator's intent.
///
/// # Panics
/// Panics if the variable is set but is not an unsigned integer number of
/// milliseconds.
fn heartbeat_timeout_from_env() -> Duration {
    match std::env::var("SLB_HEARTBEAT_TIMEOUT_MS") {
        Ok(raw) => match raw.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms),
            Err(_) => panic!(
                "SLB_HEARTBEAT_TIMEOUT_MS must be an integer number of \
                 milliseconds, got {raw:?} (e.g. SLB_HEARTBEAT_TIMEOUT_MS=5000)"
            ),
        },
        Err(std::env::VarError::NotPresent) => DEFAULT_HEARTBEAT_TIMEOUT,
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("SLB_HEARTBEAT_TIMEOUT_MS must be valid UTF-8, got {raw:?}")
        }
    }
}

/// Errors if any child process has already exited — used during the
/// handshake, where *no* node may terminate yet (they have not reported).
fn check_no_child_exited(children: &mut [Child]) -> Result<(), String> {
    for child in children.iter_mut() {
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!(
                "a node process exited prematurely ({status}) before connecting"
            ));
        }
    }
    Ok(())
}

/// Errors if any child process exited *unsuccessfully* — used while waiting
/// for reports in plain mode, where a clean exit is legitimate once a node
/// has reported but any failure is fatal.
fn check_no_child_failed(children: &mut [Child]) -> Result<(), String> {
    for child in children.iter_mut() {
        if let Ok(Some(status)) = child.try_wait() {
            if !status.success() {
                return Err(format!("a node process failed ({status})"));
            }
        }
    }
    Ok(())
}

/// One connected child on the control plane.
struct NodeConn {
    role: NodeRole,
    index: usize,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// What the per-connection reader threads feed the supervision loop.
enum SupervisorEvent {
    /// A control frame arrived from `(role, index)`.
    Frame {
        role: NodeRole,
        index: usize,
        frame: Box<ControlFrame>,
    },
    /// The control connection to `(role, index)` ended (clean close or read
    /// error — indistinguishable from here, and treated alike). `gen`
    /// identifies *which* connection to a respawning worker closed, so a
    /// stale close from a replaced connection never reads as a fresh death.
    Closed {
        role: NodeRole,
        index: usize,
        gen: u64,
        detail: String,
    },
}

fn spawn_control_reader(
    role: NodeRole,
    index: usize,
    gen: u64,
    mut reader: BufReader<TcpStream>,
    tx: std::sync::mpsc::Sender<SupervisorEvent>,
) {
    thread::spawn(move || loop {
        match recv_control(&mut reader) {
            Ok(frame) => {
                if tx
                    .send(SupervisorEvent::Frame {
                        role,
                        index,
                        frame: Box::new(frame),
                    })
                    .is_err()
                {
                    break;
                }
            }
            Err(detail) => {
                let _ = tx.send(SupervisorEvent::Closed {
                    role,
                    index,
                    gen,
                    detail,
                });
                break;
            }
        }
    });
}

/// Per-worker lifecycle state in the supervision loop.
#[derive(Debug, Clone, Copy)]
enum WState {
    /// Alive: control connection open, heartbeats flowing.
    Running,
    /// Respawned; waiting for its Rejoin on a fresh control connection.
    Awaiting(Instant),
    /// Reported and finished.
    Done,
    /// Respawn budget exhausted; excluded from the run.
    Excluded,
}

/// Everything the supervision loop tracks per worker.
struct WorkerSupervision {
    state: Vec<WState>,
    last_seen: Vec<Instant>,
    budget_left: Vec<u32>,
    /// Index of each worker's *current* child process in the children vec
    /// (respawns are appended, never overwritten).
    slot: Vec<usize>,
    conn_gen: Vec<u64>,
    degraded: Vec<usize>,
}

/// Handles one observed worker death: respawn with `--rejoin` while budget
/// remains, exclude (and notify sources and aggregators) once it runs out.
#[allow(clippy::too_many_arguments)]
fn handle_worker_death(
    w: usize,
    sup: &mut WorkerSupervision,
    worker_reports: &mut [Option<WorkerStageReport>],
    children: &Arc<Mutex<Vec<Child>>>,
    node_exe: &Path,
    control_addr: &SocketAddr,
    ckpt_dir: &Path,
    metrics_interval: Option<Duration>,
    source_streams: &mut [TcpStream],
    aggregator_streams: &mut [TcpStream],
) -> Result<(), String> {
    if sup.budget_left[w] > 0 {
        sup.budget_left[w] -= 1;
        let mut cmd = Command::new(node_exe);
        cmd.arg(NodeRole::Worker.name())
            .arg("--index")
            .arg(w.to_string())
            .arg("--control")
            .arg(control_addr.to_string())
            .arg("--fault-tolerant")
            .arg("--rejoin")
            .arg("--ckpt-dir")
            .arg(ckpt_dir);
        if let Some(interval) = metrics_interval {
            cmd.arg("--metrics-interval-ms")
                .arg(interval.as_millis().to_string());
        }
        let child = cmd
            .spawn()
            .map_err(|e| io_err("respawning worker process", e))?;
        let mut kids = children.lock().expect("children poisoned");
        kids.push(child);
        sup.slot[w] = kids.len() - 1;
        sup.state[w] = WState::Awaiting(Instant::now());
    } else {
        sup.state[w] = WState::Excluded;
        sup.degraded.push(w);
        // An excluded worker contributes an empty report; the engine's
        // assemble path tolerates it and the aggregators finalize its
        // windows without a partial from it.
        worker_reports[w] = Some(WorkerStageReport::default());
        let mut bytes = Vec::new();
        encode_control_frame(&ControlFrame::Exclude { worker: w as u32 }, &mut bytes);
        // Best-effort: a peer that already finished (and closed) simply no
        // longer needs the exclusion.
        for stream in source_streams.iter_mut() {
            let _ = stream.write_all(&bytes);
        }
        for stream in aggregator_streams.iter_mut() {
            let _ = stream.write_all(&bytes);
        }
    }
    Ok(())
}

/// Spawns the node processes for `spec`, wires the control plane, runs the
/// cluster to completion, and merges the reports. `node_exe` is the
/// `slb-node` binary to spawn (usually `std::env::current_exe()`).
pub fn orchestrate(spec: &ClusterSpec, node_exe: &Path) -> Result<OrchestratorOutcome, String> {
    orchestrate_with(spec, node_exe, &OrchestrateOptions::default())
}

/// [`orchestrate`] with explicit supervision [`OrchestrateOptions`].
pub fn orchestrate_with(
    spec: &ClusterSpec,
    node_exe: &Path,
    options: &OrchestrateOptions,
) -> Result<OrchestratorOutcome, String> {
    let children: Arc<Mutex<Vec<Child>>> = Arc::new(Mutex::new(Vec::new()));
    let outcome = orchestrate_inner(spec, node_exe, &children, options);
    let mut kids = children.lock().expect("children poisoned");
    if outcome.is_err() {
        for child in kids.iter_mut() {
            let _ = child.kill();
        }
    }
    for child in kids.iter_mut() {
        let _ = child.wait();
    }
    outcome
}

fn orchestrate_inner(
    spec: &ClusterSpec,
    node_exe: &Path,
    children: &Arc<Mutex<Vec<Child>>>,
    options: &OrchestrateOptions,
) -> Result<OrchestratorOutcome, String> {
    let plan = spec.stage_plan();
    let ft = options.fault_tolerant;
    let ckpt_dir = options.ckpt_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("slb-node-ckpt-{}", std::process::id()))
    });
    let control_listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_err("binding control listener", e))?;
    let control_addr: SocketAddr = control_listener
        .local_addr()
        .map_err(|e| io_err("reading control address", e))?;

    let roles = [
        (NodeRole::Source, spec.sources()),
        (NodeRole::Worker, spec.workers()),
        (NodeRole::Aggregator, spec.aggregators()),
    ];
    for (role, count) in roles {
        for index in 0..count {
            let mut cmd = Command::new(node_exe);
            cmd.arg(role.name())
                .arg("--index")
                .arg(index.to_string())
                .arg("--control")
                .arg(control_addr.to_string());
            if let Some(interval) = options.metrics_interval {
                cmd.arg("--metrics-interval-ms")
                    .arg(interval.as_millis().to_string());
            }
            if ft {
                cmd.arg("--fault-tolerant");
                if role == NodeRole::Worker {
                    cmd.arg("--ckpt-dir").arg(&ckpt_dir);
                    // Only the initial incarnation carries the crash plan:
                    // respawn commands (handle_worker_death) never add it,
                    // so the injected abort fires exactly once.
                    if let Some((victim, closes)) = options.crash_worker {
                        if victim == index {
                            cmd.arg("--crash-after-closes").arg(closes.to_string());
                        }
                    }
                }
            }
            let child = cmd
                .spawn()
                .map_err(|e| io_err("spawning node process", e))?;
            children.lock().expect("children poisoned").push(child);
        }
    }
    let total_nodes = spec.sources() + spec.workers() + spec.aggregators();

    // Collect every hello; remember each node's control connection and the
    // data port it bound. The accept loop is non-blocking with a deadline
    // and a child-liveness poll: a node that dies before connecting (bind
    // failure, OOM kill, startup crash) must turn into an error, not an
    // accept that blocks forever.
    control_listener
        .set_nonblocking(true)
        .map_err(|e| io_err("setting control listener non-blocking", e))?;
    let hello_deadline = Instant::now() + CONTROL_TIMEOUT;
    let mut conns: Vec<NodeConn> = Vec::with_capacity(total_nodes);
    let mut ports: HashMap<(u8, u32), u16> = HashMap::new();
    while conns.len() < total_nodes {
        let stream = match control_listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                check_no_child_exited(&mut children.lock().expect("children poisoned"))?;
                if Instant::now() > hello_deadline {
                    return Err(format!(
                        "timed out waiting for node hellos ({}/{total_nodes} connected)",
                        conns.len()
                    ));
                }
                thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(e) => return Err(io_err("accepting control connection", e)),
        };
        stream
            .set_nonblocking(false)
            .map_err(|e| io_err("setting control stream blocking", e))?;
        // Hellos arrive immediately after connect; a bounded read here is
        // safe and converts a half-connected node into an error.
        stream
            .set_read_timeout(Some(CONTROL_TIMEOUT))
            .map_err(|e| io_err("setting control timeout", e))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| io_err("cloning control stream", e))?,
        );
        let ControlFrame::Hello {
            role,
            index,
            data_port,
        } = recv_control(&mut reader)?
        else {
            return Err("expected Hello frame".into());
        };
        ports.insert((role, index), data_port);
        conns.push(NodeConn {
            role: NodeRole::from_u8(role).map_err(|e| e.to_string())?,
            index: index as usize,
            stream,
            reader,
        });
    }

    let port_of = |role: NodeRole, index: usize| -> Result<u16, String> {
        ports
            .get(&(role.as_u8(), index as u32))
            .copied()
            .ok_or_else(|| format!("no hello from {} {index}", role.name()))
    };
    let worker_ports: Vec<u16> = (0..spec.workers())
        .map(|w| port_of(NodeRole::Worker, w))
        .collect::<Result<_, _>>()?;
    let aggregator_ports: Vec<u16> = (0..spec.aggregators())
        .map(|a| port_of(NodeRole::Aggregator, a))
        .collect::<Result<_, _>>()?;

    let epoch_unix_micros = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_micros() as u64;
    let start_frame = ControlFrame::Start {
        epoch_unix_micros,
        worker_ports,
        aggregator_ports,
        config: encode_run_spec(&spec.run),
    };
    // The encoded Start is cached: a respawned worker gets the *same* bytes
    // after its Rejoin, so every incarnation resolves the identical plan.
    let mut start_bytes = Vec::new();
    encode_control_frame(&start_frame, &mut start_bytes);
    for conn in &mut conns {
        conn.stream
            .write_all(&start_bytes)
            .map_err(|e| io_err("control write failed", e))?;
    }
    let started = Instant::now();

    // Fault injection: kill a worker's process a fixed delay after Start.
    if let Some((victim, delay_ms)) = options.kill_worker {
        let children = Arc::clone(children);
        let slot = spec.sources() + victim;
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(delay_ms));
            if let Some(child) = children.lock().expect("children poisoned").get_mut(slot) {
                let _ = child.kill();
            }
        });
    }

    // Reports (and heartbeats) may legitimately outlast any fixed read
    // timeout, so control reads are unbounded — one blocking reader thread
    // per connection feeding one supervision queue — and liveness is
    // watched through child exits and heartbeat recency instead.
    for conn in &conns {
        conn.reader
            .get_ref()
            .set_read_timeout(None)
            .map_err(|e| io_err("clearing control timeout", e))?;
    }
    let (event_tx, event_rx) = std::sync::mpsc::channel::<SupervisorEvent>();
    let mut source_streams: Vec<Option<TcpStream>> = (0..spec.sources()).map(|_| None).collect();
    let mut aggregator_streams: Vec<Option<TcpStream>> =
        (0..spec.aggregators()).map(|_| None).collect();
    for conn in conns {
        let NodeConn {
            role,
            index,
            stream,
            reader,
        } = conn;
        spawn_control_reader(role, index, 0, reader, event_tx.clone());
        // Keep the write halves the supervisor still talks to: sources and
        // aggregators receive Rejoin/Exclude/Release. Workers only ever
        // receive Start, which is already sent.
        match role {
            NodeRole::Source => {
                *source_streams
                    .get_mut(index)
                    .ok_or("source hello index out of range")? = Some(stream);
            }
            NodeRole::Aggregator => {
                *aggregator_streams
                    .get_mut(index)
                    .ok_or("aggregator hello index out of range")? = Some(stream);
            }
            NodeRole::Worker => drop(stream),
        }
    }
    let mut source_streams: Vec<TcpStream> = source_streams
        .into_iter()
        .enumerate()
        .map(|(s, stream)| stream.ok_or(format!("no hello from source {s}")))
        .collect::<Result<_, _>>()?;
    let mut aggregator_streams: Vec<TcpStream> = aggregator_streams
        .into_iter()
        .enumerate()
        .map(|(a, stream)| stream.ok_or(format!("no hello from aggregator {a}")))
        .collect::<Result<_, _>>()?;

    let now = Instant::now();
    let mut sup = WorkerSupervision {
        state: vec![WState::Running; spec.workers()],
        last_seen: vec![now; spec.workers()],
        budget_left: vec![options.respawn_budget; spec.workers()],
        slot: (spec.sources()..spec.sources() + spec.workers()).collect(),
        conn_gen: vec![0; spec.workers()],
        degraded: Vec::new(),
    };
    let mut sent_total = 0u64;
    let mut source_reports: Vec<Option<SourceStageReport>> =
        (0..spec.sources()).map(|_| None).collect();
    let mut aggregators_reported = vec![false; spec.aggregators()];
    let mut worker_reports: Vec<Option<WorkerStageReport>> =
        (0..spec.workers()).map(|_| None).collect();
    let mut aggregator_reports: Vec<AggregatorStageReport<CountPartial>> = Vec::new();
    // The merged metrics stream: every Metrics frame, in arrival order, one
    // JSON object per line. Final (`finished`) snapshots also fold into the
    // cluster rollup.
    let mut metrics_writer = match &options.metrics_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| io_err("creating metrics directory", e))?;
            let file = std::fs::File::create(dir.join("metrics.jsonl"))
                .map_err(|e| io_err("creating metrics.jsonl", e))?;
            Some(BufWriter::new(file))
        }
        None => None,
    };
    let mut metrics_rollup: Option<MetricsSnapshot> = None;
    let mut released = false;
    // Ticks observed with every child exited but reports still missing: the
    // grace period for reports already in the socket buffers.
    let mut drained_ticks = 0u32;

    loop {
        let workers_settled = sup
            .state
            .iter()
            .all(|s| matches!(s, WState::Done | WState::Excluded));
        if ft && workers_settled && !released {
            // Every worker is done or gone for good: no further rejoin or
            // replay is possible. Release the sources' post-emission wait
            // and the aggregators' late-accept loops.
            released = true;
            let mut bytes = Vec::new();
            encode_control_frame(&ControlFrame::Release, &mut bytes);
            for stream in source_streams.iter_mut() {
                let _ = stream.write_all(&bytes);
            }
            for stream in aggregator_streams.iter_mut() {
                let _ = stream.write_all(&bytes);
            }
        }
        if workers_settled
            && source_reports.iter().all(Option::is_some)
            && aggregators_reported.iter().all(|&r| r)
        {
            break;
        }

        // A respawned worker announces itself on a *fresh* control
        // connection; poll for it alongside the event queue.
        if ft {
            match control_listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| io_err("setting control stream blocking", e))?;
                    stream
                        .set_read_timeout(Some(CONTROL_TIMEOUT))
                        .map_err(|e| io_err("setting control timeout", e))?;
                    let mut reader = BufReader::new(
                        stream
                            .try_clone()
                            .map_err(|e| io_err("cloning control stream", e))?,
                    );
                    let frame = recv_control(&mut reader)?;
                    let ControlFrame::Rejoin {
                        worker,
                        data_port,
                        cursors,
                    } = frame
                    else {
                        return Err("expected Rejoin frame on a late control connection".into());
                    };
                    let w = worker as usize;
                    if w >= spec.workers() {
                        return Err(format!("rejoin from unknown worker {w}"));
                    }
                    // Sources learn the new port and the replay cursors
                    // *before* the worker starts accepting, so their
                    // re-dial always finds the listener bound.
                    let mut bytes = Vec::new();
                    encode_control_frame(
                        &ControlFrame::Rejoin {
                            worker,
                            data_port,
                            cursors,
                        },
                        &mut bytes,
                    );
                    for stream in source_streams.iter_mut() {
                        stream
                            .write_all(&bytes)
                            .map_err(|e| io_err("forwarding rejoin to source", e))?;
                    }
                    stream
                        .write_all(&start_bytes)
                        .map_err(|e| io_err("restarting respawned worker", e))?;
                    stream
                        .set_read_timeout(None)
                        .map_err(|e| io_err("clearing control timeout", e))?;
                    sup.conn_gen[w] += 1;
                    spawn_control_reader(
                        NodeRole::Worker,
                        w,
                        sup.conn_gen[w],
                        reader,
                        event_tx.clone(),
                    );
                    sup.last_seen[w] = Instant::now();
                    sup.state[w] = WState::Running;
                    drop(stream); // workers need nothing further
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(io_err("accepting control connection", e)),
            }
        }

        match event_rx.recv_timeout(Duration::from_millis(200)) {
            Ok(SupervisorEvent::Frame { role, index, frame }) => match *frame {
                ControlFrame::SourceReport {
                    source,
                    sent,
                    controller_events,
                    trace,
                    transport,
                } => {
                    let slot = source_reports
                        .get_mut(source as usize)
                        .ok_or("source report index out of range")?;
                    sent_total += sent;
                    *slot = Some(SourceStageReport {
                        sent,
                        controller_events,
                        trace,
                        transport,
                    });
                }
                ControlFrame::WorkerReport(report) => {
                    let w = report.worker as usize;
                    let slot = worker_reports
                        .get_mut(w)
                        .ok_or("worker report index out of range")?;
                    *slot = Some(worker_report_from_wire(report));
                    sup.state[w] = WState::Done;
                }
                ControlFrame::AggregatorReport(report) => {
                    let slot = aggregators_reported
                        .get_mut(report.aggregator as usize)
                        .ok_or("aggregator report index out of range")?;
                    *slot = true;
                    aggregator_reports.push(aggregator_report_from_wire(report));
                }
                ControlFrame::Heartbeat { worker } => {
                    if let Some(seen) = sup.last_seen.get_mut(worker as usize) {
                        *seen = Instant::now();
                    }
                }
                ControlFrame::Metrics(snap) => {
                    if let Some(writer) = metrics_writer.as_mut() {
                        writeln!(writer, "{}", snap.to_json())
                            .map_err(|e| io_err("writing metrics line", e))?;
                    }
                    if snap.finished {
                        match metrics_rollup.as_mut() {
                            Some(rollup) => rollup.merge(&snap),
                            None => {
                                let mut rollup = snap.clone();
                                rollup.stage = snapshot_stage::CLUSTER;
                                rollup.instance = 0;
                                metrics_rollup = Some(rollup);
                            }
                        }
                    }
                }
                _ => {
                    return Err(format!(
                        "unexpected control frame from {} {index}",
                        role.name()
                    ))
                }
            },
            Ok(SupervisorEvent::Closed {
                role,
                index,
                gen,
                detail,
            }) => match role {
                NodeRole::Worker if ft => {
                    // Only the *current* connection closing while the
                    // worker was thought alive is a death signal.
                    if gen == sup.conn_gen[index] && matches!(sup.state[index], WState::Running) {
                        handle_worker_death(
                            index,
                            &mut sup,
                            &mut worker_reports,
                            children,
                            node_exe,
                            &control_addr,
                            &ckpt_dir,
                            options.metrics_interval,
                            &mut source_streams,
                            &mut aggregator_streams,
                        )?;
                    }
                }
                NodeRole::Worker => {
                    if !matches!(sup.state[index], WState::Done) {
                        return Err(format!("worker {index}: {detail}"));
                    }
                }
                NodeRole::Source => {
                    if source_reports.get(index).is_some_and(Option::is_none) {
                        return Err(format!("source {index}: {detail}"));
                    }
                }
                NodeRole::Aggregator => {
                    if !aggregators_reported.get(index).copied().unwrap_or(true) {
                        return Err(format!("aggregator {index}: {detail}"));
                    }
                }
            },
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if ft {
                    // Liveness sweep: child exits and heartbeat silence.
                    for w in 0..spec.workers() {
                        match sup.state[w] {
                            WState::Running => {
                                let exited = children
                                    .lock()
                                    .expect("children poisoned")
                                    .get_mut(sup.slot[w])
                                    .and_then(|c| c.try_wait().ok().flatten())
                                    .is_some();
                                if exited || sup.last_seen[w].elapsed() > options.heartbeat_timeout
                                {
                                    handle_worker_death(
                                        w,
                                        &mut sup,
                                        &mut worker_reports,
                                        children,
                                        node_exe,
                                        &control_addr,
                                        &ckpt_dir,
                                        options.metrics_interval,
                                        &mut source_streams,
                                        &mut aggregator_streams,
                                    )?;
                                }
                            }
                            WState::Awaiting(since) => {
                                let exited = children
                                    .lock()
                                    .expect("children poisoned")
                                    .get_mut(sup.slot[w])
                                    .and_then(|c| c.try_wait().ok().flatten())
                                    .is_some();
                                if exited {
                                    // The respawn died before rejoining —
                                    // burn more budget or exclude.
                                    handle_worker_death(
                                        w,
                                        &mut sup,
                                        &mut worker_reports,
                                        children,
                                        node_exe,
                                        &control_addr,
                                        &ckpt_dir,
                                        options.metrics_interval,
                                        &mut source_streams,
                                        &mut aggregator_streams,
                                    )?;
                                } else if since.elapsed() > CONTROL_TIMEOUT {
                                    return Err(format!("worker {w} respawned but never rejoined"));
                                }
                            }
                            WState::Done | WState::Excluded => {}
                        }
                    }
                    // Sources and aggregators have no respawn path: an
                    // unreported one failing is fatal.
                    {
                        let mut kids = children.lock().expect("children poisoned");
                        for (s, report) in source_reports.iter().enumerate() {
                            if report.is_some() {
                                continue;
                            }
                            if let Some(Some(status)) =
                                kids.get_mut(s).map(|c| c.try_wait().ok().flatten())
                            {
                                if !status.success() {
                                    return Err(format!("source {s} failed ({status})"));
                                }
                            }
                        }
                        let agg_base = spec.sources() + spec.workers();
                        for (a, &reported) in aggregators_reported.iter().enumerate() {
                            if reported {
                                continue;
                            }
                            if let Some(Some(status)) = kids
                                .get_mut(agg_base + a)
                                .map(|c| c.try_wait().ok().flatten())
                            {
                                if !status.success() {
                                    return Err(format!("aggregator {a} failed ({status})"));
                                }
                            }
                        }
                    }
                    if released
                        && children
                            .lock()
                            .expect("children poisoned")
                            .iter_mut()
                            .all(|c| matches!(c.try_wait(), Ok(Some(_))))
                    {
                        drained_ticks += 1;
                        if drained_ticks > 10 {
                            return Err(
                                "every node process exited but reports never arrived".into()
                            );
                        }
                    }
                } else {
                    check_no_child_failed(&mut children.lock().expect("children poisoned"))?;
                    if children
                        .lock()
                        .expect("children poisoned")
                        .iter_mut()
                        .all(|c| matches!(c.try_wait(), Ok(Some(_))))
                    {
                        drained_ticks += 1;
                        if drained_ticks > 10 {
                            return Err(
                                "every node process exited but reports never arrived".into()
                            );
                        }
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return Err("supervisor event channel closed unexpectedly".into());
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let source_reports: Vec<SourceStageReport> = source_reports
        .into_iter()
        .enumerate()
        .map(|(s, r)| r.ok_or(format!("no report from source {s}")))
        .collect::<Result<_, _>>()?;
    let worker_reports: Vec<WorkerStageReport> = worker_reports
        .into_iter()
        .enumerate()
        .map(|(w, r)| r.ok_or(format!("no report from worker {w}")))
        .collect::<Result<_, _>>()?;

    // Close the metrics stream: the rollup is always its last line, so a
    // consumer can `tail -n 1` for the cluster totals.
    if let Some(mut writer) = metrics_writer.take() {
        if let Some(rollup) = &metrics_rollup {
            writeln!(writer, "{}", rollup.to_json())
                .map_err(|e| io_err("writing metrics rollup", e))?;
        }
        writer
            .flush()
            .map_err(|e| io_err("flushing metrics.jsonl", e))?;
    }

    let WindowedRun { result, windows } = assemble_result(
        &plan,
        &CountAggregate,
        source_reports,
        worker_reports,
        aggregator_reports,
        elapsed,
    );
    // A degraded run *loses* the excluded worker's unshipped tuples by
    // design; the conservation check only holds for healthy runs.
    if sup.degraded.is_empty() && sent_total != result.processed {
        return Err(format!(
            "lost tuples: sources sent {} but workers processed {}",
            sent_total, result.processed
        ));
    }
    Ok(OrchestratorOutcome {
        result,
        windows,
        sent_total,
        degraded: sup.degraded,
        metrics: metrics_rollup,
    })
}

/// The single-threaded exact reference for the spec's run — what the merged
/// windowed counts of a correct distributed run must equal bit for bit.
pub fn exact_reference(spec: &ClusterSpec) -> BTreeMap<WindowId, CountPartial> {
    match &spec.run {
        RunSpec::Engine(cfg) => exact_windowed_counts(cfg),
        RunSpec::Scenario(cfg) => exact_scenario_windowed_counts(&cfg.scenario),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_mapping_is_monotone_and_close_to_now() {
        let now_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .as_micros() as u64;
        let epoch = epoch_from_unix_micros(now_unix);
        // The mapped instant is within a second of "now" on any sane clock.
        assert!(epoch.elapsed() < Duration::from_secs(1));
        let earlier = epoch_from_unix_micros(now_unix.saturating_sub(5_000_000));
        assert!(earlier <= epoch);
    }

    #[test]
    fn rle_tracker_round_trip() {
        let mut tracker = LatencyTracker::new();
        tracker.record_many_us(7, 300);
        tracker.record_us(12);
        tracker.record_many_us(7, 2);
        let runs = crate::wire::rle_encode(tracker.samples());
        assert_eq!(runs, vec![(7, 300), (12, 1), (7, 2)]);
        assert_eq!(tracker_from_rle(&runs).samples(), tracker.samples());
    }

    /// One serial test for the env knob (parallel tests racing on
    /// `set_var` would be flaky): unset → default, well-formed → parsed,
    /// malformed → panic naming the variable and the bad value.
    #[test]
    fn heartbeat_timeout_env_parses_or_fails_fast() {
        let var = "SLB_HEARTBEAT_TIMEOUT_MS";
        let saved = std::env::var_os(var);
        std::env::remove_var(var);
        assert_eq!(heartbeat_timeout_from_env(), DEFAULT_HEARTBEAT_TIMEOUT);
        std::env::set_var(var, "750");
        assert_eq!(heartbeat_timeout_from_env(), Duration::from_millis(750));
        std::env::set_var(var, "5s");
        let panic = std::panic::catch_unwind(heartbeat_timeout_from_env)
            .expect_err("a malformed timeout must fail fast, not fall back to the default");
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into());
        assert!(
            message.contains("SLB_HEARTBEAT_TIMEOUT_MS") && message.contains("5s"),
            "panic must name the variable and the bad value, got: {message}"
        );
        match saved {
            Some(value) => std::env::set_var(var, value),
            None => std::env::remove_var(var),
        }
    }

    #[test]
    fn worker_report_wire_round_trip_preserves_recovery() {
        let mut report = WorkerStageReport {
            processed: 100,
            windows_closed: 4,
            state_keys: 12,
            checkpoints: 4,
            ..WorkerStageReport::default()
        };
        report.recovery = RecoveryMetrics {
            restores: 1,
            replayed_items: 37,
            duplicates_dropped: 5,
            replay_requests: 2,
            transport_errors: 3,
        };
        let wire = worker_report_to_wire(7, &report);
        assert_eq!(wire.worker, 7);
        let back = worker_report_from_wire(wire);
        assert_eq!(back.recovery, report.recovery);
        assert_eq!(back.processed, report.processed);
        assert_eq!(back.checkpoints, report.checkpoints);
    }
}
