//! The `slb-node` roles and the orchestrator that wires them together.
//!
//! A multi-process run has one process per stage instance — `S` sources,
//! `W` workers, `A` aggregators — plus the orchestrator. Nothing about the
//! dataflow changes: each node process runs *the same stage function* the
//! in-process engine threads run ([`run_source_stage`], [`run_worker_stage`],
//! [`run_aggregator_stage`]), against TCP endpoints instead of crossbeam
//! ones, over a [`StagePlan`](slb_engine::StagePlan) every process
//! resolves locally from the same
//! binary-encoded config. That is the whole equivalence argument: the merged
//! windowed counts cannot depend on process placement because no routing,
//! windowing, or merging code branches on it.
//!
//! ## Control plane
//!
//! ```text
//! orchestrator                               node (role, index)
//!      │   spawn `slb-node <role> --index i --control 127.0.0.1:P`
//!      │ ◀────────────── Hello { role, index, data_port } ──  (workers and
//!      │                                                       aggregators
//!      │                                                       bind first)
//!      │ ── Start { epoch, worker_ports, agg_ports, config } ▶
//!      │                      sources dial workers, workers dial
//!      │                      aggregators, stages run to completion
//!      │ ◀─── SourceReport / WorkerReport / AggregatorReport ──
//! ```
//!
//! Reports are `Instant`-free (spans and latencies travel as µs-since-epoch
//! and RLE histograms); the orchestrator rebuilds the stage reports and
//! calls the engine's own [`assemble_result`] — the same merge the
//! in-process runner uses — then optionally checks the merged counts against
//! the single-threaded exact reference.
//!
//! `slb-node` runs the **count aggregation** ([`CountAggregate`]): exact
//! merges are what make "a distributed run equals the reference" an equality
//! statement rather than a statistical one.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use slb_core::CountAggregate;
use slb_engine::transport::{capacity_in_batches, partial_channel_capacity};
use slb_engine::windows::source_stream;
use slb_engine::{
    assemble_result, exact_scenario_windowed_counts, exact_windowed_counts, run_aggregator_stage,
    run_source_stage, run_worker_stage, AggregatorStageReport, EngineResult, LatencyTracker,
    RecoveryMetrics, WindowId, WindowedRun, WorkerStageReport,
};
use slb_workloads::KeyId;

use crate::cluster::{decode_run_spec, encode_run_spec, ClusterSpec, NodeRole, RunSpec};
use crate::tcp::{TcpPartialReceiver, TcpPartialSender, TcpTupleReceiver, TcpTupleSender};
use crate::wire::{
    encode_control_frame, read_frame, rle_encode, AggregatorReportWire, ControlFrame, WireError,
    WorkerReportWire,
};

/// How long the control-plane *handshake* (connect + Hello) may take before
/// the orchestrator declares the cluster wedged and tears it down. Report
/// reads after `Start` are deliberately unbounded — a healthy run's duration
/// scales with its config — with liveness watched through the child
/// processes instead.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(120);

/// The count partial `slb-node` ships on its worker → aggregator hop.
type CountPartial = HashMap<KeyId, u64>;

fn io_err(what: &str, e: impl std::fmt::Display) -> String {
    format!("{what}: {e}")
}

/// Writes one control frame to `stream`.
fn send_control(stream: &mut TcpStream, frame: &ControlFrame) -> Result<(), String> {
    let mut buf = Vec::new();
    encode_control_frame(frame, &mut buf);
    stream
        .write_all(&buf)
        .map_err(|e| io_err("control write failed", e))
}

/// Reads one control frame from `reader`.
fn recv_control(reader: &mut BufReader<TcpStream>) -> Result<ControlFrame, String> {
    let mut scratch = Vec::new();
    match read_frame(reader, &mut scratch) {
        Ok(true) => crate::wire::decode_control_payload(&scratch)
            .map_err(|e| io_err("control frame malformed", e)),
        Ok(false) => Err("control peer closed the connection".into()),
        Err(WireError::Io(e)) => Err(io_err("control read failed", e)),
        Err(e) => Err(io_err("control read failed", e)),
    }
}

/// Maps the orchestrator's wall-clock epoch onto this process's monotonic
/// clock. Same-machine clock reads make this accurate to the syscall jitter;
/// it anchors *metrics* only — counts never depend on it.
fn epoch_from_unix_micros(epoch_unix_micros: u64) -> Instant {
    let now_instant = Instant::now();
    let now_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_micros() as u64;
    if now_unix >= epoch_unix_micros {
        now_instant
            .checked_sub(Duration::from_micros(now_unix - epoch_unix_micros))
            .unwrap_or(now_instant)
    } else {
        now_instant + Duration::from_micros(epoch_unix_micros - now_unix)
    }
}

fn dial(port: u16) -> Result<TcpStream, String> {
    TcpStream::connect(("127.0.0.1", port)).map_err(|e| io_err("dialing data port failed", e))
}

fn tracker_from_rle(runs: &[(u64, u64)]) -> LatencyTracker {
    let mut tracker = LatencyTracker::new();
    for &(value, count) in runs {
        tracker.record_many_us(value, count);
    }
    tracker
}

/// Runs one node process: handshake, data-plane wiring, the stage itself,
/// and the end-of-run report. Blocks until the stage completes.
pub fn run_node(role: NodeRole, index: usize, control: &str) -> Result<(), String> {
    let mut control_stream =
        TcpStream::connect(control).map_err(|e| io_err("connecting to orchestrator", e))?;
    // Workers and aggregators bind their data listener *before* saying
    // hello, so the Start frame can carry every port.
    let listener = match role {
        NodeRole::Source => None,
        NodeRole::Worker | NodeRole::Aggregator => Some(
            TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_err("binding data listener", e))?,
        ),
    };
    let data_port = listener
        .as_ref()
        .map(|l| l.local_addr().map(|a| a.port()))
        .transpose()
        .map_err(|e| io_err("reading listener address", e))?
        .unwrap_or(0);
    send_control(
        &mut control_stream,
        &ControlFrame::Hello {
            role: role.as_u8(),
            index: index as u32,
            data_port,
        },
    )?;
    let mut control_reader = BufReader::new(
        control_stream
            .try_clone()
            .map_err(|e| io_err("cloning control stream", e))?,
    );
    let ControlFrame::Start {
        epoch_unix_micros,
        worker_ports,
        aggregator_ports,
        config,
    } = recv_control(&mut control_reader)?
    else {
        return Err("expected Start frame".into());
    };
    let run = decode_run_spec(&config).map_err(|e| io_err("decoding run config", e))?;
    let spec = ClusterSpec { run };
    let plan = spec.stage_plan();
    let epoch = epoch_from_unix_micros(epoch_unix_micros);

    match role {
        NodeRole::Source => {
            let mut senders = Vec::with_capacity(worker_ports.len());
            for &port in &worker_ports {
                senders.push(TcpTupleSender::new(dial(port)?, epoch));
            }
            let sent = match &spec.run {
                RunSpec::Engine(cfg) => {
                    run_source_stage(&plan, index, |_phase| source_stream(cfg, index), &senders)
                }
                RunSpec::Scenario(cfg) => run_source_stage(
                    &plan,
                    index,
                    |phase| cfg.scenario.phase_stream(phase, index),
                    &senders,
                ),
            };
            drop(senders); // EOF to every worker
            send_control(
                &mut control_stream,
                &ControlFrame::SourceReport {
                    source: index as u32,
                    sent,
                },
            )
        }
        NodeRole::Worker => {
            let listener = listener.expect("workers bind a listener");
            let mut incoming = Vec::with_capacity(plan.sources);
            for _ in 0..plan.sources {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| io_err("accepting source connection", e))?;
                incoming.push(stream);
            }
            let receiver = TcpTupleReceiver::spawn(
                incoming,
                epoch,
                capacity_in_batches(plan.queue_capacity, plan.batch_size),
            );
            let mut partial_senders: Vec<TcpPartialSender<CountPartial>> =
                Vec::with_capacity(aggregator_ports.len());
            for &port in &aggregator_ports {
                partial_senders.push(TcpPartialSender::new(dial(port)?, epoch));
            }
            let report = run_worker_stage(
                &plan,
                index,
                epoch,
                &CountAggregate,
                receiver,
                &partial_senders,
            );
            drop(partial_senders); // EOF to every aggregator
            send_control(
                &mut control_stream,
                &ControlFrame::WorkerReport(WorkerReportWire {
                    worker: index as u32,
                    processed: report.processed,
                    state_keys: report.state_keys,
                    windows_closed: report.windows_closed,
                    phase_counts: report.phase_counts,
                    phase_spans: report.phase_spans,
                    phase_latencies: report
                        .phase_latencies
                        .iter()
                        .map(|t| rle_encode(t.samples()))
                        .collect(),
                    restores: report.recovery.restores,
                    replayed_items: report.recovery.replayed_items,
                    duplicates_dropped: report.recovery.duplicates_dropped,
                    replay_requests: report.recovery.replay_requests,
                    checkpoints: report.checkpoints,
                }),
            )
        }
        NodeRole::Aggregator => {
            let listener = listener.expect("aggregators bind a listener");
            let mut incoming = Vec::with_capacity(plan.spawned_workers);
            for _ in 0..plan.spawned_workers {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| io_err("accepting worker connection", e))?;
                incoming.push(stream);
            }
            let receiver = TcpPartialReceiver::<CountPartial>::spawn(
                incoming,
                epoch,
                partial_channel_capacity(plan.spawned_workers),
            );
            let report = run_aggregator_stage(plan.spawned_workers, &CountAggregate, receiver);
            send_control(
                &mut control_stream,
                &ControlFrame::AggregatorReport(AggregatorReportWire {
                    aggregator: index as u32,
                    merged: report.merged,
                    latency: rle_encode(report.latencies.samples()),
                    finalized: report.finalized.into_iter().collect(),
                }),
            )
        }
    }
}

/// What a completed multi-process run hands back.
pub struct OrchestratorOutcome {
    /// The assembled measurements, merged exactly as the in-process runner
    /// merges its thread reports.
    pub result: EngineResult,
    /// Final merged per-window per-key counts.
    pub windows: BTreeMap<WindowId, CountPartial>,
    /// Tuples the sources reported sending (must equal
    /// `result.processed`).
    pub sent_total: u64,
}

/// Errors if any child process has already exited — used during the
/// handshake, where *no* node may terminate yet (they have not reported).
fn check_no_child_exited(children: &mut [Child]) -> Result<(), String> {
    for child in children.iter_mut() {
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!(
                "a node process exited prematurely ({status}) before connecting"
            ));
        }
    }
    Ok(())
}

/// Errors if any child process exited *unsuccessfully* — used while waiting
/// for reports, where a clean exit is legitimate once a node has reported.
fn check_no_child_failed(children: &mut [Child]) -> Result<(), String> {
    for child in children.iter_mut() {
        if let Ok(Some(status)) = child.try_wait() {
            if !status.success() {
                return Err(format!("a node process failed ({status})"));
            }
        }
    }
    Ok(())
}

/// One connected child on the control plane.
struct NodeConn {
    role: NodeRole,
    index: usize,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Spawns the node processes for `spec`, wires the control plane, runs the
/// cluster to completion, and merges the reports. `node_exe` is the
/// `slb-node` binary to spawn (usually `std::env::current_exe()`).
pub fn orchestrate(spec: &ClusterSpec, node_exe: &Path) -> Result<OrchestratorOutcome, String> {
    let mut children: Vec<Child> = Vec::new();
    let outcome = orchestrate_inner(spec, node_exe, &mut children);
    if outcome.is_err() {
        for child in &mut children {
            let _ = child.kill();
        }
    }
    for child in &mut children {
        let _ = child.wait();
    }
    outcome
}

fn orchestrate_inner(
    spec: &ClusterSpec,
    node_exe: &Path,
    children: &mut Vec<Child>,
) -> Result<OrchestratorOutcome, String> {
    let plan = spec.stage_plan();
    let control_listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_err("binding control listener", e))?;
    let control_addr: SocketAddr = control_listener
        .local_addr()
        .map_err(|e| io_err("reading control address", e))?;

    let roles = [
        (NodeRole::Source, spec.sources()),
        (NodeRole::Worker, spec.workers()),
        (NodeRole::Aggregator, spec.aggregators()),
    ];
    for (role, count) in roles {
        for index in 0..count {
            let child = Command::new(node_exe)
                .arg(role.name())
                .arg("--index")
                .arg(index.to_string())
                .arg("--control")
                .arg(control_addr.to_string())
                .spawn()
                .map_err(|e| io_err("spawning node process", e))?;
            children.push(child);
        }
    }
    let total_nodes = children.len();

    // Collect every hello; remember each node's control connection and the
    // data port it bound. The accept loop is non-blocking with a deadline
    // and a child-liveness poll: a node that dies before connecting (bind
    // failure, OOM kill, startup crash) must turn into an error, not an
    // accept that blocks forever.
    control_listener
        .set_nonblocking(true)
        .map_err(|e| io_err("setting control listener non-blocking", e))?;
    let hello_deadline = Instant::now() + CONTROL_TIMEOUT;
    let mut conns: Vec<NodeConn> = Vec::with_capacity(total_nodes);
    let mut ports: HashMap<(u8, u32), u16> = HashMap::new();
    while conns.len() < total_nodes {
        let stream = match control_listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                check_no_child_exited(children)?;
                if Instant::now() > hello_deadline {
                    return Err(format!(
                        "timed out waiting for node hellos ({}/{total_nodes} connected)",
                        conns.len()
                    ));
                }
                thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(e) => return Err(io_err("accepting control connection", e)),
        };
        stream
            .set_nonblocking(false)
            .map_err(|e| io_err("setting control stream blocking", e))?;
        // Hellos arrive immediately after connect; a bounded read here is
        // safe and converts a half-connected node into an error.
        stream
            .set_read_timeout(Some(CONTROL_TIMEOUT))
            .map_err(|e| io_err("setting control timeout", e))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| io_err("cloning control stream", e))?,
        );
        let ControlFrame::Hello {
            role,
            index,
            data_port,
        } = recv_control(&mut reader)?
        else {
            return Err("expected Hello frame".into());
        };
        ports.insert((role, index), data_port);
        conns.push(NodeConn {
            role: NodeRole::from_u8(role).map_err(|e| e.to_string())?,
            index: index as usize,
            stream,
            reader,
        });
    }

    let port_of = |role: NodeRole, index: usize| -> Result<u16, String> {
        ports
            .get(&(role.as_u8(), index as u32))
            .copied()
            .ok_or_else(|| format!("no hello from {} {index}", role.name()))
    };
    let worker_ports: Vec<u16> = (0..spec.workers())
        .map(|w| port_of(NodeRole::Worker, w))
        .collect::<Result<_, _>>()?;
    let aggregator_ports: Vec<u16> = (0..spec.aggregators())
        .map(|a| port_of(NodeRole::Aggregator, a))
        .collect::<Result<_, _>>()?;

    let epoch_unix_micros = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_micros() as u64;
    let start_frame = ControlFrame::Start {
        epoch_unix_micros,
        worker_ports,
        aggregator_ports,
        config: encode_run_spec(&spec.run),
    };
    for conn in &mut conns {
        send_control(&mut conn.stream, &start_frame)?;
    }
    let started = Instant::now();

    // One report per node. A healthy run may legitimately outlast any fixed
    // read timeout (the run duration scales with the config), so the report
    // reads are *unbounded* — one blocking reader thread per connection —
    // and liveness is watched through the child processes instead: a child
    // that dies without reporting fails the run; children that already
    // reported are free to exit.
    for conn in &conns {
        conn.reader
            .get_ref()
            .set_read_timeout(None)
            .map_err(|e| io_err("clearing control timeout", e))?;
    }
    let (report_tx, report_rx) = std::sync::mpsc::channel();
    for conn in conns {
        let tx = report_tx.clone();
        let NodeConn {
            role,
            index,
            stream,
            mut reader,
        } = conn;
        thread::spawn(move || {
            let result = recv_control(&mut reader);
            let _ = tx.send((role, index, result));
            drop(stream);
        });
    }
    drop(report_tx);

    let mut sent_total = 0u64;
    let mut worker_reports: Vec<Option<WorkerStageReport>> =
        (0..spec.workers()).map(|_| None).collect();
    let mut aggregator_reports: Vec<AggregatorStageReport<CountPartial>> = Vec::new();
    let mut outstanding = total_nodes;
    // Ticks observed with every child exited but reports still missing: the
    // grace period for reports already in the socket buffers.
    let mut drained_ticks = 0u32;
    while outstanding > 0 {
        let (role, index, frame) = match report_rx.recv_timeout(Duration::from_secs(1)) {
            Ok(message) => message,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                check_no_child_failed(children)?;
                if children
                    .iter_mut()
                    .all(|c| matches!(c.try_wait(), Ok(Some(_))))
                {
                    drained_ticks += 1;
                    if drained_ticks > 10 {
                        return Err(format!(
                            "every node process exited but {outstanding} report(s) \
                                 never arrived"
                        ));
                    }
                }
                continue;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return Err(format!(
                    "control connections closed with {outstanding} report(s) missing"
                ))
            }
        };
        let frame = frame.map_err(|e| format!("{} {index}: {e}", role.name()))?;
        outstanding -= 1;
        match frame {
            ControlFrame::SourceReport { sent, .. } => sent_total += sent,
            ControlFrame::WorkerReport(report) => {
                let slot = worker_reports
                    .get_mut(report.worker as usize)
                    .ok_or("worker report index out of range")?;
                *slot = Some(WorkerStageReport {
                    processed: report.processed,
                    phase_counts: report.phase_counts,
                    phase_latencies: report
                        .phase_latencies
                        .iter()
                        .map(|runs| tracker_from_rle(runs))
                        .collect(),
                    state_keys: report.state_keys,
                    windows_closed: report.windows_closed,
                    phase_spans: report.phase_spans,
                    recovery: RecoveryMetrics {
                        restores: report.restores,
                        replayed_items: report.replayed_items,
                        duplicates_dropped: report.duplicates_dropped,
                        replay_requests: report.replay_requests,
                    },
                    checkpoints: report.checkpoints,
                });
            }
            ControlFrame::AggregatorReport(report) => {
                aggregator_reports.push(AggregatorStageReport {
                    finalized: report.finalized.into_iter().collect(),
                    latencies: tracker_from_rle(&report.latency),
                    merged: report.merged,
                    // TCP delivers reliably and process respawn is not
                    // simulated across machines, so multi-process
                    // aggregators never see duplicate partials.
                    duplicates_dropped: 0,
                });
            }
            _ => {
                return Err(format!(
                    "unexpected control frame from {} {index}",
                    role.name()
                ))
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let worker_reports: Vec<WorkerStageReport> = worker_reports
        .into_iter()
        .enumerate()
        .map(|(w, r)| r.ok_or(format!("no report from worker {w}")))
        .collect::<Result<_, _>>()?;

    let WindowedRun { result, windows } = assemble_result(
        &plan,
        &CountAggregate,
        worker_reports,
        aggregator_reports,
        elapsed,
    );
    if sent_total != result.processed {
        return Err(format!(
            "lost tuples: sources sent {} but workers processed {}",
            sent_total, result.processed
        ));
    }
    Ok(OrchestratorOutcome {
        result,
        windows,
        sent_total,
    })
}

/// The single-threaded exact reference for the spec's run — what the merged
/// windowed counts of a correct distributed run must equal bit for bit.
pub fn exact_reference(spec: &ClusterSpec) -> BTreeMap<WindowId, CountPartial> {
    match &spec.run {
        RunSpec::Engine(cfg) => exact_windowed_counts(cfg),
        RunSpec::Scenario(cfg) => exact_scenario_windowed_counts(&cfg.scenario),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_mapping_is_monotone_and_close_to_now() {
        let now_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .as_micros() as u64;
        let epoch = epoch_from_unix_micros(now_unix);
        // The mapped instant is within a second of "now" on any sane clock.
        assert!(epoch.elapsed() < Duration::from_secs(1));
        let earlier = epoch_from_unix_micros(now_unix.saturating_sub(5_000_000));
        assert!(earlier <= epoch);
    }

    #[test]
    fn rle_tracker_round_trip() {
        let mut tracker = LatencyTracker::new();
        tracker.record_many_us(7, 300);
        tracker.record_us(12);
        tracker.record_many_us(7, 2);
        let runs = rle_encode(tracker.samples());
        assert_eq!(runs, vec![(7, 300), (12, 1), (7, 2)]);
        assert_eq!(tracker_from_rle(&runs).samples(), tracker.samples());
    }
}
