//! `slb-node` — one process of a distributed SLB topology, or the
//! orchestrator that runs a whole cluster.
//!
//! ```text
//! slb-node orchestrate --spec cluster.spec [--verify]
//! slb-node source     --index N --control HOST:PORT
//! slb-node worker     --index N --control HOST:PORT
//! slb-node aggregator --index N --control HOST:PORT
//! ```
//!
//! `orchestrate` parses the text cluster spec (see `docs/DISTRIBUTED.md`),
//! spawns one child process per source/worker/aggregator (re-invoking this
//! same binary in a role mode), wires the sockets through the control
//! plane, runs the configured `EngineConfig`/`ScenarioConfig` to
//! completion, and prints the merged result. With `--verify` it also
//! replays the run's single-threaded exact reference and reports
//! `exact-reference=MATCH` (exit 0) or `MISMATCH` (exit 1).
//!
//! The role modes are not meant to be typed by hand — the orchestrator
//! spawns them — but nothing stops a future launcher (or a human with three
//! terminals) from wiring a cluster manually.

use std::process::exit;

use slb_net::cluster::{ClusterSpec, NodeRole};
use slb_net::node::{exact_reference, orchestrate, run_node};

const USAGE: &str = "usage: slb-node orchestrate --spec FILE [--verify]
       slb-node (source|worker|aggregator) --index N --control HOST:PORT";

fn fail(message: &str) -> ! {
    eprintln!("slb-node: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        fail("missing mode");
    };
    match mode.as_str() {
        "--help" | "-h" => println!("{USAGE}"),
        "orchestrate" => run_orchestrate(&args[1..]),
        role => match role.parse::<NodeRole>() {
            Ok(role) => run_role(role, &args[1..]),
            Err(_) => fail(&format!("unknown mode: {role}")),
        },
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1))
        .map(String::as_str)
}

fn run_role(role: NodeRole, args: &[String]) {
    let Some(index) = flag_value(args, "--index").and_then(|v| v.parse::<usize>().ok()) else {
        fail("role modes need --index N");
    };
    let Some(control) = flag_value(args, "--control") else {
        fail("role modes need --control HOST:PORT");
    };
    if let Err(message) = run_node(role, index, control) {
        eprintln!("slb-node {} {index}: {message}", role.name());
        exit(1);
    }
}

fn run_orchestrate(args: &[String]) {
    let Some(spec_path) = flag_value(args, "--spec") else {
        fail("orchestrate needs --spec FILE");
    };
    let verify = args.iter().any(|a| a == "--verify");
    let text = match std::fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(e) => fail(&format!("reading {spec_path}: {e}")),
    };
    let spec = match ClusterSpec::parse(&text) {
        Ok(spec) => spec,
        Err(e) => fail(&format!("parsing {spec_path}: {e}")),
    };
    let node_exe = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => fail(&format!("locating own binary: {e}")),
    };
    println!(
        "slb-node orchestrate: {} sources, {} workers, {} aggregators over TCP loopback",
        spec.sources(),
        spec.workers(),
        spec.aggregators()
    );
    let outcome = match orchestrate(&spec, &node_exe) {
        Ok(outcome) => outcome,
        Err(message) => {
            eprintln!("slb-node orchestrate: {message}");
            exit(1);
        }
    };
    let r = &outcome.result;
    println!(
        "scheme={} processed={} sent={} windows={} elapsed={:.3}s throughput={:.0} ev/s",
        r.scheme, r.processed, outcome.sent_total, r.windows, r.elapsed_secs, r.throughput_eps
    );
    println!(
        "imbalance={:.4} p50={}us p99={}us worker_counts={:?}",
        r.imbalance, r.latency.p50_us, r.latency.p99_us, r.worker_counts
    );
    for phase in &r.phases {
        println!(
            "phase {}: workers={} tuples={} imbalance={:.4}",
            phase.phase, phase.workers, phase.stage.items, phase.imbalance
        );
    }
    if verify {
        let reference = exact_reference(&spec);
        match slb_engine::diff_windows(&outcome.windows, &reference) {
            None => println!("exact-reference=MATCH ({} windows)", reference.len()),
            Some(first_divergence) => {
                println!("exact-reference=MISMATCH ({first_divergence})");
                exit(1);
            }
        }
    }
}
