//! `slb-node` — one process of a distributed SLB topology, or the
//! orchestrator that runs a whole cluster.
//!
//! ```text
//! slb-node orchestrate --spec cluster.spec [--verify] [--fault-tolerant]
//!                      [--respawn-budget N] [--ckpt-dir DIR]
//!                      [--kill-worker W@MS] [--crash-worker W@N]
//!                      [--metrics-dir DIR] [--metrics-interval-ms MS]
//! slb-node source     --index N --control HOST:PORT [--fault-tolerant]
//! slb-node worker     --index N --control HOST:PORT [--fault-tolerant]
//!                      [--rejoin] [--ckpt-dir DIR]
//! slb-node aggregator --index N --control HOST:PORT [--fault-tolerant]
//! ```
//!
//! `orchestrate` parses the text cluster spec (see `docs/DISTRIBUTED.md`),
//! spawns one child process per source/worker/aggregator (re-invoking this
//! same binary in a role mode), wires the sockets through the control
//! plane, runs the configured `EngineConfig`/`ScenarioConfig` to
//! completion, and prints the merged result. With `--verify` it also
//! replays the run's single-threaded exact reference and reports
//! `exact-reference=MATCH` (exit 0) or `MISMATCH` (exit 1).
//!
//! With `--fault-tolerant` the orchestrator supervises the workers —
//! durable checkpoints, heartbeats, respawn-with-rejoin, exclusion once the
//! respawn budget runs out (see `docs/FAULTS.md`). `--kill-worker W@MS` is
//! the built-in fault injector: it SIGKILLs worker `W` roughly `MS`
//! milliseconds after `Start`, which is how the process-kill test suite
//! exercises the whole recovery path end to end. `--crash-worker W@N` is its
//! deterministic sibling: worker `W` aborts itself at its `N`-th window
//! finalization, after shipping that window's partials but before the
//! durable save — the exact interleaving of the tail-window re-ship race,
//! so the recovery counters have a single predictable value.
//!
//! With `--metrics-dir DIR` the orchestrator appends every node's
//! [`MetricsSnapshot`](slb_telemetry::MetricsSnapshot) to
//! `DIR/metrics.jsonl` (one JSON object per line, cluster rollup last);
//! `--metrics-interval-ms MS` additionally makes fault-tolerant stages
//! stream periodic snapshots at that cadence (see `docs/OBSERVABILITY.md`).
//!
//! Diagnostics go to stderr through the `SLB_LOG` leveled logger
//! (`error|warn|info|debug`, default `info`); stdout stays reserved for the
//! machine-readable run report.
//!
//! The role modes are not meant to be typed by hand — the orchestrator
//! spawns them — but nothing stops a future launcher (or a human with three
//! terminals) from wiring a cluster manually.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use slb_net::cluster::{ClusterSpec, NodeRole};
use slb_net::node::{
    exact_reference, orchestrate_with, run_node_with, NodeOptions, OrchestrateOptions,
};
use slb_telemetry::log;

const USAGE: &str = "usage: slb-node orchestrate --spec FILE [--verify] [--fault-tolerant]
                [--respawn-budget N] [--ckpt-dir DIR] [--kill-worker W@MS]
                [--crash-worker W@N] [--metrics-dir DIR]
                [--metrics-interval-ms MS]
       slb-node (source|worker|aggregator) --index N --control HOST:PORT
                [--fault-tolerant] [--rejoin] [--ckpt-dir DIR]
                [--crash-after-closes N] [--metrics-interval-ms MS]";

fn fail(message: &str) -> ! {
    log::error("slb-node", message);
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    // Resolve `SLB_LOG` first so a malformed level fails at startup, not at
    // the first diagnostic mid-run.
    log::init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        fail("missing mode");
    };
    match mode.as_str() {
        "--help" | "-h" => println!("{USAGE}"),
        "orchestrate" => run_orchestrate(&args[1..]),
        role => match role.parse::<NodeRole>() {
            Ok(role) => run_role(role, &args[1..]),
            Err(_) => fail(&format!("unknown mode: {role}")),
        },
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1))
        .map(String::as_str)
}

/// Parses `--metrics-interval-ms MS`; `0` disables periodic snapshots, the
/// same convention as `SLB_METRICS_INTERVAL_MS`.
fn parse_metrics_interval(args: &[String]) -> Option<Duration> {
    flag_value(args, "--metrics-interval-ms").and_then(|v| match v.parse::<u64>() {
        Ok(0) => None,
        Ok(ms) => Some(Duration::from_millis(ms)),
        Err(_) => fail("--metrics-interval-ms needs an integer number of milliseconds"),
    })
}

fn run_role(role: NodeRole, args: &[String]) {
    let Some(index) = flag_value(args, "--index").and_then(|v| v.parse::<usize>().ok()) else {
        fail("role modes need --index N");
    };
    let Some(control) = flag_value(args, "--control") else {
        fail("role modes need --control HOST:PORT");
    };
    let options = NodeOptions {
        fault_tolerant: args.iter().any(|a| a == "--fault-tolerant"),
        rejoin: args.iter().any(|a| a == "--rejoin"),
        ckpt_dir: flag_value(args, "--ckpt-dir").map(PathBuf::from),
        crash_after_closes: flag_value(args, "--crash-after-closes").map(|v| {
            v.parse::<u64>()
                .unwrap_or_else(|_| fail("--crash-after-closes needs a positive integer"))
        }),
        metrics_interval: parse_metrics_interval(args),
    };
    if let Err(message) = run_node_with(role, index, control, &options) {
        log::error("slb-node", &format!("{} {index}: {message}", role.name()));
        exit(1);
    }
}

/// Parses `--kill-worker W@MS` / `--crash-worker W@N` into `(worker, u64)`.
fn parse_worker_at(value: &str) -> Option<(usize, u64)> {
    let (worker, delay) = value.split_once('@')?;
    Some((worker.parse().ok()?, delay.parse().ok()?))
}

fn run_orchestrate(args: &[String]) {
    let Some(spec_path) = flag_value(args, "--spec") else {
        fail("orchestrate needs --spec FILE");
    };
    let verify = args.iter().any(|a| a == "--verify");
    let mut options = OrchestrateOptions {
        fault_tolerant: args.iter().any(|a| a == "--fault-tolerant"),
        ckpt_dir: flag_value(args, "--ckpt-dir").map(PathBuf::from),
        metrics_dir: flag_value(args, "--metrics-dir").map(PathBuf::from),
        ..OrchestrateOptions::default()
    };
    if let Some(interval) = parse_metrics_interval(args) {
        options.metrics_interval = Some(interval);
    }
    if let Some(budget) = flag_value(args, "--respawn-budget") {
        match budget.parse::<u32>() {
            Ok(budget) => options.respawn_budget = budget,
            Err(_) => fail("--respawn-budget needs a non-negative integer"),
        }
    }
    if let Some(kill) = flag_value(args, "--kill-worker") {
        match parse_worker_at(kill) {
            Some(plan) => options.kill_worker = Some(plan),
            None => fail("--kill-worker needs W@MS (worker index @ delay in ms)"),
        }
    }
    if let Some(crash) = flag_value(args, "--crash-worker") {
        match parse_worker_at(crash) {
            Some((_, 0)) | None => {
                fail("--crash-worker needs W@N (worker index @ 1-based window close count)")
            }
            Some(plan) => options.crash_worker = Some(plan),
        }
    }
    if (options.kill_worker.is_some()
        || options.crash_worker.is_some()
        || options.ckpt_dir.is_some())
        && !options.fault_tolerant
    {
        fail("--kill-worker, --crash-worker, and --ckpt-dir require --fault-tolerant");
    }
    let text = match std::fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(e) => fail(&format!("reading {spec_path}: {e}")),
    };
    let spec = match ClusterSpec::parse(&text) {
        Ok(spec) => spec,
        Err(e) => fail(&format!("parsing {spec_path}: {e}")),
    };
    let node_exe = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => fail(&format!("locating own binary: {e}")),
    };
    log::info(
        "slb-node",
        &format!(
            "orchestrate: {} sources, {} workers, {} aggregators over TCP loopback{}",
            spec.sources(),
            spec.workers(),
            spec.aggregators(),
            if options.fault_tolerant {
                " (supervised)"
            } else {
                ""
            }
        ),
    );
    let outcome = match orchestrate_with(&spec, &node_exe, &options) {
        Ok(outcome) => outcome,
        Err(message) => {
            log::error("slb-node", &format!("orchestrate: {message}"));
            exit(1);
        }
    };
    let r = &outcome.result;
    println!(
        "scheme={} processed={} sent={} windows={} elapsed={:.3}s throughput={:.0} ev/s",
        r.scheme, r.processed, outcome.sent_total, r.windows, r.elapsed_secs, r.throughput_eps
    );
    println!(
        "imbalance={:.4} p50={}us p99={}us worker_counts={:?}",
        r.imbalance, r.latency.p50_us, r.latency.p99_us, r.worker_counts
    );
    for phase in &r.phases {
        println!(
            "phase {}: workers={} tuples={} imbalance={:.4}",
            phase.phase, phase.workers, phase.stage.items, phase.imbalance
        );
    }
    let wr = &r.worker_stage.recovery;
    println!(
        "worker_recovery restores={} replayed_items={} duplicates_dropped={} \
         replay_requests={} transport_errors={}",
        wr.restores,
        wr.replayed_items,
        wr.duplicates_dropped,
        wr.replay_requests,
        wr.transport_errors
    );
    let ar = &r.aggregator_stage.recovery;
    println!(
        "aggregator_recovery duplicates_dropped={} transport_errors={}",
        ar.duplicates_dropped, ar.transport_errors
    );
    if let Some(metrics) = &outcome.metrics {
        println!(
            "cluster_metrics windows_closed={} checkpoints={} batches_sent={} \
             tuples_sent={} send_stall_us={} recv_wait_us={} queue_depth_hwm={} \
             latency_count={}",
            metrics.windows_closed,
            metrics.checkpoints,
            metrics.batches_sent,
            metrics.tuples_sent,
            metrics.send_stall_us,
            metrics.recv_wait_us,
            metrics.queue_depth_hwm,
            metrics.latency_count
        );
    }
    if let Some(dir) = &options.metrics_dir {
        log::info(
            "slb-node",
            &format!(
                "metrics stream written to {}",
                dir.join("metrics.jsonl").display()
            ),
        );
    }
    if !outcome.degraded.is_empty() {
        println!("degraded workers={:?}", outcome.degraded);
    }
    if verify {
        let reference = exact_reference(&spec);
        match slb_engine::diff_windows(&outcome.windows, &reference) {
            None => println!("exact-reference=MATCH ({} windows)", reference.len()),
            Some(first_divergence) => {
                println!("exact-reference=MISMATCH ({first_divergence})");
                exit(1);
            }
        }
    }
}
