//! # slb-net — the engine's networked transport and multi-process runner
//!
//! The paper's load-balancing schemes exist to balance *distributed* stream
//! processing workers; this crate takes the reproduction's topology across
//! process boundaries. It implements the [`Transport`](slb_engine::Transport)
//! contract of `slb-engine` over TCP sockets and builds a small
//! multi-process deployment on top:
//!
//! * [`wire`] — the hand-rolled length-prefixed binary frame format for
//!   tuple batches, window punctuation, aggregate partials, and the
//!   `slb-node` control plane. Total decoding: malformed bytes are errors,
//!   never panics.
//! * [`tcp`] — [`TcpTransport`] and the framed sender/receiver handles. A
//!   drop-in backend for `Topology::run_windowed_on`: the cross-backend
//!   differential suite (`tests/backend_differential.rs`) proves merged
//!   windowed counts over TCP are bit-identical to the in-process backend
//!   and to the single-threaded exact reference.
//! * [`cluster`] — the cluster spec (`key value` text format) describing a
//!   run: an [`EngineConfig`](slb_engine::EngineConfig) or
//!   [`ScenarioConfig`](slb_engine::ScenarioConfig) plus node counts.
//! * [`node`] — the `slb-node` roles (source / worker / aggregator) and the
//!   orchestrator that spawns them, wires the sockets, and merges the
//!   stages' reports back into an [`EngineResult`](slb_engine::EngineResult).
//!
//! See `docs/DISTRIBUTED.md` for the wire format, the cluster spec, and the
//! equivalence argument.

pub mod cluster;
pub mod node;
pub mod tcp;
pub mod wire;

pub use cluster::{ClusterSpec, RunSpec};
pub use tcp::{
    TcpPartialReceiver, TcpPartialSender, TcpTransport, TcpTupleReceiver, TcpTupleSender,
};
pub use wire::{ControlFrame, PartialFrame, TupleFrame, WireError};
