//! Cluster specs: what a multi-process run executes.
//!
//! A [`ClusterSpec`] names one run — an [`EngineConfig`] (single-phase) or a
//! [`ScenarioConfig`] (multi-phase [`Scenario`]) — and the node counts
//! follow from it: one process per source, per worker, and per aggregator.
//! The spec exists in two forms:
//!
//! * a **text format** for humans and the `slb-node orchestrate --spec`
//!   flag: one `key value` pair per line, `#` comments, phases as
//!   `phase key=value ...` lines (see [`ClusterSpec::parse`] /
//!   [`ClusterSpec::render`] — exact round-trip is unit-tested);
//! * a **binary form** for the control plane: the orchestrator encodes the
//!   [`RunSpec`] into the `Start` frame so child processes never read the
//!   spec file ([`encode_run_spec`] / [`decode_run_spec`]). Floats travel as
//!   IEEE-754 bit patterns, so the config a node runs is bit-identical to
//!   the orchestrator's.
//!
//! Both forms resolve to the same [`StagePlan`] via
//! [`ClusterSpec::stage_plan`], which is also exactly what the in-process
//! engine runs — a cluster spec cannot describe anything the differential
//! suite cannot check.

use std::str::FromStr;

use slb_core::wire::{read_u32, read_u64, write_u32, write_u64};
use slb_core::{ControllerConfig, PartitionerKind, SolverMode};
use slb_engine::{EngineConfig, ScenarioConfig, StagePlan};
use slb_workloads::{Arrival, Scenario, ScenarioPhase};

use crate::wire::WireError;

/// The role one `slb-node` process plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Generates and routes its share of the keyed stream.
    Source,
    /// Aggregates tuples into per-window partials.
    Worker,
    /// Merges worker partials into final windows.
    Aggregator,
}

impl NodeRole {
    /// Stable wire byte for the role.
    pub fn as_u8(self) -> u8 {
        match self {
            NodeRole::Source => 0,
            NodeRole::Worker => 1,
            NodeRole::Aggregator => 2,
        }
    }

    /// Decodes a wire byte.
    pub fn from_u8(byte: u8) -> Result<Self, WireError> {
        match byte {
            0 => Ok(NodeRole::Source),
            1 => Ok(NodeRole::Worker),
            2 => Ok(NodeRole::Aggregator),
            _ => Err(WireError::Malformed("unknown node role")),
        }
    }

    /// CLI name of the role.
    pub fn name(self) -> &'static str {
        match self {
            NodeRole::Source => "source",
            NodeRole::Worker => "worker",
            NodeRole::Aggregator => "aggregator",
        }
    }
}

impl FromStr for NodeRole {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "source" => Ok(NodeRole::Source),
            "worker" => Ok(NodeRole::Worker),
            "aggregator" => Ok(NodeRole::Aggregator),
            other => Err(format!("unknown role: {other}")),
        }
    }
}

/// The run a cluster executes.
#[derive(Debug, Clone, PartialEq)]
pub enum RunSpec {
    /// A single-phase engine run.
    Engine(EngineConfig),
    /// A multi-phase scenario run.
    Scenario(ScenarioConfig),
}

/// A cluster description: the run plus the node counts it implies.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// The run to execute.
    pub run: RunSpec,
}

impl ClusterSpec {
    /// Number of source processes.
    pub fn sources(&self) -> usize {
        match &self.run {
            RunSpec::Engine(cfg) => cfg.sources,
            RunSpec::Scenario(cfg) => cfg.scenario.sources,
        }
    }

    /// Number of worker processes (the spawned universe; scenario phases
    /// activate a prefix).
    pub fn workers(&self) -> usize {
        match &self.run {
            RunSpec::Engine(cfg) => match &cfg.controller {
                Some(c) => cfg.workers.max(c.max_workers),
                None => cfg.workers,
            },
            RunSpec::Scenario(cfg) => match &cfg.controller {
                Some(c) => cfg.scenario.max_workers().max(c.max_workers),
                None => cfg.scenario.max_workers(),
            },
        }
    }

    /// Number of aggregator processes.
    pub fn aggregators(&self) -> usize {
        match &self.run {
            RunSpec::Engine(cfg) => cfg.aggregators,
            RunSpec::Scenario(cfg) => cfg.aggregators,
        }
    }

    /// The resolved plan every node runs its stage of.
    ///
    /// # Panics
    /// Panics if the underlying config is structurally invalid.
    pub fn stage_plan(&self) -> StagePlan {
        match &self.run {
            RunSpec::Engine(cfg) => cfg.stage_plan(),
            RunSpec::Scenario(cfg) => cfg.stage_plan(),
        }
    }

    /// Parses the text spec format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut mode: Option<String> = None;
        let mut fields: Vec<(String, String)> = Vec::new();
        let mut phases: Vec<ScenarioPhase> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("line {}: expected `key value`", lineno + 1))?;
            let value = value.trim();
            match key {
                "mode" => mode = Some(value.to_string()),
                "phase" => phases
                    .push(parse_phase(value).map_err(|e| format!("line {}: {e}", lineno + 1))?),
                _ => fields.push((key.to_string(), value.to_string())),
            }
        }
        let take = |name: &str| -> Result<String, String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("missing field: {name}"))
        };
        let int = |name: &str| -> Result<u64, String> {
            take(name)?
                .parse::<u64>()
                .map_err(|_| format!("field {name} must be an integer"))
        };
        let opt = |name: &str| -> Option<String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        };
        let scheme = take("scheme")?
            .parse::<PartitionerKind>()
            .map_err(|e| format!("bad scheme: {e}"))?;
        let solver = match opt("solver") {
            Some(text) => parse_solver(&text)?,
            None => SolverMode::Online,
        };
        let controller = match opt("controller") {
            Some(text) => Some(parse_controller(&text)?),
            None => None,
        };
        match mode.as_deref() {
            Some("engine") => {
                let cfg = EngineConfig {
                    kind: scheme,
                    sources: int("sources")? as usize,
                    workers: int("workers")? as usize,
                    keys: int("keys")? as usize,
                    skew: take("skew")?
                        .parse::<f64>()
                        .map_err(|_| "field skew must be a float".to_string())?,
                    messages: int("messages")?,
                    service_time_us: int("service_time_us")?,
                    queue_capacity: int("queue_capacity")? as usize,
                    seed: int("seed")?,
                    batch_size: int("batch_size")? as usize,
                    window_size: int("window_size")?,
                    aggregators: int("aggregators")? as usize,
                    solver,
                    controller,
                };
                Ok(Self {
                    run: RunSpec::Engine(cfg),
                })
            }
            Some("scenario") => {
                if phases.is_empty() {
                    return Err("scenario spec needs at least one `phase` line".into());
                }
                let mut scenario = Scenario::new(
                    take("name")?,
                    int("sources")? as usize,
                    int("window_size")?,
                    int("seed")?,
                );
                scenario.phases = phases;
                let mut cfg = ScenarioConfig::new(scheme, scenario)
                    .with_service_time_us(int("service_time_us")?)
                    .with_queue_capacity(int("queue_capacity")? as usize)
                    .with_batch_size(int("batch_size")? as usize)
                    .with_aggregators(int("aggregators")? as usize)
                    .with_solver(solver);
                if let Some(controller) = controller {
                    cfg = cfg.with_controller(controller);
                }
                cfg.scenario
                    .validate()
                    .map_err(|e| format!("invalid scenario: {e}"))?;
                Ok(Self {
                    run: RunSpec::Scenario(cfg),
                })
            }
            Some(other) => Err(format!("unknown mode: {other}")),
            None => Err("missing field: mode".into()),
        }
    }

    /// Renders the text spec format; `parse(render(spec)) == spec`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v);
            out.push('\n');
        };
        match &self.run {
            RunSpec::Engine(cfg) => {
                line("mode", "engine".into());
                line("scheme", cfg.kind.symbol().into());
                line("sources", cfg.sources.to_string());
                line("workers", cfg.workers.to_string());
                line("keys", cfg.keys.to_string());
                line("skew", cfg.skew.to_string());
                line("messages", cfg.messages.to_string());
                line("service_time_us", cfg.service_time_us.to_string());
                line("queue_capacity", cfg.queue_capacity.to_string());
                line("seed", cfg.seed.to_string());
                line("batch_size", cfg.batch_size.to_string());
                line("window_size", cfg.window_size.to_string());
                line("aggregators", cfg.aggregators.to_string());
                if cfg.solver != SolverMode::Online {
                    line("solver", render_solver(cfg.solver));
                }
                if let Some(controller) = &cfg.controller {
                    line("controller", render_controller(controller));
                }
            }
            RunSpec::Scenario(cfg) => {
                line("mode", "scenario".into());
                line("scheme", cfg.kind.symbol().into());
                line("name", cfg.scenario.name.clone());
                line("sources", cfg.scenario.sources.to_string());
                line("window_size", cfg.scenario.window_size.to_string());
                line("seed", cfg.scenario.seed.to_string());
                line("service_time_us", cfg.service_time_us.to_string());
                line("queue_capacity", cfg.queue_capacity.to_string());
                line("batch_size", cfg.batch_size.to_string());
                line("aggregators", cfg.aggregators.to_string());
                if cfg.solver != SolverMode::Online {
                    line("solver", render_solver(cfg.solver));
                }
                if let Some(controller) = &cfg.controller {
                    line("controller", render_controller(controller));
                }
                for phase in &cfg.scenario.phases {
                    line("phase", render_phase(phase));
                }
            }
        }
        out
    }
}

fn parse_phase(tokens: &str) -> Result<ScenarioPhase, String> {
    let mut windows = None;
    let mut keys = None;
    let mut skew = None;
    let mut workers = None;
    let mut drift_epochs = 1u64;
    let mut speed: Vec<f64> = Vec::new();
    let mut burst_tuples = None;
    let mut pause_us = 0u64;
    for token in tokens.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("phase token `{token}` is not key=value"))?;
        let bad = |what: &str| format!("phase {key} must be {what}");
        match key {
            "windows" => windows = Some(value.parse::<u64>().map_err(|_| bad("an integer"))?),
            "keys" => keys = Some(value.parse::<usize>().map_err(|_| bad("an integer"))?),
            "skew" => skew = Some(value.parse::<f64>().map_err(|_| bad("a float"))?),
            "workers" => workers = Some(value.parse::<usize>().map_err(|_| bad("an integer"))?),
            "drift_epochs" => drift_epochs = value.parse::<u64>().map_err(|_| bad("an integer"))?,
            "speed" => {
                speed = value
                    .split(',')
                    .map(|s| s.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| bad("a comma-separated float list"))?;
            }
            "burst_tuples" => {
                burst_tuples = Some(value.parse::<u64>().map_err(|_| bad("an integer"))?)
            }
            "pause_us" => pause_us = value.parse::<u64>().map_err(|_| bad("an integer"))?,
            other => return Err(format!("unknown phase field: {other}")),
        }
    }
    let mut phase = ScenarioPhase::new(
        windows.ok_or("phase needs windows=")?,
        keys.ok_or("phase needs keys=")?,
        skew.ok_or("phase needs skew=")?,
        workers.ok_or("phase needs workers=")?,
    )
    .with_drift_epochs(drift_epochs);
    if !speed.is_empty() {
        phase = phase.with_worker_speed(speed);
    }
    if let Some(burst_tuples) = burst_tuples {
        phase = phase.with_arrival(Arrival::Bursty {
            burst_tuples,
            pause_us,
        });
    }
    Ok(phase)
}

fn render_phase(phase: &ScenarioPhase) -> String {
    let mut parts = vec![
        format!("windows={}", phase.windows),
        format!("keys={}", phase.keys),
        format!("skew={}", phase.skew),
        format!("workers={}", phase.workers),
    ];
    if phase.drift_epochs != 1 {
        parts.push(format!("drift_epochs={}", phase.drift_epochs));
    }
    if !phase.worker_speed.is_empty() {
        let speeds: Vec<String> = phase.worker_speed.iter().map(f64::to_string).collect();
        parts.push(format!("speed={}", speeds.join(",")));
    }
    if let Arrival::Bursty {
        burst_tuples,
        pause_us,
    } = phase.arrival
    {
        parts.push(format!("burst_tuples={burst_tuples}"));
        parts.push(format!("pause_us={pause_us}"));
    }
    parts.join(" ")
}

fn parse_solver(text: &str) -> Result<SolverMode, String> {
    match text {
        "online" => Ok(SolverMode::Online),
        "external" => Ok(SolverMode::External),
        other => match other.strip_prefix("fixed:") {
            Some(d) => {
                let d = d
                    .parse::<usize>()
                    .map_err(|_| format!("bad fixed d: {d}"))?;
                if d < 2 {
                    return Err(format!("fixed d must be at least 2, got {d}"));
                }
                Ok(SolverMode::Fixed(d))
            }
            None => Err(format!("unknown solver mode: {other}")),
        },
    }
}

fn render_solver(solver: SolverMode) -> String {
    match solver {
        SolverMode::Online => "online".into(),
        SolverMode::Fixed(d) => format!("fixed:{d}"),
        SolverMode::External => "external".into(),
    }
}

fn parse_controller(tokens: &str) -> Result<ControllerConfig, String> {
    let mut min = None;
    let mut max = None;
    let mut capacity = None;
    let mut occupancy = 0.5f64;
    let mut patience = 2u32;
    let mut cooldown = 2u32;
    let mut step = 1usize;
    let mut epsilon = 1e-4f64;
    for token in tokens.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("controller token `{token}` is not key=value"))?;
        let bad = |what: &str| format!("controller {key} must be {what}");
        match key {
            "min" => min = Some(value.parse::<usize>().map_err(|_| bad("an integer"))?),
            "max" => max = Some(value.parse::<usize>().map_err(|_| bad("an integer"))?),
            "capacity" => capacity = Some(value.parse::<u64>().map_err(|_| bad("an integer"))?),
            "occupancy" => occupancy = value.parse::<f64>().map_err(|_| bad("a float"))?,
            "patience" => patience = value.parse::<u32>().map_err(|_| bad("an integer"))?,
            "cooldown" => cooldown = value.parse::<u32>().map_err(|_| bad("an integer"))?,
            "step" => step = value.parse::<usize>().map_err(|_| bad("an integer"))?,
            "epsilon" => epsilon = value.parse::<f64>().map_err(|_| bad("a float"))?,
            other => return Err(format!("unknown controller field: {other}")),
        }
    }
    Ok(ControllerConfig {
        min_workers: min.ok_or("controller needs min=")?,
        max_workers: max.ok_or("controller needs max=")?,
        worker_capacity: capacity.ok_or("controller needs capacity=")?,
        scale_in_occupancy: occupancy,
        patience,
        cooldown,
        step,
        epsilon,
    })
}

fn render_controller(cfg: &ControllerConfig) -> String {
    format!(
        "min={} max={} capacity={} occupancy={} patience={} cooldown={} step={} epsilon={}",
        cfg.min_workers,
        cfg.max_workers,
        cfg.worker_capacity,
        cfg.scale_in_occupancy,
        cfg.patience,
        cfg.cooldown,
        cfg.step,
        cfg.epsilon
    )
}

// ---------------------------------------------------------------------------
// Binary form (control plane)
// ---------------------------------------------------------------------------

fn kind_to_u8(kind: PartitionerKind) -> u8 {
    match kind {
        PartitionerKind::KeyGrouping => 0,
        PartitionerKind::ShuffleGrouping => 1,
        PartitionerKind::Pkg => 2,
        PartitionerKind::DChoices => 3,
        PartitionerKind::WChoices => 4,
        PartitionerKind::RoundRobin => 5,
    }
}

fn kind_from_u8(byte: u8) -> Result<PartitionerKind, WireError> {
    Ok(match byte {
        0 => PartitionerKind::KeyGrouping,
        1 => PartitionerKind::ShuffleGrouping,
        2 => PartitionerKind::Pkg,
        3 => PartitionerKind::DChoices,
        4 => PartitionerKind::WChoices,
        5 => PartitionerKind::RoundRobin,
        _ => return Err(WireError::Malformed("unknown scheme byte")),
    })
}

fn write_f64(out: &mut Vec<u8>, value: f64) {
    write_u64(out, value.to_bits());
}

fn read_f64(input: &mut &[u8]) -> Result<f64, WireError> {
    Ok(f64::from_bits(read_u64(input)?))
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(input: &mut &[u8]) -> Result<String, WireError> {
    let len = read_u32(input)? as usize;
    if input.len() < len {
        return Err(WireError::Malformed("string shorter than its length"));
    }
    let s = std::str::from_utf8(&input[..len])
        .map_err(|_| WireError::Malformed("string is not UTF-8"))?
        .to_string();
    *input = &input[len..];
    Ok(s)
}

fn write_solver(out: &mut Vec<u8>, solver: SolverMode) {
    match solver {
        SolverMode::Online => out.push(0),
        SolverMode::Fixed(d) => {
            out.push(1);
            write_u64(out, d as u64);
        }
        SolverMode::External => out.push(2),
    }
}

fn read_solver(input: &mut &[u8]) -> Result<SolverMode, WireError> {
    use crate::wire::read_u8;
    Ok(match read_u8(input)? {
        0 => SolverMode::Online,
        1 => SolverMode::Fixed(read_u64(input)? as usize),
        2 => SolverMode::External,
        _ => return Err(WireError::Malformed("unknown solver-mode tag")),
    })
}

fn write_controller(out: &mut Vec<u8>, controller: &Option<ControllerConfig>) {
    match controller {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            write_u64(out, c.min_workers as u64);
            write_u64(out, c.max_workers as u64);
            write_u64(out, c.worker_capacity);
            write_f64(out, c.scale_in_occupancy);
            write_u32(out, c.patience);
            write_u32(out, c.cooldown);
            write_u64(out, c.step as u64);
            write_f64(out, c.epsilon);
        }
    }
}

fn read_controller(input: &mut &[u8]) -> Result<Option<ControllerConfig>, WireError> {
    use crate::wire::read_u8;
    Ok(match read_u8(input)? {
        0 => None,
        1 => Some(ControllerConfig {
            min_workers: read_u64(input)? as usize,
            max_workers: read_u64(input)? as usize,
            worker_capacity: read_u64(input)?,
            scale_in_occupancy: read_f64(input)?,
            patience: read_u32(input)?,
            cooldown: read_u32(input)?,
            step: read_u64(input)? as usize,
            epsilon: read_f64(input)?,
        }),
        _ => return Err(WireError::Malformed("unknown controller tag")),
    })
}

/// Encodes a run spec for the control plane's `Start` frame.
pub fn encode_run_spec(spec: &RunSpec) -> Vec<u8> {
    let mut out = Vec::new();
    match spec {
        RunSpec::Engine(cfg) => {
            out.push(0);
            out.push(kind_to_u8(cfg.kind));
            write_u64(&mut out, cfg.sources as u64);
            write_u64(&mut out, cfg.workers as u64);
            write_u64(&mut out, cfg.keys as u64);
            write_f64(&mut out, cfg.skew);
            write_u64(&mut out, cfg.messages);
            write_u64(&mut out, cfg.service_time_us);
            write_u64(&mut out, cfg.queue_capacity as u64);
            write_u64(&mut out, cfg.seed);
            write_u64(&mut out, cfg.batch_size as u64);
            write_u64(&mut out, cfg.window_size);
            write_u64(&mut out, cfg.aggregators as u64);
            write_solver(&mut out, cfg.solver);
            write_controller(&mut out, &cfg.controller);
        }
        RunSpec::Scenario(cfg) => {
            out.push(1);
            out.push(kind_to_u8(cfg.kind));
            write_u64(&mut out, cfg.service_time_us);
            write_u64(&mut out, cfg.queue_capacity as u64);
            write_u64(&mut out, cfg.batch_size as u64);
            write_u64(&mut out, cfg.aggregators as u64);
            write_solver(&mut out, cfg.solver);
            write_controller(&mut out, &cfg.controller);
            write_str(&mut out, &cfg.scenario.name);
            write_u64(&mut out, cfg.scenario.sources as u64);
            write_u64(&mut out, cfg.scenario.window_size);
            write_u64(&mut out, cfg.scenario.seed);
            write_u32(&mut out, cfg.scenario.phases.len() as u32);
            for phase in &cfg.scenario.phases {
                write_u64(&mut out, phase.windows);
                write_u64(&mut out, phase.keys as u64);
                write_f64(&mut out, phase.skew);
                write_u64(&mut out, phase.workers as u64);
                write_u64(&mut out, phase.drift_epochs);
                write_u32(&mut out, phase.worker_speed.len() as u32);
                for &speed in &phase.worker_speed {
                    write_f64(&mut out, speed);
                }
                match phase.arrival {
                    Arrival::Steady => out.push(0),
                    Arrival::Bursty {
                        burst_tuples,
                        pause_us,
                    } => {
                        out.push(1);
                        write_u64(&mut out, burst_tuples);
                        write_u64(&mut out, pause_us);
                    }
                }
            }
        }
    }
    out
}

/// Decodes a run spec from the control plane's `Start` frame.
pub fn decode_run_spec(bytes: &[u8]) -> Result<RunSpec, WireError> {
    use crate::wire::{checked_count, read_u8};
    let mut input = bytes;
    let spec = match read_u8(&mut input)? {
        0 => {
            let kind = kind_from_u8(read_u8(&mut input)?)?;
            RunSpec::Engine(EngineConfig {
                kind,
                sources: read_u64(&mut input)? as usize,
                workers: read_u64(&mut input)? as usize,
                keys: read_u64(&mut input)? as usize,
                skew: read_f64(&mut input)?,
                messages: read_u64(&mut input)?,
                service_time_us: read_u64(&mut input)?,
                queue_capacity: read_u64(&mut input)? as usize,
                seed: read_u64(&mut input)?,
                batch_size: read_u64(&mut input)? as usize,
                window_size: read_u64(&mut input)?,
                aggregators: read_u64(&mut input)? as usize,
                solver: read_solver(&mut input)?,
                controller: read_controller(&mut input)?,
            })
        }
        1 => {
            let kind = kind_from_u8(read_u8(&mut input)?)?;
            let service_time_us = read_u64(&mut input)?;
            let queue_capacity = read_u64(&mut input)? as usize;
            let batch_size = read_u64(&mut input)? as usize;
            let aggregators = read_u64(&mut input)? as usize;
            let solver = read_solver(&mut input)?;
            let controller = read_controller(&mut input)?;
            let name = read_str(&mut input)?;
            let sources = read_u64(&mut input)? as usize;
            let window_size = read_u64(&mut input)?;
            let seed = read_u64(&mut input)?;
            let n_phases = read_u32(&mut input)? as usize;
            let mut scenario = Scenario::new(name, sources, window_size, seed);
            for _ in 0..n_phases {
                let windows = read_u64(&mut input)?;
                let keys = read_u64(&mut input)? as usize;
                let skew = read_f64(&mut input)?;
                let workers = read_u64(&mut input)? as usize;
                let drift_epochs = read_u64(&mut input)?;
                let n_speeds = read_u32(&mut input)?;
                let n_speeds = checked_count(input, n_speeds, 8)?;
                let mut worker_speed = Vec::with_capacity(n_speeds);
                for _ in 0..n_speeds {
                    worker_speed.push(read_f64(&mut input)?);
                }
                let arrival = match read_u8(&mut input)? {
                    0 => Arrival::Steady,
                    1 => Arrival::Bursty {
                        burst_tuples: read_u64(&mut input)?,
                        pause_us: read_u64(&mut input)?,
                    },
                    _ => return Err(WireError::Malformed("unknown arrival tag")),
                };
                let mut phase = ScenarioPhase::new(windows, keys, skew, workers)
                    .with_drift_epochs(drift_epochs);
                if !worker_speed.is_empty() {
                    phase = phase.with_worker_speed(worker_speed);
                }
                phase = phase.with_arrival(arrival);
                scenario = scenario.phase(phase);
            }
            let mut cfg = ScenarioConfig::new(kind, scenario)
                .with_service_time_us(service_time_us)
                .with_queue_capacity(queue_capacity)
                .with_batch_size(batch_size)
                .with_aggregators(aggregators)
                .with_solver(solver);
            if let Some(controller) = controller {
                cfg = cfg.with_controller(controller);
            }
            RunSpec::Scenario(cfg)
        }
        _ => return Err(WireError::Malformed("unknown run-spec tag")),
    };
    if !input.is_empty() {
        return Err(WireError::TrailingBytes(input.len()));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_spec() -> ClusterSpec {
        ClusterSpec {
            run: RunSpec::Engine(
                EngineConfig::smoke(PartitionerKind::DChoices, 1.4)
                    .with_messages(24_000)
                    .with_service_time_us(0)
                    .with_seed(9),
            ),
        }
    }

    fn scenario_spec() -> ClusterSpec {
        let scenario = Scenario::new("demo", 2, 256, 7)
            .phase(ScenarioPhase::new(2, 400, 1.8, 3))
            .phase(
                ScenarioPhase::new(2, 400, 1.25, 5)
                    .with_drift_epochs(2)
                    .with_worker_speed(vec![2.0, 1.0, 1.0, 1.0, 1.0]),
            )
            .phase(
                ScenarioPhase::new(1, 200, 0.0, 2).with_arrival(Arrival::Bursty {
                    burst_tuples: 128,
                    pause_us: 10,
                }),
            );
        ClusterSpec {
            run: RunSpec::Scenario(ScenarioConfig::new(PartitionerKind::WChoices, scenario)),
        }
    }

    #[test]
    fn text_spec_round_trips() {
        for spec in [engine_spec(), scenario_spec()] {
            let text = spec.render();
            let back = ClusterSpec::parse(&text).expect("own rendering parses");
            assert_eq!(back, spec, "text:\n{text}");
        }
    }

    #[test]
    fn binary_spec_round_trips() {
        for spec in [engine_spec(), scenario_spec()] {
            let bytes = encode_run_spec(&spec.run);
            let back = decode_run_spec(&bytes).expect("own encoding decodes");
            assert_eq!(back, spec.run);
        }
    }

    #[test]
    fn node_counts_follow_the_config() {
        let engine = engine_spec();
        assert_eq!(engine.sources(), 2);
        assert_eq!(engine.workers(), 4);
        assert_eq!(engine.aggregators(), 2);
        let scenario = scenario_spec();
        assert_eq!(scenario.sources(), 2);
        assert_eq!(scenario.workers(), 5, "max over phases");
        assert_eq!(scenario.aggregators(), 2);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(ClusterSpec::parse("").is_err());
        assert!(ClusterSpec::parse("mode engine\n").is_err());
        assert!(ClusterSpec::parse("mode warp\nscheme PKG\n").is_err());
        assert!(ClusterSpec::parse("mode scenario\nscheme PKG\nname x\nsources 1\nwindow_size 8\nseed 1\nservice_time_us 0\nqueue_capacity 64\nbatch_size 8\naggregators 1\n").is_err(), "no phases");
        // Comments and blank lines are fine.
        let text = format!("# cluster\n\n{}", engine_spec().render());
        assert!(ClusterSpec::parse(&text).is_ok());
    }

    #[test]
    fn truncated_binary_specs_error() {
        let bytes = encode_run_spec(&scenario_spec().run);
        for cut in 0..bytes.len() {
            assert!(decode_run_spec(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn roles_round_trip() {
        for role in [NodeRole::Source, NodeRole::Worker, NodeRole::Aggregator] {
            assert_eq!(NodeRole::from_u8(role.as_u8()).unwrap(), role);
            assert_eq!(role.name().parse::<NodeRole>().unwrap(), role);
        }
        assert!(NodeRole::from_u8(9).is_err());
        assert!("driver".parse::<NodeRole>().is_err());
    }
}
