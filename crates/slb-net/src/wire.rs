//! The length-prefixed binary wire format.
//!
//! Every message on an `slb-net` socket is one *frame*:
//!
//! ```text
//! ┌────────────┬─────────┬──────────────────────────────┐
//! │ len: u32le │ tag: u8 │ body: len−1 bytes            │
//! └────────────┴─────────┴──────────────────────────────┘
//! ```
//!
//! `len` counts the tag byte plus the body, so a reader can skip or buffer a
//! frame without understanding it. All integers are little-endian fixed
//! width; collections are a `u32` count followed by the elements; `f64`s
//! travel as their IEEE-754 bit patterns (`to_bits`), so configs round-trip
//! bit-exactly. There are three frame families:
//!
//! * **tuple frames** ([`TupleFrame`]) — the source → worker hop: tuple
//!   batches, window-close punctuation, and the end-of-stream marker.
//! * **partial frames** ([`PartialFrame`]) — the worker → aggregator hop:
//!   per-window partial aggregates, encoded through the
//!   [`WirePartial`] hook in `slb-core`, plus end-of-stream.
//! * **control frames** ([`ControlFrame`]) — the `slb-node` control plane:
//!   hello/start handshakes and the per-stage end-of-run reports.
//!
//! Timestamps on the wire are microseconds since the run's shared epoch —
//! `Instant`s never cross a socket; the TCP layer converts at the edges.
//!
//! Decoding is **total**: any byte sequence either decodes to a frame or
//! returns a [`WireError`] — truncated, oversized, mis-tagged, or otherwise
//! malformed input must never panic (the property suite in
//! `tests/wire_props.rs` pins this down, along with round-trip identity).

use std::io::{self, Read, Write};

use slb_core::wire::{read_u32, read_u64, write_u32, write_u64, PartialDecodeError, WirePartial};
use slb_core::{ControllerAction, ControllerEvent};
use slb_telemetry::{HopStats, LogHistogram, MetricsSnapshot, TraceEvent};

/// Hard ceiling on one frame's payload (tag + body), defending the decoder
/// against allocating on a corrupt length prefix. Generous: the largest
/// legitimate frames are worker reports carrying run-length-encoded latency
/// histograms, well under a mebibyte.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Frame tags. Data-plane tags stay below 16; control-plane tags start at 16.
pub mod tag {
    /// A batch of same-window tuples.
    pub const BATCH: u8 = 1;
    /// Window-close punctuation.
    pub const CLOSE: u8 = 2;
    /// A per-window partial aggregate slice.
    pub const PARTIAL: u8 = 3;
    /// End of stream: the sender will write nothing further.
    pub const EOF: u8 = 4;
    /// A recovering worker's replay request (worker → source feedback hop).
    pub const REPLAY_REQUEST: u8 = 5;
    /// Node → orchestrator: role, index, and data port.
    pub const HELLO: u8 = 16;
    /// Orchestrator → node: epoch, peer ports, and the run configuration.
    pub const START: u8 = 17;
    /// Source → orchestrator end-of-run report.
    pub const SOURCE_REPORT: u8 = 18;
    /// Worker → orchestrator end-of-run report.
    pub const WORKER_REPORT: u8 = 19;
    /// Aggregator → orchestrator end-of-run report.
    pub const AGGREGATOR_REPORT: u8 = 20;
    /// Worker → orchestrator liveness beacon (periodic while running).
    pub const HEARTBEAT: u8 = 21;
    /// Respawned worker → orchestrator (then orchestrator → sources): the
    /// worker is back, listening on `data_port`, restored to these cursors.
    pub const REJOIN: u8 = 22;
    /// Orchestrator → sources/aggregators: a worker is out of respawn
    /// budget; stop routing to it / finalize without it.
    pub const EXCLUDE: u8 = 23;
    /// Orchestrator → sources: no further rejoin can occur, stop waiting.
    pub const RELEASE: u8 = 24;
    /// Node → orchestrator: a live (or final) telemetry snapshot.
    pub const METRICS: u8 = 25;
}

/// Everything that can go wrong turning bytes into frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The input ended inside a frame (header or body).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is zero).
    BadLength(usize),
    /// The tag byte names no known frame type for this channel.
    BadTag(u8),
    /// The body parsed but violated a structural invariant.
    Malformed(&'static str),
    /// The body decoded to a frame with bytes left over.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o failed: {e}"),
            WireError::Truncated => f.write_str("frame truncated"),
            WireError::BadLength(len) => write!(f, "bad frame length {len}"),
            WireError::BadTag(tag) => write!(f, "unknown frame tag {tag}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame body"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<PartialDecodeError> for WireError {
    fn from(e: PartialDecodeError) -> Self {
        WireError::Malformed(e.0)
    }
}

/// One message on a source → worker socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TupleFrame {
    /// A batch of same-window tuples.
    Batch {
        /// The window every key belongs to.
        window: u64,
        /// Index of the source that emitted the batch.
        source: u32,
        /// Position in the per-(source, worker) message sequence.
        seq: u64,
        /// Batch emit time, µs since the run epoch.
        emitted_us: u64,
        /// The routed keys, in source emission order.
        keys: Vec<u64>,
    },
    /// Punctuation: the sender finished `window`.
    Close {
        /// The finished window.
        window: u64,
        /// Index of the source that finished it.
        source: u32,
        /// Position in the per-(source, worker) message sequence.
        seq: u64,
    },
    /// End of stream.
    Eof,
}

/// One message on a worker → aggregator socket.
#[derive(Debug, Clone, PartialEq)]
pub enum PartialFrame<P> {
    /// One worker's finalized partial for one window, sliced to this
    /// aggregator's shard.
    Partial {
        /// The window the partial belongs to.
        window: u64,
        /// Index of the worker that finalized the window (the aggregator's
        /// dedup key, together with `window`).
        worker: u32,
        /// Worker close time, µs since the run epoch.
        closed_us: u64,
        /// The shard slice.
        partial: P,
    },
    /// End of stream.
    Eof,
}

/// One message on a worker → source feedback socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackFrame {
    /// A recovering worker asks the source to re-send from a sequence
    /// cursor.
    Request {
        /// The worker requesting replay.
        worker: u32,
        /// First per-(source, worker) sequence number the worker is missing.
        from_seq: u64,
    },
    /// End of stream.
    Eof,
}

/// A worker's end-of-run report, `Instant`-free so it can cross a socket.
/// Latency trackers travel as run-length-encoded `(value_us, count)` pairs —
/// the batched engine records one value per batch for the whole batch, so
/// the RLE is tiny compared to the raw per-tuple samples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerReportWire {
    /// Worker index within the spawned universe.
    pub worker: u32,
    /// Tuples processed.
    pub processed: u64,
    /// Distinct keys held in state.
    pub state_keys: u64,
    /// Windows finalized.
    pub windows_closed: u64,
    /// Tuples processed per phase.
    pub phase_counts: Vec<u64>,
    /// Per-phase `(first, last)` batch-completion stamps, µs since epoch.
    pub phase_spans: Vec<Option<(u64, u64)>>,
    /// Per-phase latency samples, run-length encoded as `(value_us, count)`.
    pub phase_latencies: Vec<Vec<(u64, u64)>>,
    /// Checkpoint restorations after simulated crashes.
    pub restores: u64,
    /// Tuples reprocessed from replayed messages.
    pub replayed_items: u64,
    /// Messages discarded as duplicates by sequence dedup.
    pub duplicates_dropped: u64,
    /// Replay requests issued upstream.
    pub replay_requests: u64,
    /// Checkpoints saved (one per window finalization).
    pub checkpoints: u64,
    /// Connections that died uncleanly mid-run (torn frame / failed read).
    pub transport_errors: u64,
    /// The worker's deterministic logical trace.
    pub trace: Vec<TraceEvent>,
    /// The worker's transport-hop counters.
    pub transport: HopStats,
}

/// An aggregator's end-of-run report. The finalized windows carry exact
/// per-key counts (`slb-node` runs the count aggregation — the one the
/// differential proof is stated over).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AggregatorReportWire {
    /// Aggregator shard index.
    pub aggregator: u32,
    /// Partial-window messages merged.
    pub merged: u64,
    /// Close→merge latency samples, run-length encoded.
    pub latency: Vec<(u64, u64)>,
    /// Final merged per-key counts per window this shard owned.
    pub finalized: Vec<(u64, std::collections::HashMap<u64, u64>)>,
    /// Partials discarded as duplicates (replayed windows after a respawn,
    /// or late partials from an excluded worker).
    pub duplicates_dropped: u64,
    /// Connections that died uncleanly mid-run (torn frame / failed read).
    pub transport_errors: u64,
    /// The shard's deterministic logical trace.
    pub trace: Vec<TraceEvent>,
    /// The shard's transport-hop counters.
    pub transport: HopStats,
}

/// One message on an `slb-node` control socket.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlFrame {
    /// Node → orchestrator, immediately after connecting: who am I, and —
    /// for workers and aggregators — which port my data listener bound.
    Hello {
        /// Role byte (see `cluster::NodeRole`).
        role: u8,
        /// Index within the role (source 0..S, worker 0..W, aggregator 0..A).
        index: u32,
        /// Bound data port; 0 for sources (they only dial out).
        data_port: u16,
    },
    /// Orchestrator → node: the run is fully assembled, go.
    Start {
        /// Shared run epoch, µs since `UNIX_EPOCH`; every node anchors its
        /// wire timestamps to this instant.
        epoch_unix_micros: u64,
        /// Data ports of workers 0..W (sources dial these).
        worker_ports: Vec<u16>,
        /// Data ports of aggregators 0..A (workers dial these).
        aggregator_ports: Vec<u16>,
        /// The encoded run configuration (see `cluster::RunSpec`).
        config: Vec<u8>,
    },
    /// Source → orchestrator: tuples sent plus the source's elasticity
    /// decision log (empty when the run had no controller).
    SourceReport {
        /// Source index.
        source: u32,
        /// Tuples the source shipped.
        sent: u64,
        /// The source controller's decision log, in window order.
        controller_events: Vec<ControllerEvent>,
        /// The source's deterministic logical trace.
        trace: Vec<TraceEvent>,
        /// The source's transport-hop counters.
        transport: HopStats,
    },
    /// Worker → orchestrator end-of-run report.
    WorkerReport(WorkerReportWire),
    /// Aggregator → orchestrator end-of-run report.
    AggregatorReport(AggregatorReportWire),
    /// Worker → orchestrator: still alive (sent periodically while the
    /// stage runs; silence past the timeout marks the worker suspect).
    Heartbeat {
        /// Worker index.
        worker: u32,
    },
    /// A respawned worker announcing itself — sent worker → orchestrator in
    /// place of `Hello`, then forwarded orchestrator → sources so they can
    /// re-dial and replay.
    Rejoin {
        /// Worker index.
        worker: u32,
        /// The respawned worker's (new) data listener port.
        data_port: u16,
        /// Restored per-source sequence cursors: for source `s`,
        /// `cursors[s]` is the next sequence number the worker expects —
        /// exactly where replay must start.
        cursors: Vec<u64>,
    },
    /// Orchestrator → sources and aggregators: worker `worker` is gone for
    /// good (respawn budget exhausted). Sources stop routing to it at the
    /// next window boundary; aggregators finalize windows without it.
    Exclude {
        /// Worker index.
        worker: u32,
    },
    /// Orchestrator → sources: every surviving worker has reported; no
    /// further rejoin/replay can be requested, stop waiting and exit.
    Release,
    /// Node → orchestrator: one stage instance's telemetry — periodic
    /// while the stage runs (when a metrics interval is configured), and
    /// one exact `finished` snapshot right before the end-of-run report.
    Metrics(MetricsSnapshot),
}

/// Reserves a frame header in `out`, returning the patch position.
fn begin_frame(out: &mut Vec<u8>, tag: u8) -> usize {
    let at = out.len();
    write_u32(out, 0); // patched by end_frame
    out.push(tag);
    at
}

/// Patches the length prefix of the frame begun at `at`.
fn end_frame(out: &mut [u8], at: usize) {
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

fn write_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn read_u16(input: &mut &[u8]) -> Result<u16, WireError> {
    if input.len() < 2 {
        return Err(WireError::Truncated);
    }
    let (bytes, rest) = input.split_at(2);
    *input = rest;
    Ok(u16::from_le_bytes(bytes.try_into().expect("2-byte split")))
}

pub(crate) fn read_u8(input: &mut &[u8]) -> Result<u8, WireError> {
    let (&byte, rest) = input.split_first().ok_or(WireError::Truncated)?;
    *input = rest;
    Ok(byte)
}

/// Guards a `u32` element count against the bytes actually present.
pub(crate) fn checked_count(
    input: &[u8],
    count: u32,
    min_bytes_per_element: usize,
) -> Result<usize, WireError> {
    let count = count as usize;
    if input.len() < count.saturating_mul(min_bytes_per_element) {
        return Err(WireError::Malformed("collection shorter than its length"));
    }
    Ok(count)
}

// ---------------------------------------------------------------------------
// Tuple frames
// ---------------------------------------------------------------------------

/// Appends one complete tuple frame (header, tag, body) to `out`.
pub fn encode_tuple_frame(frame: &TupleFrame, out: &mut Vec<u8>) {
    match frame {
        TupleFrame::Batch {
            window,
            source,
            seq,
            emitted_us,
            keys,
        } => {
            let at = begin_frame(out, tag::BATCH);
            write_u64(out, *window);
            write_u32(out, *source);
            write_u64(out, *seq);
            write_u64(out, *emitted_us);
            write_u32(out, keys.len() as u32);
            for &key in keys {
                write_u64(out, key);
            }
            end_frame(out, at);
        }
        TupleFrame::Close {
            window,
            source,
            seq,
        } => {
            let at = begin_frame(out, tag::CLOSE);
            write_u64(out, *window);
            write_u32(out, *source);
            write_u64(out, *seq);
            end_frame(out, at);
        }
        TupleFrame::Eof => {
            let at = begin_frame(out, tag::EOF);
            end_frame(out, at);
        }
    }
}

/// Decodes a tuple frame's payload (tag byte + body, the part after the
/// length prefix).
pub fn decode_tuple_payload(payload: &[u8]) -> Result<TupleFrame, WireError> {
    let mut input = payload;
    let frame = match read_u8(&mut input)? {
        tag::BATCH => {
            let window = read_u64(&mut input).map_err(WireError::from)?;
            let source = read_u32(&mut input)?;
            let seq = read_u64(&mut input)?;
            let emitted_us = read_u64(&mut input)?;
            let count = read_u32(&mut input)?;
            let count = checked_count(input, count, 8)?;
            let mut keys = Vec::with_capacity(count);
            for _ in 0..count {
                keys.push(read_u64(&mut input)?);
            }
            TupleFrame::Batch {
                window,
                source,
                seq,
                emitted_us,
                keys,
            }
        }
        tag::CLOSE => {
            let window = read_u64(&mut input)?;
            let source = read_u32(&mut input)?;
            let seq = read_u64(&mut input)?;
            TupleFrame::Close {
                window,
                source,
                seq,
            }
        }
        tag::EOF => TupleFrame::Eof,
        other => return Err(WireError::BadTag(other)),
    };
    if !input.is_empty() {
        return Err(WireError::TrailingBytes(input.len()));
    }
    Ok(frame)
}

/// Decodes one complete tuple frame from the front of `buf`, returning the
/// frame and the total bytes consumed (header included).
pub fn decode_tuple_frame(buf: &[u8]) -> Result<(TupleFrame, usize), WireError> {
    let payload = split_frame(buf)?;
    let frame = decode_tuple_payload(payload)?;
    Ok((frame, 4 + payload.len()))
}

// ---------------------------------------------------------------------------
// Partial frames
// ---------------------------------------------------------------------------

/// Appends one complete partial frame to `out`, encoding the partial through
/// its [`WirePartial`] hook.
pub fn encode_partial_frame<P: WirePartial>(frame: &PartialFrame<P>, out: &mut Vec<u8>) {
    match frame {
        PartialFrame::Partial {
            window,
            worker,
            closed_us,
            partial,
        } => {
            let at = begin_frame(out, tag::PARTIAL);
            write_u64(out, *window);
            write_u32(out, *worker);
            write_u64(out, *closed_us);
            partial.encode_partial(out);
            end_frame(out, at);
        }
        PartialFrame::Eof => {
            let at = begin_frame(out, tag::EOF);
            end_frame(out, at);
        }
    }
}

/// Decodes a partial frame's payload (tag byte + body).
pub fn decode_partial_payload<P: WirePartial>(
    payload: &[u8],
) -> Result<PartialFrame<P>, WireError> {
    let mut input = payload;
    let frame = match read_u8(&mut input)? {
        tag::PARTIAL => {
            let window = read_u64(&mut input)?;
            let worker = read_u32(&mut input)?;
            let closed_us = read_u64(&mut input)?;
            let partial = P::decode_partial(&mut input)?;
            PartialFrame::Partial {
                window,
                worker,
                closed_us,
                partial,
            }
        }
        tag::EOF => PartialFrame::Eof,
        other => return Err(WireError::BadTag(other)),
    };
    if !input.is_empty() {
        return Err(WireError::TrailingBytes(input.len()));
    }
    Ok(frame)
}

/// Decodes one complete partial frame from the front of `buf`, returning the
/// frame and the total bytes consumed.
pub fn decode_partial_frame<P: WirePartial>(
    buf: &[u8],
) -> Result<(PartialFrame<P>, usize), WireError> {
    let payload = split_frame(buf)?;
    let frame = decode_partial_payload(payload)?;
    Ok((frame, 4 + payload.len()))
}

// ---------------------------------------------------------------------------
// Feedback frames
// ---------------------------------------------------------------------------

/// Appends one complete feedback frame (worker → source replay request) to
/// `out`.
pub fn encode_feedback_frame(frame: &FeedbackFrame, out: &mut Vec<u8>) {
    match frame {
        FeedbackFrame::Request { worker, from_seq } => {
            let at = begin_frame(out, tag::REPLAY_REQUEST);
            write_u32(out, *worker);
            write_u64(out, *from_seq);
            end_frame(out, at);
        }
        FeedbackFrame::Eof => {
            let at = begin_frame(out, tag::EOF);
            end_frame(out, at);
        }
    }
}

/// Decodes a feedback frame's payload (tag byte + body).
pub fn decode_feedback_payload(payload: &[u8]) -> Result<FeedbackFrame, WireError> {
    let mut input = payload;
    let frame = match read_u8(&mut input)? {
        tag::REPLAY_REQUEST => FeedbackFrame::Request {
            worker: read_u32(&mut input)?,
            from_seq: read_u64(&mut input)?,
        },
        tag::EOF => FeedbackFrame::Eof,
        other => return Err(WireError::BadTag(other)),
    };
    if !input.is_empty() {
        return Err(WireError::TrailingBytes(input.len()));
    }
    Ok(frame)
}

/// Decodes one complete feedback frame from the front of `buf`, returning
/// the frame and the total bytes consumed.
pub fn decode_feedback_frame(buf: &[u8]) -> Result<(FeedbackFrame, usize), WireError> {
    let payload = split_frame(buf)?;
    let frame = decode_feedback_payload(payload)?;
    Ok((frame, 4 + payload.len()))
}

// ---------------------------------------------------------------------------
// Control frames
// ---------------------------------------------------------------------------

fn write_u64_list(out: &mut Vec<u8>, values: &[u64]) {
    write_u32(out, values.len() as u32);
    for &v in values {
        write_u64(out, v);
    }
}

fn read_u64_list(input: &mut &[u8]) -> Result<Vec<u64>, WireError> {
    let count = read_u32(input)?;
    let count = checked_count(input, count, 8)?;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(read_u64(input)?);
    }
    Ok(values)
}

fn write_rle(out: &mut Vec<u8>, runs: &[(u64, u64)]) {
    write_u32(out, runs.len() as u32);
    for &(value, count) in runs {
        write_u64(out, value);
        write_u64(out, count);
    }
}

fn read_rle(input: &mut &[u8]) -> Result<Vec<(u64, u64)>, WireError> {
    let count = read_u32(input)?;
    let count = checked_count(input, count, 16)?;
    let mut runs = Vec::with_capacity(count);
    for _ in 0..count {
        let value = read_u64(input)?;
        let n = read_u64(input)?;
        runs.push((value, n));
    }
    Ok(runs)
}

/// `(bucket_index, count)` pair lists — sparse histograms on the wire.
fn write_bucket_list(out: &mut Vec<u8>, buckets: &[(u32, u64)]) {
    write_u32(out, buckets.len() as u32);
    for &(bucket, count) in buckets {
        write_u32(out, bucket);
        write_u64(out, count);
    }
}

fn read_bucket_list(input: &mut &[u8]) -> Result<Vec<(u32, u64)>, WireError> {
    let count = read_u32(input)?;
    let count = checked_count(input, count, 12)?;
    let mut buckets = Vec::with_capacity(count);
    for _ in 0..count {
        let bucket = read_u32(input)?;
        let n = read_u64(input)?;
        buckets.push((bucket, n));
    }
    Ok(buckets)
}

/// A [`LogHistogram`] on the wire: exact scalars plus the sparse nonzero
/// buckets (the 128-bit sum travels as a low/high u64 pair).
fn write_histogram(out: &mut Vec<u8>, hist: &LogHistogram) {
    write_u64(out, hist.count());
    let sum = hist.sum();
    write_u64(out, sum as u64);
    write_u64(out, (sum >> 64) as u64);
    write_u64(out, hist.min());
    write_u64(out, hist.max());
    write_bucket_list(out, &hist.nonzero_buckets());
}

fn read_histogram(input: &mut &[u8]) -> Result<LogHistogram, WireError> {
    let count = read_u64(input)?;
    let sum_lo = read_u64(input)?;
    let sum_hi = read_u64(input)?;
    let min = read_u64(input)?;
    let max = read_u64(input)?;
    let buckets = read_bucket_list(input)?;
    let sum = (u128::from(sum_hi) << 64) | u128::from(sum_lo);
    Ok(LogHistogram::from_parts(&buckets, count, sum, min, max))
}

/// A [`HopStats`] block: nine scalar counters plus the batch-occupancy
/// histogram.
fn write_hop_stats(out: &mut Vec<u8>, hop: &HopStats) {
    write_u64(out, hop.batches_sent);
    write_u64(out, hop.tuples_sent);
    write_u64(out, hop.send_stall_us);
    write_u64(out, hop.batches_received);
    write_u64(out, hop.tuples_received);
    write_u64(out, hop.recv_wait_us);
    write_u64(out, hop.queue_depth_hwm);
    write_u64(out, hop.ring_occupancy_hwm);
    write_u64(out, hop.ring_capacity);
    write_histogram(out, &hop.batch_occupancy);
}

fn read_hop_stats(input: &mut &[u8]) -> Result<HopStats, WireError> {
    Ok(HopStats {
        batches_sent: read_u64(input)?,
        tuples_sent: read_u64(input)?,
        send_stall_us: read_u64(input)?,
        batches_received: read_u64(input)?,
        tuples_received: read_u64(input)?,
        recv_wait_us: read_u64(input)?,
        queue_depth_hwm: read_u64(input)?,
        ring_occupancy_hwm: read_u64(input)?,
        ring_capacity: read_u64(input)?,
        batch_occupancy: read_histogram(input)?,
    })
}

/// A [`TraceEvent`] list. Each event is 1 + 4 + 8 + 1 + 8 + 8 + 8 = 38
/// bytes on the wire.
fn write_trace(out: &mut Vec<u8>, trace: &[TraceEvent]) {
    write_u32(out, trace.len() as u32);
    for event in trace {
        out.push(event.stage);
        write_u32(out, event.instance);
        write_u64(out, event.seq);
        out.push(event.kind);
        write_u64(out, event.window);
        write_u64(out, event.a);
        write_u64(out, event.b);
    }
}

fn read_trace(input: &mut &[u8]) -> Result<Vec<TraceEvent>, WireError> {
    let count = read_u32(input)?;
    let count = checked_count(input, count, 38)?;
    let mut trace = Vec::with_capacity(count);
    for _ in 0..count {
        let stage = read_u8(input)?;
        let instance = read_u32(input)?;
        let seq = read_u64(input)?;
        let kind = read_u8(input)?;
        let window = read_u64(input)?;
        let a = read_u64(input)?;
        let b = read_u64(input)?;
        trace.push(TraceEvent {
            stage,
            instance,
            seq,
            kind,
            window,
            a,
            b,
        });
    }
    Ok(trace)
}

/// Appends one complete control frame to `out`.
pub fn encode_control_frame(frame: &ControlFrame, out: &mut Vec<u8>) {
    match frame {
        ControlFrame::Hello {
            role,
            index,
            data_port,
        } => {
            let at = begin_frame(out, tag::HELLO);
            out.push(*role);
            write_u32(out, *index);
            write_u16(out, *data_port);
            end_frame(out, at);
        }
        ControlFrame::Start {
            epoch_unix_micros,
            worker_ports,
            aggregator_ports,
            config,
        } => {
            let at = begin_frame(out, tag::START);
            write_u64(out, *epoch_unix_micros);
            write_u32(out, worker_ports.len() as u32);
            for &p in worker_ports {
                write_u16(out, p);
            }
            write_u32(out, aggregator_ports.len() as u32);
            for &p in aggregator_ports {
                write_u16(out, p);
            }
            write_u32(out, config.len() as u32);
            out.extend_from_slice(config);
            end_frame(out, at);
        }
        ControlFrame::SourceReport {
            source,
            sent,
            controller_events,
            trace,
            transport,
        } => {
            let at = begin_frame(out, tag::SOURCE_REPORT);
            write_u32(out, *source);
            write_u64(out, *sent);
            write_u32(out, controller_events.len() as u32);
            for event in controller_events {
                write_u32(out, event.source);
                write_u64(out, event.window);
                out.push(match event.action {
                    ControllerAction::ScaleOut => 0,
                    ControllerAction::ScaleIn => 1,
                    ControllerAction::Retune => 2,
                });
                write_u32(out, event.workers);
                write_u32(out, event.d);
            }
            write_trace(out, trace);
            write_hop_stats(out, transport);
            end_frame(out, at);
        }
        ControlFrame::WorkerReport(report) => {
            let at = begin_frame(out, tag::WORKER_REPORT);
            write_u32(out, report.worker);
            write_u64(out, report.processed);
            write_u64(out, report.state_keys);
            write_u64(out, report.windows_closed);
            write_u64_list(out, &report.phase_counts);
            write_u32(out, report.phase_spans.len() as u32);
            for span in &report.phase_spans {
                match span {
                    None => out.push(0),
                    Some((first, last)) => {
                        out.push(1);
                        write_u64(out, *first);
                        write_u64(out, *last);
                    }
                }
            }
            write_u32(out, report.phase_latencies.len() as u32);
            for runs in &report.phase_latencies {
                write_rle(out, runs);
            }
            write_u64(out, report.restores);
            write_u64(out, report.replayed_items);
            write_u64(out, report.duplicates_dropped);
            write_u64(out, report.replay_requests);
            write_u64(out, report.checkpoints);
            write_u64(out, report.transport_errors);
            write_trace(out, &report.trace);
            write_hop_stats(out, &report.transport);
            end_frame(out, at);
        }
        ControlFrame::AggregatorReport(report) => {
            let at = begin_frame(out, tag::AGGREGATOR_REPORT);
            write_u32(out, report.aggregator);
            write_u64(out, report.merged);
            write_rle(out, &report.latency);
            write_u32(out, report.finalized.len() as u32);
            for (window, counts) in &report.finalized {
                write_u64(out, *window);
                counts.encode_partial(out);
            }
            write_u64(out, report.duplicates_dropped);
            write_u64(out, report.transport_errors);
            write_trace(out, &report.trace);
            write_hop_stats(out, &report.transport);
            end_frame(out, at);
        }
        ControlFrame::Heartbeat { worker } => {
            let at = begin_frame(out, tag::HEARTBEAT);
            write_u32(out, *worker);
            end_frame(out, at);
        }
        ControlFrame::Rejoin {
            worker,
            data_port,
            cursors,
        } => {
            let at = begin_frame(out, tag::REJOIN);
            write_u32(out, *worker);
            write_u16(out, *data_port);
            write_u64_list(out, cursors);
            end_frame(out, at);
        }
        ControlFrame::Exclude { worker } => {
            let at = begin_frame(out, tag::EXCLUDE);
            write_u32(out, *worker);
            end_frame(out, at);
        }
        ControlFrame::Release => {
            let at = begin_frame(out, tag::RELEASE);
            end_frame(out, at);
        }
        ControlFrame::Metrics(snap) => {
            let at = begin_frame(out, tag::METRICS);
            out.push(snap.stage);
            write_u32(out, snap.instance);
            write_u64(out, snap.seq);
            out.push(u8::from(snap.finished));
            write_u64(out, snap.items);
            write_u64(out, snap.windows_closed);
            write_u64(out, snap.checkpoints);
            write_u64(out, snap.restores);
            write_u64(out, snap.replayed_items);
            write_u64(out, snap.duplicates_dropped);
            write_u64(out, snap.replay_requests);
            write_u64(out, snap.transport_errors);
            write_u64(out, snap.batches_sent);
            write_u64(out, snap.tuples_sent);
            write_u64(out, snap.send_stall_us);
            write_u64(out, snap.batches_received);
            write_u64(out, snap.tuples_received);
            write_u64(out, snap.recv_wait_us);
            write_u64(out, snap.queue_depth_hwm);
            write_u64(out, snap.ring_occupancy_hwm);
            write_u64(out, snap.ring_capacity);
            write_u64(out, snap.latency_count);
            write_u64(out, snap.latency_sum_us);
            write_u64(out, snap.latency_min_us);
            write_u64(out, snap.latency_max_us);
            write_bucket_list(out, &snap.latency_buckets);
            end_frame(out, at);
        }
    }
}

/// Decodes a control frame's payload (tag byte + body).
pub fn decode_control_payload(payload: &[u8]) -> Result<ControlFrame, WireError> {
    let mut input = payload;
    let frame = match read_u8(&mut input)? {
        tag::HELLO => ControlFrame::Hello {
            role: read_u8(&mut input)?,
            index: read_u32(&mut input)?,
            data_port: read_u16(&mut input)?,
        },
        tag::START => {
            let epoch_unix_micros = read_u64(&mut input)?;
            let workers = read_u32(&mut input)?;
            let workers = checked_count(input, workers, 2)?;
            let mut worker_ports = Vec::with_capacity(workers);
            for _ in 0..workers {
                worker_ports.push(read_u16(&mut input)?);
            }
            let aggregators = read_u32(&mut input)?;
            let aggregators = checked_count(input, aggregators, 2)?;
            let mut aggregator_ports = Vec::with_capacity(aggregators);
            for _ in 0..aggregators {
                aggregator_ports.push(read_u16(&mut input)?);
            }
            let config_len = read_u32(&mut input)?;
            let config_len = checked_count(input, config_len, 1)?;
            let config = input[..config_len].to_vec();
            input = &input[config_len..];
            ControlFrame::Start {
                epoch_unix_micros,
                worker_ports,
                aggregator_ports,
                config,
            }
        }
        tag::SOURCE_REPORT => {
            let source = read_u32(&mut input)?;
            let sent = read_u64(&mut input)?;
            let n_events = read_u32(&mut input)?;
            // Each event is 4 + 8 + 1 + 4 + 4 = 21 bytes on the wire.
            let n_events = checked_count(input, n_events, 21)?;
            let mut controller_events = Vec::with_capacity(n_events);
            for _ in 0..n_events {
                let event_source = read_u32(&mut input)?;
                let window = read_u64(&mut input)?;
                let action = match read_u8(&mut input)? {
                    0 => ControllerAction::ScaleOut,
                    1 => ControllerAction::ScaleIn,
                    2 => ControllerAction::Retune,
                    _ => return Err(WireError::Malformed("unknown controller action")),
                };
                let workers = read_u32(&mut input)?;
                let d = read_u32(&mut input)?;
                controller_events.push(ControllerEvent {
                    source: event_source,
                    window,
                    action,
                    workers,
                    d,
                });
            }
            let trace = read_trace(&mut input)?;
            let transport = read_hop_stats(&mut input)?;
            ControlFrame::SourceReport {
                source,
                sent,
                controller_events,
                trace,
                transport,
            }
        }
        tag::WORKER_REPORT => {
            let worker = read_u32(&mut input)?;
            let processed = read_u64(&mut input)?;
            let state_keys = read_u64(&mut input)?;
            let windows_closed = read_u64(&mut input)?;
            let phase_counts = read_u64_list(&mut input)?;
            let spans = read_u32(&mut input)?;
            let spans = checked_count(input, spans, 1)?;
            let mut phase_spans = Vec::with_capacity(spans);
            for _ in 0..spans {
                phase_spans.push(match read_u8(&mut input)? {
                    0 => None,
                    1 => {
                        let first = read_u64(&mut input)?;
                        let last = read_u64(&mut input)?;
                        Some((first, last))
                    }
                    _ => return Err(WireError::Malformed("span flag must be 0 or 1")),
                });
            }
            let phases = read_u32(&mut input)?;
            let phases = checked_count(input, phases, 4)?;
            let mut phase_latencies = Vec::with_capacity(phases);
            for _ in 0..phases {
                phase_latencies.push(read_rle(&mut input)?);
            }
            let restores = read_u64(&mut input)?;
            let replayed_items = read_u64(&mut input)?;
            let duplicates_dropped = read_u64(&mut input)?;
            let replay_requests = read_u64(&mut input)?;
            let checkpoints = read_u64(&mut input)?;
            let transport_errors = read_u64(&mut input)?;
            let trace = read_trace(&mut input)?;
            let transport = read_hop_stats(&mut input)?;
            ControlFrame::WorkerReport(WorkerReportWire {
                worker,
                processed,
                state_keys,
                windows_closed,
                phase_counts,
                phase_spans,
                phase_latencies,
                restores,
                replayed_items,
                duplicates_dropped,
                replay_requests,
                checkpoints,
                transport_errors,
                trace,
                transport,
            })
        }
        tag::AGGREGATOR_REPORT => {
            let aggregator = read_u32(&mut input)?;
            let merged = read_u64(&mut input)?;
            let latency = read_rle(&mut input)?;
            let windows = read_u32(&mut input)?;
            let windows = checked_count(input, windows, 12)?;
            let mut finalized = Vec::with_capacity(windows);
            for _ in 0..windows {
                let window = read_u64(&mut input)?;
                let counts = std::collections::HashMap::<u64, u64>::decode_partial(&mut input)?;
                finalized.push((window, counts));
            }
            let duplicates_dropped = read_u64(&mut input)?;
            let transport_errors = read_u64(&mut input)?;
            let trace = read_trace(&mut input)?;
            let transport = read_hop_stats(&mut input)?;
            ControlFrame::AggregatorReport(AggregatorReportWire {
                aggregator,
                merged,
                latency,
                finalized,
                duplicates_dropped,
                transport_errors,
                trace,
                transport,
            })
        }
        tag::HEARTBEAT => ControlFrame::Heartbeat {
            worker: read_u32(&mut input)?,
        },
        tag::REJOIN => ControlFrame::Rejoin {
            worker: read_u32(&mut input)?,
            data_port: read_u16(&mut input)?,
            cursors: read_u64_list(&mut input)?,
        },
        tag::EXCLUDE => ControlFrame::Exclude {
            worker: read_u32(&mut input)?,
        },
        tag::RELEASE => ControlFrame::Release,
        tag::METRICS => {
            let stage = read_u8(&mut input)?;
            let instance = read_u32(&mut input)?;
            let seq = read_u64(&mut input)?;
            let finished = match read_u8(&mut input)? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("finished flag must be 0 or 1")),
            };
            ControlFrame::Metrics(MetricsSnapshot {
                stage,
                instance,
                seq,
                finished,
                items: read_u64(&mut input)?,
                windows_closed: read_u64(&mut input)?,
                checkpoints: read_u64(&mut input)?,
                restores: read_u64(&mut input)?,
                replayed_items: read_u64(&mut input)?,
                duplicates_dropped: read_u64(&mut input)?,
                replay_requests: read_u64(&mut input)?,
                transport_errors: read_u64(&mut input)?,
                batches_sent: read_u64(&mut input)?,
                tuples_sent: read_u64(&mut input)?,
                send_stall_us: read_u64(&mut input)?,
                batches_received: read_u64(&mut input)?,
                tuples_received: read_u64(&mut input)?,
                recv_wait_us: read_u64(&mut input)?,
                queue_depth_hwm: read_u64(&mut input)?,
                ring_occupancy_hwm: read_u64(&mut input)?,
                ring_capacity: read_u64(&mut input)?,
                latency_count: read_u64(&mut input)?,
                latency_sum_us: read_u64(&mut input)?,
                latency_min_us: read_u64(&mut input)?,
                latency_max_us: read_u64(&mut input)?,
                latency_buckets: read_bucket_list(&mut input)?,
            })
        }
        other => return Err(WireError::BadTag(other)),
    };
    if !input.is_empty() {
        return Err(WireError::TrailingBytes(input.len()));
    }
    Ok(frame)
}

/// Decodes one complete control frame from the front of `buf`, returning the
/// frame and the total bytes consumed.
pub fn decode_control_frame(buf: &[u8]) -> Result<(ControlFrame, usize), WireError> {
    let payload = split_frame(buf)?;
    let frame = decode_control_payload(payload)?;
    Ok((frame, 4 + payload.len()))
}

// ---------------------------------------------------------------------------
// Framing over byte slices and sockets
// ---------------------------------------------------------------------------

/// Splits the payload (tag + body) of the frame at the front of `buf`,
/// validating the length prefix.
pub fn split_frame(buf: &[u8]) -> Result<&[u8], WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (header, rest) = buf.split_at(4);
    let len = u32::from_le_bytes(header.try_into().expect("4-byte split")) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WireError::BadLength(len));
    }
    if rest.len() < len {
        return Err(WireError::Truncated);
    }
    Ok(&rest[..len])
}

/// Reads one frame's payload (tag + body) from `reader` into `scratch`.
/// Returns `Ok(false)` on a clean end of stream (EOF exactly at a frame
/// boundary); EOF inside a frame is [`WireError::Truncated`].
pub fn read_frame<R: Read>(reader: &mut R, scratch: &mut Vec<u8>) -> Result<bool, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WireError::BadLength(len));
    }
    scratch.clear();
    scratch.resize(len, 0);
    reader.read_exact(scratch).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(true)
}

/// Writes pre-encoded frame bytes (as produced by the `encode_*` functions).
pub fn write_frame_bytes<W: Write>(writer: &mut W, bytes: &[u8]) -> io::Result<()> {
    writer.write_all(bytes)
}

/// Run-length encodes a latency tracker's samples as `(value_us, count)`
/// pairs. The batched engine records one value per drained batch, so
/// adjacent samples repeat and the RLE is compact.
pub fn rle_encode(samples: &[u64]) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &value in samples {
        match runs.last_mut() {
            Some((last, count)) if *last == value => *count += 1,
            _ => runs.push((value, 1)),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_frames_round_trip() {
        for frame in [
            TupleFrame::Batch {
                window: 7,
                source: 3,
                seq: 42,
                emitted_us: 123_456,
                keys: vec![1, 2, 3, u64::MAX],
            },
            TupleFrame::Batch {
                window: 0,
                source: 0,
                seq: 0,
                emitted_us: 0,
                keys: vec![],
            },
            TupleFrame::Close {
                window: 99,
                source: 1,
                seq: u64::MAX,
            },
            TupleFrame::Eof,
        ] {
            let mut buf = Vec::new();
            encode_tuple_frame(&frame, &mut buf);
            let (back, consumed) = decode_tuple_frame(&buf).expect("own encoding decodes");
            assert_eq!(back, frame);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn frames_concatenate() {
        let close = TupleFrame::Close {
            window: 1,
            source: 0,
            seq: 5,
        };
        let mut buf = Vec::new();
        encode_tuple_frame(&close, &mut buf);
        encode_tuple_frame(&TupleFrame::Eof, &mut buf);
        let (first, consumed) = decode_tuple_frame(&buf).unwrap();
        assert_eq!(first, close);
        let (second, rest) = decode_tuple_frame(&buf[consumed..]).unwrap();
        assert_eq!(second, TupleFrame::Eof);
        assert_eq!(consumed + rest, buf.len());
    }

    #[test]
    fn feedback_frames_round_trip() {
        for frame in [
            FeedbackFrame::Request {
                worker: 7,
                from_seq: 1_234,
            },
            FeedbackFrame::Request {
                worker: 0,
                from_seq: 0,
            },
            FeedbackFrame::Eof,
        ] {
            let mut buf = Vec::new();
            encode_feedback_frame(&frame, &mut buf);
            let (back, consumed) = decode_feedback_frame(&buf).expect("own encoding decodes");
            assert_eq!(back, frame);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn zero_and_oversized_lengths_are_rejected() {
        assert!(matches!(
            split_frame(&[0, 0, 0, 0, 9]),
            Err(WireError::BadLength(0))
        ));
        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        assert!(matches!(
            split_frame(&[huge[0], huge[1], huge[2], huge[3]]),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_truncation() {
        let close = TupleFrame::Close {
            window: 5,
            source: 2,
            seq: 8,
        };
        let mut buf = Vec::new();
        encode_tuple_frame(&close, &mut buf);
        // Clean: whole frame then EOF.
        let mut reader = io::Cursor::new(buf.clone());
        let mut scratch = Vec::new();
        assert!(read_frame(&mut reader, &mut scratch).unwrap());
        assert_eq!(decode_tuple_payload(&scratch).unwrap(), close);
        assert!(!read_frame(&mut reader, &mut scratch).unwrap());
        // Truncated: EOF mid-frame.
        for cut in 1..buf.len() {
            let mut reader = io::Cursor::new(buf[..cut].to_vec());
            assert!(
                matches!(
                    read_frame(&mut reader, &mut scratch),
                    Err(WireError::Truncated)
                ),
                "cut at {cut}"
            );
        }
    }

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                stage: 1,
                instance: 2,
                seq: 0,
                kind: 0,
                window: 7,
                a: 1,
                b: 0,
            },
            TraceEvent {
                stage: 1,
                instance: 2,
                seq: 1,
                kind: 1,
                window: 7,
                a: 1,
                b: 0,
            },
        ]
    }

    fn sample_hop_stats() -> HopStats {
        let mut occupancy = LogHistogram::new();
        occupancy.record_n(32, 10);
        occupancy.record(7);
        HopStats {
            batches_sent: 11,
            tuples_sent: 327,
            send_stall_us: 42,
            batches_received: 9,
            tuples_received: 288,
            recv_wait_us: 1_000,
            batch_occupancy: occupancy,
            queue_depth_hwm: 12,
            ring_occupancy_hwm: 48,
            ring_capacity: 64,
        }
    }

    #[test]
    fn control_frames_round_trip() {
        let mut counts = std::collections::HashMap::new();
        counts.insert(3u64, 14u64);
        let mut final_metrics = MetricsSnapshot {
            stage: 1,
            instance: 3,
            seq: 9,
            finished: true,
            items: 4_096,
            windows_closed: 16,
            checkpoints: 16,
            restores: 1,
            replayed_items: 128,
            duplicates_dropped: 2,
            replay_requests: 1,
            transport_errors: 1,
            ..MetricsSnapshot::default()
        };
        final_metrics.set_transport(&sample_hop_stats());
        let mut latency = LogHistogram::new();
        latency.record_n(900, 500);
        latency.record(15_000);
        final_metrics.set_latency(&latency);
        for frame in [
            ControlFrame::Hello {
                role: 1,
                index: 3,
                data_port: 40_123,
            },
            ControlFrame::Start {
                epoch_unix_micros: 1_234_567_890,
                worker_ports: vec![1000, 2000, 3000],
                aggregator_ports: vec![4000],
                config: vec![1, 2, 3, 4, 5],
            },
            ControlFrame::SourceReport {
                source: 2,
                sent: 88,
                controller_events: vec![
                    ControllerEvent {
                        source: 2,
                        window: 5,
                        action: ControllerAction::ScaleOut,
                        workers: 6,
                        d: 2,
                    },
                    ControllerEvent {
                        source: 2,
                        window: 9,
                        action: ControllerAction::Retune,
                        workers: 6,
                        d: 0,
                    },
                ],
                trace: sample_trace(),
                transport: sample_hop_stats(),
            },
            ControlFrame::WorkerReport(WorkerReportWire {
                worker: 1,
                processed: 500,
                state_keys: 17,
                windows_closed: 4,
                phase_counts: vec![300, 200],
                phase_spans: vec![Some((10, 90)), None],
                phase_latencies: vec![vec![(5, 200), (9, 100)], vec![]],
                restores: 2,
                replayed_items: 120,
                duplicates_dropped: 3,
                replay_requests: 4,
                checkpoints: 4,
                transport_errors: 1,
                trace: sample_trace(),
                transport: sample_hop_stats(),
            }),
            ControlFrame::AggregatorReport(AggregatorReportWire {
                aggregator: 0,
                merged: 12,
                latency: vec![(2, 12)],
                finalized: vec![(0, counts)],
                duplicates_dropped: 2,
                transport_errors: 1,
                trace: sample_trace(),
                transport: sample_hop_stats(),
            }),
            ControlFrame::Heartbeat { worker: 3 },
            ControlFrame::Metrics(final_metrics),
            ControlFrame::Rejoin {
                worker: 1,
                data_port: 45_001,
                cursors: vec![17, 0, 9_000_000_000],
            },
            ControlFrame::Exclude { worker: 2 },
            ControlFrame::Release,
        ] {
            let mut buf = Vec::new();
            encode_control_frame(&frame, &mut buf);
            let (back, consumed) = decode_control_frame(&buf).expect("own encoding decodes");
            assert_eq!(back, frame);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn rle_compresses_batched_samples() {
        assert_eq!(rle_encode(&[]), vec![]);
        assert_eq!(rle_encode(&[7, 7, 7, 9, 7]), vec![(7, 3), (9, 1), (7, 1)]);
    }
}
